"""Exception hierarchy for the FastSim reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the simulator can catch one type. Subsystems raise the
more specific subclasses below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AssemblerError(ReproError):
    """Raised for malformed assembly source (syntax, ranges, labels)."""

    def __init__(self, message: str, line: int = 0, source: str = "<asm>"):
        self.line = line
        self.source = source
        if line:
            message = f"{source}:{line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded or decoded."""


class EmulationError(ReproError):
    """Raised for faults during functional execution (bad memory, traps)."""


class MemoryFault(EmulationError):
    """Raised on misaligned or out-of-segment memory access."""

    def __init__(self, address: int, message: str = "memory fault"):
        self.address = address
        super().__init__(f"{message} at 0x{address:08x}")


class SimulationError(ReproError):
    """Raised when a timing simulator reaches an inconsistent state."""


class ConfigCodecError(ReproError):
    """Raised when a microarchitecture configuration fails to (de)code."""


class MemoizationError(ReproError):
    """Raised for p-action cache structural violations."""


class WorkloadError(ReproError):
    """Raised when a workload generator receives invalid parameters."""

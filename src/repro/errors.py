"""Exception hierarchy for the FastSim reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the simulator can catch one type. Subsystems raise the
more specific subclasses below::

    ReproError
    ├── AssemblerError          malformed assembly source
    ├── EncodingError           instruction (de)coding failure
    ├── EmulationError          functional-execution fault
    │   └── MemoryFault         misaligned / out-of-segment access
    ├── SimulationError         timing simulator inconsistency
    ├── ConfigCodecError        μ-arch configuration (de)code failure
    ├── MemoizationError        p-action cache structural violation
    │   └── PCacheCorruptError  persisted cache failed integrity checks
    ├── CampaignError           campaign orchestration failure
    │   └── PoisonedJobError    job quarantined after crashing workers
    └── WorkloadError           invalid workload parameters

:class:`PCacheCorruptError` is the *only* exception the persistence
layer (:mod:`repro.memo.persist`) lets escape for damaged input: raw
``struct.error`` / ``EOFError`` / decoder exceptions are wrapped so
callers can distinguish "this file is rotten" from "this code is
broken" (see docs/robustness.md).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AssemblerError(ReproError):
    """Raised for malformed assembly source (syntax, ranges, labels)."""

    def __init__(self, message: str, line: int = 0, source: str = "<asm>"):
        self.line = line
        self.source = source
        if line:
            message = f"{source}:{line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded or decoded."""


class EmulationError(ReproError):
    """Raised for faults during functional execution (bad memory, traps)."""


class MemoryFault(EmulationError):
    """Raised on misaligned or out-of-segment memory access."""

    def __init__(self, address: int, message: str = "memory fault"):
        self.address = address
        super().__init__(f"{message} at 0x{address:08x}")


class SimulationError(ReproError):
    """Raised when a timing simulator reaches an inconsistent state."""


class ConfigCodecError(ReproError):
    """Raised when a microarchitecture configuration fails to (de)code."""


class MemoizationError(ReproError):
    """Raised for p-action cache structural violations."""


class PCacheCorruptError(MemoizationError):
    """A persisted p-action cache failed its integrity checks.

    Raised by :mod:`repro.memo.persist` for any damaged input —
    truncation, bit rot, bad checksums, unknown tags — naming where the
    damage was found. ``offset`` is the byte offset in the stream (or
    -1 when unknown) and ``record`` the zero-based node-record index
    (or -1 for header/trailer damage).
    """

    def __init__(self, message: str, offset: int = -1, record: int = -1):
        self.offset = offset
        self.record = record
        where = []
        if record >= 0:
            where.append(f"record {record}")
        if offset >= 0:
            where.append(f"offset {offset}")
        if where:
            message = f"{message} ({', '.join(where)})"
        super().__init__(message)


class SegStoreCorruptError(MemoizationError):
    """A persisted compiled-segment archive failed its integrity checks.

    Raised by :mod:`repro.memo.segstore` for any damaged input —
    truncation, bit rot, bad checksums, unknown tags. Unlike a corrupt
    p-action cache, a corrupt segment archive is *never* fatal to a
    run: the caller counts it as a miss and segments recompile from the
    (independently checked) graph, so output cannot be affected.
    ``offset``/``record`` locate the damage like
    :class:`PCacheCorruptError`.
    """

    def __init__(self, message: str, offset: int = -1, record: int = -1):
        self.offset = offset
        self.record = record
        where = []
        if record >= 0:
            where.append(f"record {record}")
        if offset >= 0:
            where.append(f"offset {offset}")
        if where:
            message = f"{message} ({', '.join(where)})"
        super().__init__(message)


class CampaignError(ReproError):
    """Raised for campaign orchestration failures (journal/resume)."""


class PoisonedJobError(CampaignError):
    """A job was quarantined after crashing its workers repeatedly.

    The campaign engine isolates a job whose attempts keep killing
    worker processes (``crashes >= poison_threshold``) instead of
    burning the whole campaign's retry budget on it. The merged
    :class:`~repro.campaign.jobs.JobResult` carries
    ``status="poisoned"`` and this error's message; sibling jobs are
    unaffected (see docs/robustness.md).
    """

    def __init__(self, job_key: str, crashes: int, last_failure: str = ""):
        self.job_key = job_key
        self.crashes = crashes
        self.last_failure = last_failure
        message = (f"job {job_key!r} crashed {crashes} worker(s); "
                   f"quarantined as poison")
        if last_failure:
            message = f"{message} (last failure: {last_failure})"
        super().__init__(message)


class WorkloadError(ReproError):
    """Raised when a workload generator receives invalid parameters."""

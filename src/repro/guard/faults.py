"""Deterministic fault injection — chaos testing for the memo pipeline.

Robustness claims that are never exercised rot. This module provides
*seeded* injectors for every corruption class the guard defends
against, so CI can prove end-to-end that a fault-riddled warm campaign
still produces canonical output byte-identical to a clean cold run
(see :mod:`repro.guard.chaos` and the ``fastsim-repro chaos`` CLI):

* **on-disk** — flip one bit or truncate at a seeded offset in
  persisted ``.fspc`` cache files (:func:`inject_disk_faults`); the
  FSPC v2 checksums turn these into
  :class:`~repro.errors.PCacheCorruptError` and the campaign
  :class:`~repro.campaign.cachedir.CacheStore` quarantines the file;
* **in-memory** — corrupt action nodes of a warm-loaded
  :class:`~repro.memo.pcache.PActionCache`
  (:func:`apply_memory_faults`), including a guaranteed-replayed
  forced divergence on the root chain, which the
  :class:`~repro.guard.engine.GuardedEngine` must detect and recover
  from;
* **worker crash** — kill the first attempt of one named campaign job
  (:func:`maybe_crash`), exercising the engine's retry path;
* **worker hang** — wedge the first attempt of one named job
  (:func:`maybe_hang`): the worker goes silent (heartbeats stop) for
  ``hang_seconds``, exercising the supervisor's hang detection and
  worker replacement;
* **engine kill** — die mid-campaign after N merged outcomes
  (:func:`maybe_kill_engine`), exercising the journal + resume path;
* **shared-tier outage** — fail every shared-cache-tier operation
  after the first N (:func:`maybe_shared_outage`), exercising the
  :class:`~repro.campaign.cachedir.TieredCacheStore` circuit breaker.

Everything is driven by a :class:`FaultPlan` installed process-wide
with :func:`install_plan`. Campaign workers are forked, so a plan
installed before :meth:`CampaignRunner.run` is inherited by every
worker; the hooks in :mod:`repro.campaign.worker` consult it. All
randomness is ``random.Random(seed)`` — the same plan injects the same
faults every time, including across worker retries (the crash marker
below is the one deliberately attempt-dependent element).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memo.actions import (
    AdvanceNode,
    ConfigNode,
    LoadIssueNode,
    LoadPollNode,
    RetireNode,
    StoreIssueNode,
)
from repro.memo.pcache import PActionCache

#: Exit code used by the injected worker crash (visible in job-retry
#: progress events as ``worker crashed (exit code 86)``).
CRASH_EXIT_CODE = 86

#: Exit code used by the injected engine kill — distinct from the
#: worker code so the resume drill can assert *which* process died.
ENGINE_KILL_EXIT_CODE = 97


@dataclass(frozen=True)
class FaultPlan:
    """A seeded specification of faults to inject.

    ``seed`` drives every injector; two runs with the same plan inject
    identical faults. ``scratch`` is a directory for cross-attempt
    state (the worker-crash marker) — required when ``crash_job`` is
    set, ignored otherwise.
    """

    seed: int = 0
    #: Number of persisted cache files to hit with one bit flip each.
    disk_bit_flips: int = 0
    #: Number of persisted cache files to truncate.
    disk_truncations: int = 0
    #: Random in-memory node corruptions per warm-loaded cache.
    node_bit_flips: int = 0
    #: Corrupt the root chain of each warm-loaded cache so the very
    #: first guarded replay episode is guaranteed to diverge.
    force_divergence: bool = False
    #: ``Job.key`` whose first execution attempt calls ``os._exit``.
    crash_job: str = ""
    #: ``Job.key`` whose first execution attempt wedges: the worker
    #: stops heartbeating and sleeps ``hang_seconds`` (hang-once, same
    #: marker mechanism as ``crash_job``).
    hang_job: str = ""
    #: How long the injected hang sleeps. Keep well above the
    #: supervisor's ``hang_after`` so detection always wins the race.
    hang_seconds: float = 30.0
    #: Kill the campaign *engine* (``os._exit``) after this many
    #: outcomes have been merged and journaled; 0 disables.
    kill_engine_after: int = 0
    #: Fail every shared-cache-tier operation after the first N in
    #: this process (simulated storage outage); -1 disables.
    shared_outage_after: int = -1
    #: Directory for the crash-once / hang-once marker files.
    scratch: str = ""


# ----------------------------------------------------------------------
# Process-wide active plan (inherited by forked campaign workers)
# ----------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install_plan(plan: FaultPlan) -> None:
    """Activate *plan* for this process and all workers forked later.

    Re-installing the *same* plan is a no-op that preserves per-process
    fault state: persistent workers (the subprocess backend) arm the
    plan once per envelope, and the shared-outage op counter must keep
    running across jobs or a long outage would look like a series of
    one-op blips and the circuit breaker could never accumulate its
    consecutive-failure threshold.
    """
    global _ACTIVE, _SHARED_OPS
    if plan == _ACTIVE:
        return
    _ACTIVE = plan
    _SHARED_OPS = 0


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or None."""
    return _ACTIVE


def clear_plan() -> None:
    """Deactivate fault injection."""
    global _ACTIVE, _SHARED_OPS, _HANG_ACTIVE
    _ACTIVE = None
    _SHARED_OPS = 0
    _HANG_ACTIVE = False


# ----------------------------------------------------------------------
# On-disk faults
# ----------------------------------------------------------------------

def _flip_bit(path: str, rng: random.Random) -> Dict[str, object]:
    with open(path, "rb") as stream:
        data = bytearray(stream.read())
    offset = rng.randrange(len(data))
    bit = rng.randrange(8)
    data[offset] ^= 1 << bit
    temp = path + ".fault"
    with open(temp, "wb") as stream:
        stream.write(bytes(data))
    os.replace(temp, path)
    return {"kind": "bit-flip", "file": os.path.basename(path),
            "offset": offset, "bit": bit}


def _truncate(path: str, rng: random.Random) -> Dict[str, object]:
    size = os.path.getsize(path)
    keep = rng.randrange(size)
    with open(path, "rb") as stream:
        data = stream.read(keep)
    temp = path + ".fault"
    with open(temp, "wb") as stream:
        stream.write(data)
    os.replace(temp, path)
    return {"kind": "truncate", "file": os.path.basename(path),
            "kept_bytes": keep, "original_bytes": size}


def inject_disk_faults(cache_root: str,
                       plan: FaultPlan) -> List[Dict[str, object]]:
    """Corrupt persisted ``.fspc`` files under *cache_root* per *plan*.

    Files are chosen round-robin over the sorted directory listing, so
    the same plan against the same store damages the same files at the
    same offsets. Returns one description per injected fault.
    """
    rng = random.Random(plan.seed)
    files = sorted(
        os.path.join(cache_root, name)
        for name in os.listdir(cache_root)
        if name.endswith(".fspc")
    )
    injected: List[Dict[str, object]] = []
    if not files:
        return injected
    cursor = 0
    for _ in range(plan.disk_bit_flips):
        injected.append(_flip_bit(files[cursor % len(files)], rng))
        cursor += 1
    for _ in range(plan.disk_truncations):
        injected.append(_truncate(files[cursor % len(files)], rng))
        cursor += 1
    return injected


# ----------------------------------------------------------------------
# In-memory faults (applied to a warm-loaded PActionCache)
# ----------------------------------------------------------------------

def _corrupt_node(node, rng: random.Random) -> Optional[str]:
    """Flip one bit in a node's recorded payload; returns a label."""
    if isinstance(node, RetireNode):
        node.count ^= 1 << rng.randrange(4)
        return "retire-count"
    if isinstance(node, AdvanceNode):
        node.delta ^= 1 << rng.randrange(4)
        return "advance-delta"
    if isinstance(node, (LoadIssueNode, LoadPollNode, StoreIssueNode)):
        node.ordinal ^= 1 << rng.randrange(3)
        return "ordinal"
    if isinstance(node, ConfigNode):
        blob = bytearray(node.blob)
        blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        node.blob = bytes(blob)
        return "config-blob"
    return None


def force_chain_divergence(cache: PActionCache) -> Optional[str]:
    """Corrupt the entry chain so the first replay episode diverges.

    Walks the first indexed configuration's chain (the root — the
    first configuration a run allocates — so a warm run is guaranteed
    to replay it) up to the first outcome node, which is the longest
    unconditionally-replayed prefix, and corrupts the first node with
    a payload there. Falls back to flipping the root's blob, which the
    guard's entry check catches. Returns a label, or None for an
    empty cache.
    """
    # Insertion order IS the recording order here — the first indexed
    # config is the root, which is what makes the divergence
    # guaranteed-replayed; sorting would lose that property.
    for config in cache.index.values():  # repro-lint: disable=det/dict-value-iteration
        node = config.next
        while node is not None and not node.is_outcome:
            if isinstance(node, RetireNode):
                node.count += 1
                return "forced:retire-count"
            if isinstance(node, AdvanceNode):
                node.delta += 3
                return "forced:advance-delta"
            node = node.next
        blob = bytearray(config.blob)
        blob[-1] ^= 0x01
        config.blob = bytes(blob)
        return "forced:entry-blob"
    return None


def apply_memory_faults(cache: PActionCache,
                        plan: FaultPlan) -> List[str]:
    """Apply *plan*'s in-memory faults to a warm-loaded cache.

    Deterministic for a given (plan, cache file): node order comes
    from the persisted record order, the choices from the plan seed.
    Returns the labels of the corruptions performed.
    """
    applied: List[str] = []
    if plan.force_divergence:
        label = force_chain_divergence(cache)
        if label is not None:
            applied.append(label)
    if plan.node_bit_flips:
        rng = random.Random(plan.seed)
        nodes = [node for node in cache.reachable_nodes()
                 if not node.is_outcome or isinstance(
                     node, (LoadIssueNode, LoadPollNode, StoreIssueNode))]
        for _ in range(plan.node_bit_flips):
            if not nodes:
                break
            label = _corrupt_node(nodes[rng.randrange(len(nodes))], rng)
            if label is not None:
                applied.append(label)
    return applied


# ----------------------------------------------------------------------
# Worker crash
# ----------------------------------------------------------------------

def maybe_crash(job_key: str, plan: FaultPlan) -> None:
    """Kill this process if *plan* schedules a crash for *job_key*.

    Crash-once semantics: the first process to create the marker file
    (``O_CREAT | O_EXCL`` — atomic across the forked worker pool) dies
    with :data:`CRASH_EXIT_CODE`; every later attempt finds the marker
    and runs normally, so the campaign engine's retry succeeds.
    """
    if not plan.crash_job or plan.crash_job != job_key:
        return
    if not plan.scratch:
        return
    marker = os.path.join(
        plan.scratch, "crashed-" + plan.crash_job.replace(":", "_")
    )
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(CRASH_EXIT_CODE)


# ----------------------------------------------------------------------
# Worker hang
# ----------------------------------------------------------------------

_HANG_ACTIVE = False


def hang_active() -> bool:
    """True while this process is deliberately wedged by a hang fault.

    Worker heartbeat threads consult this and go silent, so an
    injected hang looks exactly like a wedged worker to the engine
    (a sleeping thread alone would keep beating).
    """
    return _HANG_ACTIVE


def maybe_hang(job_key: str, plan: FaultPlan) -> None:
    """Wedge this worker if *plan* schedules a hang for *job_key*.

    Hang-once semantics, same atomic marker as :func:`maybe_crash`:
    the first attempt stops heartbeating and sleeps
    ``plan.hang_seconds``; the retry finds the marker and runs
    normally. The supervisor must detect the silence (``hang_after``)
    and replace the worker long before the sleep ends.
    """
    global _HANG_ACTIVE
    if not plan.hang_job or plan.hang_job != job_key:
        return
    if not plan.scratch:
        return
    marker = os.path.join(
        plan.scratch, "hung-" + plan.hang_job.replace(":", "_")
    )
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    _HANG_ACTIVE = True
    try:
        import time

        time.sleep(plan.hang_seconds)
    finally:
        _HANG_ACTIVE = False


# ----------------------------------------------------------------------
# Engine kill (mid-campaign crash, exercising journal + resume)
# ----------------------------------------------------------------------

def maybe_kill_engine(merged_outcomes: int, plan: FaultPlan) -> None:
    """Kill the engine process once *merged_outcomes* reaches the plan.

    Called by the engine immediately after an outcome record is
    durably journaled, so a killed run leaves exactly
    ``kill_engine_after`` replayable outcomes behind.
    """
    if plan.kill_engine_after <= 0:
        return
    if merged_outcomes >= plan.kill_engine_after:
        os._exit(ENGINE_KILL_EXIT_CODE)


# ----------------------------------------------------------------------
# Shared-tier outage
# ----------------------------------------------------------------------

_SHARED_OPS = 0


def maybe_shared_outage(plan: FaultPlan) -> None:
    """Raise OSError for shared-tier ops past the plan's budget.

    The counter is per-process (reset by :func:`install_plan` /
    :func:`clear_plan`): with the fork backend every attempt sees a
    fresh budget, which keeps the drill deterministic per attempt.
    """
    global _SHARED_OPS
    if plan.shared_outage_after < 0:
        return
    _SHARED_OPS += 1
    if _SHARED_OPS > plan.shared_outage_after:
        raise OSError(
            f"injected shared-tier outage (op {_SHARED_OPS}, budget "
            f"{plan.shared_outage_after})")

"""Deterministic fault injection — chaos testing for the memo pipeline.

Robustness claims that are never exercised rot. This module provides
*seeded* injectors for every corruption class the guard defends
against, so CI can prove end-to-end that a fault-riddled warm campaign
still produces canonical output byte-identical to a clean cold run
(see :mod:`repro.guard.chaos` and the ``fastsim-repro chaos`` CLI):

* **on-disk** — flip one bit or truncate at a seeded offset in
  persisted ``.fspc`` cache files (:func:`inject_disk_faults`); the
  FSPC v2 checksums turn these into
  :class:`~repro.errors.PCacheCorruptError` and the campaign
  :class:`~repro.campaign.cachedir.CacheStore` quarantines the file;
* **in-memory** — corrupt action nodes of a warm-loaded
  :class:`~repro.memo.pcache.PActionCache`
  (:func:`apply_memory_faults`), including a guaranteed-replayed
  forced divergence on the root chain, which the
  :class:`~repro.guard.engine.GuardedEngine` must detect and recover
  from;
* **worker crash** — kill the first attempt of one named campaign job
  (:func:`maybe_crash`), exercising the engine's retry path.

Everything is driven by a :class:`FaultPlan` installed process-wide
with :func:`install_plan`. Campaign workers are forked, so a plan
installed before :meth:`CampaignRunner.run` is inherited by every
worker; the hooks in :mod:`repro.campaign.worker` consult it. All
randomness is ``random.Random(seed)`` — the same plan injects the same
faults every time, including across worker retries (the crash marker
below is the one deliberately attempt-dependent element).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memo.actions import (
    AdvanceNode,
    ConfigNode,
    LoadIssueNode,
    LoadPollNode,
    RetireNode,
    StoreIssueNode,
)
from repro.memo.pcache import PActionCache

#: Exit code used by the injected worker crash (visible in job-retry
#: progress events as ``worker crashed (exit code 86)``).
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultPlan:
    """A seeded specification of faults to inject.

    ``seed`` drives every injector; two runs with the same plan inject
    identical faults. ``scratch`` is a directory for cross-attempt
    state (the worker-crash marker) — required when ``crash_job`` is
    set, ignored otherwise.
    """

    seed: int = 0
    #: Number of persisted cache files to hit with one bit flip each.
    disk_bit_flips: int = 0
    #: Number of persisted cache files to truncate.
    disk_truncations: int = 0
    #: Random in-memory node corruptions per warm-loaded cache.
    node_bit_flips: int = 0
    #: Corrupt the root chain of each warm-loaded cache so the very
    #: first guarded replay episode is guaranteed to diverge.
    force_divergence: bool = False
    #: ``Job.key`` whose first execution attempt calls ``os._exit``.
    crash_job: str = ""
    #: Directory for the crash-once marker file.
    scratch: str = ""


# ----------------------------------------------------------------------
# Process-wide active plan (inherited by forked campaign workers)
# ----------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install_plan(plan: FaultPlan) -> None:
    """Activate *plan* for this process and all workers forked later."""
    global _ACTIVE
    _ACTIVE = plan


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or None."""
    return _ACTIVE


def clear_plan() -> None:
    """Deactivate fault injection."""
    global _ACTIVE
    _ACTIVE = None


# ----------------------------------------------------------------------
# On-disk faults
# ----------------------------------------------------------------------

def _flip_bit(path: str, rng: random.Random) -> Dict[str, object]:
    with open(path, "rb") as stream:
        data = bytearray(stream.read())
    offset = rng.randrange(len(data))
    bit = rng.randrange(8)
    data[offset] ^= 1 << bit
    temp = path + ".fault"
    with open(temp, "wb") as stream:
        stream.write(bytes(data))
    os.replace(temp, path)
    return {"kind": "bit-flip", "file": os.path.basename(path),
            "offset": offset, "bit": bit}


def _truncate(path: str, rng: random.Random) -> Dict[str, object]:
    size = os.path.getsize(path)
    keep = rng.randrange(size)
    with open(path, "rb") as stream:
        data = stream.read(keep)
    temp = path + ".fault"
    with open(temp, "wb") as stream:
        stream.write(data)
    os.replace(temp, path)
    return {"kind": "truncate", "file": os.path.basename(path),
            "kept_bytes": keep, "original_bytes": size}


def inject_disk_faults(cache_root: str,
                       plan: FaultPlan) -> List[Dict[str, object]]:
    """Corrupt persisted ``.fspc`` files under *cache_root* per *plan*.

    Files are chosen round-robin over the sorted directory listing, so
    the same plan against the same store damages the same files at the
    same offsets. Returns one description per injected fault.
    """
    rng = random.Random(plan.seed)
    files = sorted(
        os.path.join(cache_root, name)
        for name in os.listdir(cache_root)
        if name.endswith(".fspc")
    )
    injected: List[Dict[str, object]] = []
    if not files:
        return injected
    cursor = 0
    for _ in range(plan.disk_bit_flips):
        injected.append(_flip_bit(files[cursor % len(files)], rng))
        cursor += 1
    for _ in range(plan.disk_truncations):
        injected.append(_truncate(files[cursor % len(files)], rng))
        cursor += 1
    return injected


# ----------------------------------------------------------------------
# In-memory faults (applied to a warm-loaded PActionCache)
# ----------------------------------------------------------------------

def _corrupt_node(node, rng: random.Random) -> Optional[str]:
    """Flip one bit in a node's recorded payload; returns a label."""
    if isinstance(node, RetireNode):
        node.count ^= 1 << rng.randrange(4)
        return "retire-count"
    if isinstance(node, AdvanceNode):
        node.delta ^= 1 << rng.randrange(4)
        return "advance-delta"
    if isinstance(node, (LoadIssueNode, LoadPollNode, StoreIssueNode)):
        node.ordinal ^= 1 << rng.randrange(3)
        return "ordinal"
    if isinstance(node, ConfigNode):
        blob = bytearray(node.blob)
        blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        node.blob = bytes(blob)
        return "config-blob"
    return None


def force_chain_divergence(cache: PActionCache) -> Optional[str]:
    """Corrupt the entry chain so the first replay episode diverges.

    Walks the first indexed configuration's chain (the root — the
    first configuration a run allocates — so a warm run is guaranteed
    to replay it) up to the first outcome node, which is the longest
    unconditionally-replayed prefix, and corrupts the first node with
    a payload there. Falls back to flipping the root's blob, which the
    guard's entry check catches. Returns a label, or None for an
    empty cache.
    """
    # Insertion order IS the recording order here — the first indexed
    # config is the root, which is what makes the divergence
    # guaranteed-replayed; sorting would lose that property.
    for config in cache.index.values():  # repro-lint: disable=det/dict-value-iteration
        node = config.next
        while node is not None and not node.is_outcome:
            if isinstance(node, RetireNode):
                node.count += 1
                return "forced:retire-count"
            if isinstance(node, AdvanceNode):
                node.delta += 3
                return "forced:advance-delta"
            node = node.next
        blob = bytearray(config.blob)
        blob[-1] ^= 0x01
        config.blob = bytes(blob)
        return "forced:entry-blob"
    return None


def apply_memory_faults(cache: PActionCache,
                        plan: FaultPlan) -> List[str]:
    """Apply *plan*'s in-memory faults to a warm-loaded cache.

    Deterministic for a given (plan, cache file): node order comes
    from the persisted record order, the choices from the plan seed.
    Returns the labels of the corruptions performed.
    """
    applied: List[str] = []
    if plan.force_divergence:
        label = force_chain_divergence(cache)
        if label is not None:
            applied.append(label)
    if plan.node_bit_flips:
        rng = random.Random(plan.seed)
        nodes = [node for node in cache.reachable_nodes()
                 if not node.is_outcome or isinstance(
                     node, (LoadIssueNode, LoadPollNode, StoreIssueNode))]
        for _ in range(plan.node_bit_flips):
            if not nodes:
                break
            label = _corrupt_node(nodes[rng.randrange(len(nodes))], rng)
            if label is not None:
                applied.append(label)
    return applied


# ----------------------------------------------------------------------
# Worker crash
# ----------------------------------------------------------------------

def maybe_crash(job_key: str, plan: FaultPlan) -> None:
    """Kill this process if *plan* schedules a crash for *job_key*.

    Crash-once semantics: the first process to create the marker file
    (``O_CREAT | O_EXCL`` — atomic across the forked worker pool) dies
    with :data:`CRASH_EXIT_CODE`; every later attempt finds the marker
    and runs normally, so the campaign engine's retry succeeds.
    """
    if not plan.crash_job or plan.crash_job != job_key:
        return
    if not plan.scratch:
        return
    marker = os.path.join(
        plan.scratch, "crashed-" + plan.crash_job.replace(":", "_")
    )
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(CRASH_EXIT_CODE)

"""Online replay audits — lockstep verification of memoized chains.

The memoization invariant (PAPER.md §4) is that replaying a p-action
chain is *bit-identical* to detailed simulation. :mod:`repro.lint`
defends that invariant statically; this module defends it at runtime:
:class:`GuardedEngine` deterministically samples replay episodes and
runs each sampled episode in **lockstep** with a shadow
:class:`~repro.uarch.detailed.DetailedSimulator` reconstructed from the
episode's entry configuration.

Why lockstep rather than replay-then-check: an audit that compares
results *after* driving the world cannot recover — the wrong retires,
cache issues, and cycle advances have already been applied. Here every
action node is verified against the shadow's actual next request
*before* the world is touched, so on divergence the world is still
clean at the last verified action and the engine can

1. emit a structured :class:`DivergenceReport`,
2. quarantine the corrupt portion of the chain in the
   :class:`~repro.memo.pcache.PActionCache` (severing it from the
   graph so no later episode replays it), and
3. hand the already-synchronised shadow simulator straight to record
   mode, exactly like the engine's normal fall-back path —

degrading to detailed simulation instead of crashing or emitting wrong
numbers. Because the verified prefix performs the same world calls in
the same order at the same cycles as unguarded replay (cycle advances
are deferred until validated, then applied node-by-node), an audited
run of an *uncorrupted* cache is ``timing_equal`` to an unguarded run.

Trust anchor: the shadow is decoded from
``PActionCache.last_lookup_blob`` — the dict *key* that produced the
entry hit, written by ``encode_config`` moments before — not from the
entry node's ``blob`` attribute, which is itself one of the fields a
bit-flip can corrupt. A mismatch between the two is the first thing an
audit checks.

Clock bookkeeping: ``shadow_cycle`` is the cycle whose requests the
shadow generator produces next; consuming a ``CycleBoundary`` ends that
cycle. A chain action is validated by ``world.cycle + pending_delta ==
shadow_cycle`` where ``pending_delta`` sums the not-yet-applied
``AdvanceNode`` deltas — i.e. the chain's claimed clock must meet the
shadow's actual clock. Entry states are boundary snapshots, so a fresh
shadow's first requests belong to ``world.cycle + 1``; the one
exception is the program's *root* configuration (empty iQ at the entry
PC with the world at cycle 0), whose chain was recorded from a cold
start and begins at cycle 0. A boundary-snapped state that happens to
encode identically to the root at world cycle 0 would be
misclassified, but such a state would require the whole cycle-0 fetch
group to vanish within its own cycle, which the pipeline cannot do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.memo.actions import (
    AdvanceNode,
    ConfigNode,
    ControlNode,
    EndNode,
    LoadIssueNode,
    LoadPollNode,
    Node,
    RetireNode,
    RollbackNode,
    StoreIssueNode,
)
from repro.memo.engine import _REQUEST_FOR_NODE, FastForwardEngine
from repro.uarch.config_codec import decode_config, encode_config
from repro.uarch.detailed import DetailedSimulator
from repro.uarch.interactions import (
    CycleBoundary,
    Finished,
    Retire,
    Rollback,
)


@dataclass(frozen=True)
class DivergenceReport:
    """One audited replay episode that disagreed with re-execution.

    ``kind`` names the check that failed:

    ==================  ====================================================
    ``entry-blob``      entry node's blob differs from the trusted lookup key
    ``config-blob``     a crossed configuration differs from the shadow state
    ``config-misplaced``the shadow still had actions where the chain put a
                        configuration boundary
    ``structure``       an AdvanceNode immediately precedes a configuration
                        (recording never produces that shape)
    ``clock-skew``      the chain's claimed cycle for an action differs from
                        the shadow's actual clock
    ``action-type``     the chain's node kind differs from the shadow request
    ``action-payload``  same kind, different payload (ordinal/retire counts)
    ``end-mismatch``    the chain claims the program ends here (or with a
                        different drain delta) and the shadow disagrees
    ==================  ====================================================
    """

    kind: str
    episode: int        #: replay-episode ordinal (0-based) within the run
    chain_index: int    #: actions replayed on this chain before detection
    world_cycle: int    #: world clock at detection (last verified action)
    shadow_cycle: int   #: shadow simulator's clock at detection
    expected: str       #: repr of the chain node that failed verification
    actual: str         #: repr of the shadow's actual request ("" if n/a)

    def as_dict(self) -> Dict[str, object]:
        """Sorted-key dict for JSON export (stable document)."""
        return {
            "actual": self.actual,
            "chain_index": self.chain_index,
            "episode": self.episode,
            "expected": self.expected,
            "kind": self.kind,
            "shadow_cycle": self.shadow_cycle,
            "world_cycle": self.world_cycle,
        }


def _replay_pending(request, generator):
    """Re-deliver *request* (pulled during verification), then delegate.

    Record mode receives this wrapper instead of the raw shadow
    generator when an audit pulled one request past the divergence
    point; the wrapper replays that request first so record mode sees
    the exact stream a fresh resync would have produced.
    """
    received = yield request
    while True:
        received = yield generator.send(received)


class GuardedEngine(FastForwardEngine):
    """A :class:`FastForwardEngine` that audits sampled replay episodes.

    ``audit_every=N`` audits every Nth replay episode (1 = all);
    ``audit_seed`` deterministically phases which residue class is
    sampled, so two guarded runs with the same seed audit the same
    episodes (and different seeds spread audit cost across a campaign
    without losing reproducibility).
    """

    def __init__(self, executable, world, pcache=None, policy=None,
                 obs=None, audit_every: int = 1, audit_seed: int = 0,
                 turbo=None):
        super().__init__(executable, world, pcache=pcache, policy=policy,
                         obs=obs, turbo=turbo)
        if audit_every < 1:
            raise ValueError("audit_every must be >= 1")
        self.audit_every = audit_every
        self.audit_seed = audit_seed
        self._audit_phase = random.Random(audit_seed).randrange(audit_every)
        self.audits = 0
        self.divergences = 0
        self.reports: List[DivergenceReport] = []
        self._root: Optional[bytes] = None

    # ------------------------------------------------------------------

    def _root_blob(self) -> bytes:
        """Encoding of the cold-start state (see module docstring)."""
        if self._root is None:
            sim = DetailedSimulator(self.executable, self.params)
            self._root = encode_config(sim.iq.entries, sim.fetch_pc,
                                       sim.fetch_stalled, sim.fetch_halted)
        return self._root

    def _replay(self, entry: ConfigNode):
        ordinal = self.memo.replay_episodes
        if (ordinal + self._audit_phase) % self.audit_every == 0:
            return self._replay_audited(entry, ordinal)
        return super()._replay(entry)

    def _replay_terminal(self, entry: ConfigNode, ordinal: int,
                         true_blob: bytes):
        """Audit an episode entering at the terminal configuration.

        The recorder snapshots the finishing cycle's boundary like any
        other, so the graph holds one post-halt configuration whose
        only legal chain is ``EndNode(delta=1)``: the recording always
        advanced exactly one cycle between that snapshot and
        ``Finished``. Anything else is corruption (or a pruned chain),
        and either way the known-true ending is applied so the run
        still completes with correct cycle counts.
        """
        world = self.world
        memo = self.memo
        cache = self.cache
        node = entry.next
        if (entry.blob == true_blob and type(node) is EndNode
                and node.delta == 1):
            cache.touch(entry)
            cache.touch(node)
            memo.configs_replayed += 1
            world.advance_cycles(1)
            memo.replayed_cycles += 1
            memo.actions_replayed += 1
            self._end_chain(1)
            return ("finished",)
        if node is None and entry.blob == true_blob:
            # Pruned by a replacement policy — not corruption. Repair:
            # re-record the ending a fresh resync could never reach (a
            # restored terminal simulator yields no events at all).
            end = EndNode(1)
            cache.alloc_action(end)
            cache.attach((entry, None), end)
        else:
            label = ("entry-blob" if entry.blob != true_blob
                     else "end-mismatch")
            report = DivergenceReport(
                kind=label,
                episode=ordinal,
                chain_index=0,
                world_cycle=world.cycle,
                shadow_cycle=world.cycle + 1,
                expected=repr(node) if node is not None else "<chain end>",
                actual="<Finished at terminal configuration>",
            )
            self.reports.append(report)
            self.divergences += 1
            if self._obs_on:
                self.obs.counter("guard.divergences")
                self.obs.event("guard.divergence", cat="guard",
                               **report.as_dict())
            cache.invalidate(entry)
        world.advance_cycles(1)
        memo.detailed_cycles += 1
        self._end_chain(0)
        return ("finished",)

    # ------------------------------------------------------------------
    # Audited replay: lockstep chain-vs-shadow verification
    # ------------------------------------------------------------------

    def _replay_audited(self, entry: ConfigNode, ordinal: int):
        world = self.world
        cache = self.cache
        memo = self.memo
        obs = self.obs
        obs_on = self._obs_on

        true_blob = cache.last_lookup_blob
        if true_blob is None or cache.index.get(true_blob) is not entry:
            # No trusted key for this entry (direct invocation outside
            # the engine's own lookup path) — cannot anchor a shadow.
            return super()._replay(entry)

        memo.replay_episodes += 1
        self.audits += 1
        if obs_on:
            obs.counter("guard.audits")

        entries, fetch_pc, stalled, halted = decode_config(
            true_blob, self.executable
        )
        if not entries and halted:
            # Terminal configuration: the halt has retired and the iQ
            # drained. A simulator restored from this state can never
            # produce another event, so no shadow can run — but the
            # true continuation is fully determined (one drain
            # boundary, then Finished), so verify the chain against
            # that directly.
            return self._replay_terminal(entry, ordinal, true_blob)
        shadow = DetailedSimulator(self.executable, self.params)
        shadow.restore(entries, fetch_pc, stalled, halted)
        gen = shadow.run()
        is_root = world.cycle == 0 and true_blob == self._root_blob()
        shadow_cycle = world.cycle if is_root else world.cycle + 1

        chain_length = 0
        segment_actions = 0     # chain-log-equivalent actions this segment
        pending: List[AdvanceNode] = []  # unapplied, not-yet-validated
        pending_delta = 0
        send = None             # outcome owed to the shadow on next pull
        came_from = None        # last verified attach point
        position: Optional[Node] = entry
        first = True

        def pull():
            """One raw event from the shadow (feeds any owed outcome)."""
            nonlocal send
            try:
                request = gen.send(send)
            except StopIteration:  # pragma: no cover - protocol violation
                raise SimulationError(
                    "detailed simulator ended unexpectedly"
                )
            send = None
            return request

        def pump():
            """Next non-boundary event, counting boundaries as cycles."""
            nonlocal shadow_cycle
            while True:
                request = pull()
                if type(request) is CycleBoundary:
                    shadow_cycle += 1
                    if shadow_cycle > self.max_cycles + 1:
                        raise SimulationError(
                            f"exceeded {self.max_cycles} simulated cycles"
                        )
                    continue
                return request

        def flush():
            """Apply clock-validated AdvanceNodes exactly as unguarded
            replay would (same world calls, same counter updates)."""
            nonlocal pending, pending_delta, came_from, chain_length
            for advance in pending:
                world.advance_cycles(advance.delta)
                memo.replayed_cycles += advance.delta
                if obs_on:
                    obs.sample_cycle(world.cycle, self)
                if world.cycle > self.max_cycles:
                    raise SimulationError(
                        f"exceeded {self.max_cycles} simulated cycles"
                    )
                memo.actions_replayed += 1
                chain_length += 1
                came_from = (advance, None)
            pending = []
            pending_delta = 0

        def handoff(attach, pending_request=None):
            """Record-mode tuple at the shadow's current position.

            The shadow doubles as the resync simulator: it is already
            synchronised through the last verified action, so no
            outcome re-feed is needed. ``b0`` — the cycle the shadow's
            next boundary ends — equals ``shadow_cycle`` by the clock
            convention, so the world is advanced to it (detailed
            cycles) when behind, mirroring ``_resync``.
            """
            anchor = world.cycle
            if world.cycle < shadow_cycle:
                memo.detailed_cycles += shadow_cycle - world.cycle
                world.advance_cycles(shadow_cycle - world.cycle)
            debt = max(0, anchor - shadow_cycle)
            generator = gen
            if pending_request is not None:
                generator = _replay_pending(pending_request, gen)
            return ("record", shadow, generator, attach, anchor,
                    send, debt, segment_actions > 0)

        def corrupt(label, node, request, attach, pending_request=None,
                    invalidated=None):
            """Report + quarantine + degrade to record mode."""
            if invalidated is not None:
                cache.invalidate(invalidated)
            else:
                # The corrupt suffix is spliced out when record mode
                # attaches the fresh branch at *attach*; count it as an
                # invalidation for snapshot()/operator visibility, and
                # bump the graph generation so compiled replay segments
                # built over the suffix are revalidated before reuse.
                cache.invalidations += 1
                cache.graph_generation += 1
            report = DivergenceReport(
                kind=label,
                episode=ordinal,
                chain_index=chain_length,
                world_cycle=world.cycle,
                shadow_cycle=shadow_cycle,
                expected=repr(node) if node is not None else "<chain end>",
                actual=repr(request) if request is not None else "",
            )
            self.reports.append(report)
            self.divergences += 1
            if obs_on:
                obs.counter("guard.divergences")
                obs.event("guard.divergence", cat="guard",
                          **report.as_dict())
            self._end_chain(chain_length)
            return handoff(attach, pending_request)

        while True:
            node = position
            if node is None:
                # Chain pruned (replacement policy) or severed by a
                # previous quarantine: validate any trailing advances
                # against the shadow's true next request, then resume
                # recording with the shadow in place of a fresh resync.
                if pending_delta:
                    request = pump()
                    if world.cycle + pending_delta != shadow_cycle:
                        return corrupt("clock-skew", None, request,
                                       came_from, pending_request=request)
                    flush()
                    self._end_chain(chain_length)
                    return handoff(came_from, pending_request=request)
                self._end_chain(chain_length)
                return handoff(came_from)
            cache.touch(node)
            kind = type(node)

            if kind is ConfigNode:
                if first:
                    first = False
                    if node.blob != true_blob:
                        return corrupt("entry-blob", node, None, None,
                                       invalidated=node)
                else:
                    # Recording attaches configurations directly after
                    # an action, never after an AdvanceNode.
                    if pending_delta:
                        return corrupt("structure", node, None, came_from)
                    boundary = pull()
                    if type(boundary) is not CycleBoundary:
                        return corrupt("config-misplaced", node, boundary,
                                       came_from, pending_request=boundary)
                    shadow_cycle += 1
                    blob = encode_config(shadow.iq.entries, shadow.fetch_pc,
                                         shadow.fetch_stalled,
                                         shadow.fetch_halted)
                    if blob != node.blob:
                        return corrupt("config-blob", node, None,
                                       came_from, invalidated=node)
                memo.configs_replayed += 1
                segment_actions = 0
                came_from = (node, None)
                position = node.next
                continue

            if kind is AdvanceNode:
                # Deferred: applied by flush() once the next action's
                # clock check has validated the claimed delta.
                pending.append(node)
                pending_delta += node.delta
                position = node.next
                continue

            if kind is EndNode:
                request = pump()
                if (type(request) is not Finished
                        or world.cycle + pending_delta + node.delta
                        != shadow_cycle):
                    return corrupt("end-mismatch", node, request,
                                   came_from, pending_request=request)
                flush()
                world.advance_cycles(node.delta)
                memo.replayed_cycles += node.delta
                memo.actions_replayed += 1
                chain_length += 1
                self._end_chain(chain_length)
                return ("finished",)

            expected = _REQUEST_FOR_NODE.get(kind)
            if expected is None:  # pragma: no cover - protocol violation
                raise SimulationError(
                    f"unknown node {node!r} in p-action cache"
                )
            request = pump()
            if world.cycle + pending_delta != shadow_cycle:
                return corrupt("clock-skew", node, request, came_from,
                               pending_request=request)
            # The clock check validated the pending advances (their sum
            # meets the shadow's actual clock); apply them so the world
            # and the splice point sit exactly at this action.
            flush()
            if type(request) is not expected:
                return corrupt("action-type", node, request, came_from,
                               pending_request=request)
            if _payload_mismatch(node, request):
                return corrupt("action-payload", node, request, came_from,
                               pending_request=request)

            if kind is RetireNode:
                world.retire(Retire(node.count, node.loads, node.stores,
                                    node.controls, node.branches))
                memo.replayed_instructions += node.count
                memo.actions_replayed += 1
                chain_length += 1
                segment_actions += 1
                came_from = (node, None)
                position = node.next
                continue

            if kind is RollbackNode:
                world.rollback(Rollback(node.control_ordinal,
                                        node.squashed_loads,
                                        node.squashed_stores,
                                        node.squashed_controls))
                memo.actions_replayed += 1
                chain_length += 1
                segment_actions += 1
                came_from = (node, None)
                position = node.next
                continue

            if kind is ControlNode:
                record = world.get_control()
                outcome_key = record.outcome_key()
                memo.actions_replayed += 1
                chain_length += 1
                segment_actions += 1
                send = record
                successor = node.edges.get(outcome_key)
                if successor is None:
                    # Outcome not yet memoized — the engine's normal
                    # fall-back, not corruption. The shadow is already
                    # at the divergence point.
                    self._end_chain(chain_length)
                    return handoff((node, outcome_key))
                came_from = (node, outcome_key)
                position = successor
                continue

            # LoadIssueNode / LoadPollNode / StoreIssueNode
            if kind is LoadIssueNode:
                reply = world.issue_load(node.ordinal)
            elif kind is LoadPollNode:
                reply = world.poll_load(node.ordinal)
            else:
                reply = world.issue_store(node.ordinal)
            memo.actions_replayed += 1
            chain_length += 1
            segment_actions += 1
            send = reply
            successor = node.edges.get(reply)
            if successor is None:
                self._end_chain(chain_length)
                return handoff((node, reply))
            came_from = (node, reply)
            position = successor


def _payload_mismatch(node: Node, request) -> bool:
    """Same request kind — do the recorded parameters match?"""
    kind = type(node)
    if kind is RetireNode:
        return (request.count != node.count
                or request.loads != node.loads
                or request.stores != node.stores
                or request.controls != node.controls
                or request.branches != node.branches)
    if kind is RollbackNode:
        return (request.control_ordinal != node.control_ordinal
                or request.squashed_loads != node.squashed_loads
                or request.squashed_stores != node.squashed_stores
                or request.squashed_controls != node.squashed_controls)
    if kind in (LoadIssueNode, LoadPollNode, StoreIssueNode):
        return request.ordinal != node.ordinal
    return False  # ControlNode / GetControl carry no payload

"""The chaos drill — prove robustness end-to-end, deterministically.

:func:`run_chaos` stages the full failure gauntlet against a real
campaign and checks the one property everything in this repo hangs on:
**canonical output is byte-identical no matter what breaks**.

The drill:

1. run the campaign clean — cold caches, serial, unguarded — and keep
   its :meth:`~repro.campaign.engine.CampaignResult.canonical_json` as
   the baseline;
2. run it again with a shared cache directory to persist p-action
   caches;
3. corrupt the persisted files per a seeded :class:`FaultPlan`
   (bit flips + truncations), and install the plan so warm-loading
   workers also corrupt their in-memory caches (forced divergence on
   the root chain) and the first attempt of one job crashes outright;
4. run the campaign warm, guarded (``audit_every=1``), across a worker
   pool — every layer of defence fires: FSPC checksums quarantine the
   damaged files, the :class:`~repro.guard.engine.GuardedEngine`
   detects the divergences and falls back to detailed simulation, the
   campaign engine retries the crashed worker;
5. byte-compare the canonical documents and report what fired.

Everything is seeded; the same arguments injure the same bytes and the
drill passes or fails reproducibly. The CI ``chaos`` job runs this via
``fastsim-repro chaos`` (see docs/robustness.md).

Two further drills ride on the same machinery: ``hang=True`` wedges
one worker mid-job (heartbeats stop; the supervisor must detect and
replace it), ``shared_outage=True`` fails shared-cache-tier
operations (the :class:`~repro.campaign.cachedir.TieredCacheStore`
circuit breaker must trip and degrade to local-only) — both still
demanding byte-identical output. :func:`run_resume_drill` is the
engine-kill counterpart: it SIGKILLs the campaign *engine*
mid-campaign (via :func:`~repro.guard.faults.maybe_kill_engine`),
resumes from the durable journal, and ``cmp``s the merged document
against a clean cold run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.campaign.cachedir import QUARANTINE_SUFFIX, reset_breakers
from repro.campaign.engine import Campaign, CampaignRunner
from repro.campaign.progress import NullSink, ProgressSink
from repro.guard.faults import (
    ENGINE_KILL_EXIT_CODE,
    FaultPlan,
    clear_plan,
    inject_disk_faults,
    install_plan,
)

#: Default workload subset — small enough for CI, varied enough to
#: exercise loads, stores, branches, and rollbacks.
DEFAULT_WORKLOADS = ("compress", "go", "tomcatv")


@dataclass
class ChaosReport:
    """What the drill did and whether the invariant held."""

    identical: bool
    jobs: int
    failed: int
    workers: int
    crash_job: str
    crashed: bool
    backend: str = "fork"
    #: Whether the drill corrupted a shared cache tier (two-tier mode)
    #: rather than a flat store.
    tiered: bool = False
    disk_faults: List[Dict[str, object]] = field(default_factory=list)
    memory_faults: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    divergences: int = 0
    audits: int = 0
    baseline_json: str = ""
    chaos_json: str = ""

    #: Whether the plan asked for a forced in-memory divergence.
    expected_divergence: bool = True
    #: Whether the plan injected on-disk corruption (the quarantine
    #: gates only apply when it did).
    expected_disk_damage: bool = True
    #: Job wedged by the injected hang ("" = no hang drill) and
    #: whether it actually fired (marker file seen).
    hang_job: str = ""
    hung: bool = False
    #: Whether a shared-tier outage was injected, and how many times
    #: job stores reported newly opening the circuit breaker.
    shared_outage: bool = False
    breaker_opened: int = 0

    @property
    def ok(self) -> bool:
        """The drill passes only if output survived *and* the faults
        actually fired (a drill that injures nothing proves nothing)."""
        return (self.identical and self.failed == 0
                and (bool(self.disk_faults) and bool(self.quarantined)
                     or not self.expected_disk_damage)
                and (self.divergences > 0
                     or not self.expected_divergence)
                and (self.crashed or not self.crash_job)
                and (self.hung or not self.hang_job)
                and (self.breaker_opened > 0 or not self.shared_outage))

    def render(self) -> str:
        lines = [
            f"chaos drill: {'PASS' if self.ok else 'FAIL'}",
            f"  jobs                 {self.jobs} "
            f"({self.failed} failed), workers={self.workers}, "
            f"backend={self.backend}"
            + (", tiered cache" if self.tiered else ""),
            f"  canonical identical  {self.identical}",
            f"  disk faults          {len(self.disk_faults)} "
            f"({', '.join(sorted({str(f['kind']) for f in self.disk_faults}))})"
            if self.disk_faults else "  disk faults          0",
            f"  quarantined files    {len(self.quarantined)}",
            f"  memory faults        "
            f"{', '.join(self.memory_faults) if self.memory_faults else 0}",
            f"  audits / divergences {self.audits} / {self.divergences}",
        ]
        if self.crash_job:
            status = "crashed+retried" if self.crashed else "NO CRASH"
            lines.append(f"  worker crash         {self.crash_job} "
                         f"({status})")
        if self.hang_job:
            status = "hung+replaced" if self.hung else "NO HANG"
            lines.append(f"  worker hang          {self.hang_job} "
                         f"({status})")
        if self.shared_outage:
            lines.append(f"  breaker opened       {self.breaker_opened}")
        return "\n".join(lines)


def _collect_guard_metrics(report: ChaosReport, results) -> None:
    for job_result in results:
        metrics = job_result.metrics
        report.divergences += int(metrics.get("audit_divergences", 0))
        report.audits += int(metrics.get("audits", 0))
        for label in metrics.get("faults_injected", ()):
            report.memory_faults.append(f"{job_result.key}:{label}")
        cache_tier = metrics.get("cache_tier") or {}
        report.breaker_opened += int(cache_tier.get("breaker_opened", 0))


def run_chaos(
    workloads: Optional[Sequence[str]] = None,
    scale: str = "tiny",
    workers: int = 2,
    seed: int = 0,
    disk_bit_flips: int = 1,
    disk_truncations: int = 1,
    force_divergence: bool = True,
    crash: bool = True,
    audit_every: int = 1,
    audit_seed: int = 0,
    work_dir: Optional[str] = None,
    sink: Optional[ProgressSink] = None,
    obs=None,
    backend: str = "fork",
    tiered: bool = False,
    hang: bool = False,
    shared_outage: bool = False,
) -> ChaosReport:
    """Run the deterministic chaos drill; returns a :class:`ChaosReport`.

    *work_dir* holds the cache store and crash marker (a temporary
    directory is created — and left for inspection on failure — when
    omitted). ``crash`` requires ``workers >= 1``: the injected crash
    kills the executing process, which on the serial path would be the
    caller. It also requires a process-isolated *backend* — the
    ``queue`` backend runs jobs on caller threads, so the injected
    ``os._exit`` would take the drill itself down (pass
    ``crash=False`` to drill the queue backend). With *tiered*, the
    drill records caches through a two-tier store and corrupts the
    **shared** tier: the chaotic run starts with a fresh local tier,
    so every warm read falls through to the injured shared files,
    which must quarantine and re-run — not diverge. Disk faults must
    leave at least one persisted cache intact or the forced divergence
    has no warm chain to corrupt. Any installed :class:`FaultPlan` is
    cleared on exit.

    *hang* additionally wedges the last job's first attempt (the
    worker goes silent mid-job); the chaotic runner supervises with a
    short ``hang_after`` budget and must detect, replace, and retry —
    any backend works. *shared_outage* (requires *tiered*) fails
    shared-tier operations after the first one; the tiered store's
    circuit breaker must trip (``breaker_opened``) and the campaign
    degrade to local-only with identical canonical output. It needs a
    backend whose workers live long enough to accumulate consecutive
    failures — per-attempt forked workers never do, so ``fork`` is
    rejected.
    """
    if workers < 1:
        raise ValueError("chaos needs a worker pool (workers >= 1); "
                         "the injected crash would kill the caller")
    if crash and backend == "queue":
        raise ValueError(
            "the queue backend has no process isolation — the "
            "injected crash would kill the drill itself; pass "
            "crash=False (--no-crash) or a process-isolated backend"
        )
    if shared_outage and not tiered:
        raise ValueError(
            "shared_outage drills the shared cache tier's circuit "
            "breaker; it requires tiered=True"
        )
    if shared_outage and backend == "fork":
        raise ValueError(
            "per-attempt forked workers reset the outage/breaker "
            "state every job, so the breaker can never accumulate "
            "its consecutive-failure threshold; use the queue or "
            "subprocess backend for shared_outage"
        )
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    if force_divergence and disk_bit_flips + disk_truncations >= len(names):
        raise ValueError(
            "disk faults would corrupt every persisted cache; leave at "
            "least one intact so the forced divergence can warm-load "
            "(fewer faults, or more workloads)"
        )
    sink = sink if sink is not None else NullSink()

    if work_dir is None:
        work_dir = tempfile.mkdtemp(prefix="fastsim-chaos-")
    cache_dir = os.path.join(work_dir, "pcache")
    scratch = os.path.join(work_dir, "scratch")
    os.makedirs(scratch, exist_ok=True)
    # Two-tier mode: caches are recorded through local+shared tiers,
    # the SHARED tier is injured, and the chaotic run gets a fresh
    # local tier so every warm read must fall through to the damage.
    shared_dir = os.path.join(work_dir, "shared-pcache") if tiered else None
    chaos_cache_dir = (os.path.join(work_dir, "pcache-chaotic")
                       if tiered else cache_dir)
    fault_dir = shared_dir if tiered else cache_dir

    def build_campaign(audited: bool) -> Campaign:
        from dataclasses import replace

        campaign = Campaign.grid(names, simulators=("fast",),
                                 scale=scale, name=f"chaos-{scale}")
        if not audited:
            return campaign
        return Campaign(
            jobs=tuple(
                replace(job, audit_every=audit_every,
                        audit_seed=audit_seed)
                for job in campaign.jobs
            ),
            name=campaign.name,
        )

    # 1. Clean cold serial baseline — the ground truth.
    sink.log("chaos: baseline (cold, serial, unguarded)")
    baseline = CampaignRunner(workers=0, sink=sink,
                              obs=obs).run(build_campaign(False))
    baseline_json = baseline.canonical_json()

    # 2. Populate the shared cache store (write-back fills the shared
    # tier in two-tier mode).
    sink.log("chaos: recording persisted caches"
             + (" (tiered)" if tiered else ""))
    CampaignRunner(workers=0, cache_dir=cache_dir,
                   shared_cache_dir=shared_dir, sink=sink,
                   obs=obs).run(build_campaign(False))

    jobs = build_campaign(False).jobs
    crash_job = jobs[0].key if crash else ""
    hang_job = jobs[-1].key if hang else ""
    plan = FaultPlan(
        seed=seed,
        disk_bit_flips=disk_bit_flips,
        disk_truncations=disk_truncations,
        force_divergence=force_divergence,
        crash_job=crash_job,
        hang_job=hang_job,
        shared_outage_after=1 if shared_outage else -1,
        scratch=scratch,
    )

    # 3. Injure the store and arm the in-process injectors.
    disk_faults = inject_disk_faults(fault_dir, plan)
    sink.log(f"chaos: injected {len(disk_faults)} disk faults"
             + (" into the shared tier" if tiered else ""))
    reset_breakers()
    install_plan(plan)
    try:
        # 4. The fault-riddled warm, guarded, parallel run.
        # The subprocess outage drill funnels every job through one
        # persistent worker: the breaker needs a single process to see
        # the full run of consecutive shared-tier failures, and jobs
        # spread across a pool would each contribute only a couple.
        chaos_workers = (1 if shared_outage and backend == "subprocess"
                         else workers)
        sink.log(f"chaos: warm guarded campaign (workers={chaos_workers}, "
                 f"backend={backend})")
        chaotic = CampaignRunner(
            workers=chaos_workers, cache_dir=chaos_cache_dir,
            shared_cache_dir=shared_dir, sink=sink, obs=obs,
            backend=backend,
            hang_after=1.5 if hang else None,
        ).run(build_campaign(True))
    finally:
        clear_plan()
        reset_breakers()
    chaos_json = chaotic.canonical_json()

    # 5. Verdict.
    report = ChaosReport(
        identical=chaos_json == baseline_json,
        jobs=len(chaotic),
        failed=len(chaotic.failed),
        workers=workers,
        crash_job=crash_job,
        crashed=bool(crash_job) and os.path.exists(os.path.join(
            scratch, "crashed-" + crash_job.replace(":", "_"))),
        disk_faults=disk_faults,
        quarantined=sorted(
            name for name in os.listdir(fault_dir)
            if name.endswith(QUARANTINE_SUFFIX)
        ),
        baseline_json=baseline_json,
        chaos_json=chaos_json,
        expected_divergence=force_divergence,
        expected_disk_damage=disk_bit_flips + disk_truncations > 0,
        backend=backend,
        tiered=tiered,
        hang_job=hang_job,
        hung=bool(hang_job) and os.path.exists(os.path.join(
            scratch, "hung-" + hang_job.replace(":", "_"))),
        shared_outage=shared_outage,
    )
    _collect_guard_metrics(report, chaotic.results)
    if obs is not None and getattr(obs, "enabled", False):
        obs.event("guard.chaos-drill", cat="guard",
                  ok=report.ok, identical=report.identical,
                  divergences=report.divergences,
                  quarantined=len(report.quarantined))
    return report


def main_json(report: ChaosReport) -> str:
    """A machine-readable drill summary (CI artifact)."""
    payload = {
        "ok": report.ok,
        "identical": report.identical,
        "jobs": report.jobs,
        "failed": report.failed,
        "workers": report.workers,
        "disk_faults": report.disk_faults,
        "memory_faults": report.memory_faults,
        "quarantined": report.quarantined,
        "audits": report.audits,
        "divergences": report.divergences,
        "crash_job": report.crash_job,
        "crashed": report.crashed,
        "backend": report.backend,
        "tiered": report.tiered,
        "hang_job": report.hang_job,
        "hung": report.hung,
        "shared_outage": report.shared_outage,
        "breaker_opened": report.breaker_opened,
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


# ----------------------------------------------------------------------
# The engine-kill resume drill (journal + resume, cmp-identical)
# ----------------------------------------------------------------------

@dataclass
class ResumeReport:
    """What the engine-kill resume drill did and whether it held."""

    identical: bool
    jobs: int
    #: Jobs the resumed run skipped via journal replay.
    resumed: int
    kill_after: int
    #: Exit code of the doomed engine process (must be
    #: :data:`~repro.guard.faults.ENGINE_KILL_EXIT_CODE`).
    exit_code: Optional[int]
    backend: str = "fork"
    baseline_json: str = ""
    resumed_json: str = ""

    @property
    def killed(self) -> bool:
        return self.exit_code == ENGINE_KILL_EXIT_CODE

    @property
    def ok(self) -> bool:
        """Pass = the engine really died mid-campaign, the resumed run
        skipped exactly the journaled outcomes, and the merged document
        is byte-identical to an uninterrupted cold run."""
        return (self.identical and self.killed
                and self.resumed == self.kill_after)

    def render(self) -> str:
        return "\n".join([
            f"resume drill: {'PASS' if self.ok else 'FAIL'}",
            f"  backend              {self.backend}",
            f"  engine killed        {self.killed} "
            f"(exit code {self.exit_code})",
            f"  journaled outcomes   {self.kill_after}",
            f"  jobs resumed/total   {self.resumed}/{self.jobs}",
            f"  canonical identical  {self.identical}",
        ])


def _run_doomed(names, scale, workers, backend, journal,
                kill_after, scratch) -> None:
    """Child-process body: run journaled until the injected kill.

    The kill is ``os._exit`` (no cleanup, no atexit) — the closest
    in-process approximation of SIGKILL that still lets the fault plan
    choose the moment: immediately after the ``kill_after``-th outcome
    record became durable.
    """
    install_plan(FaultPlan(kill_engine_after=kill_after,
                           scratch=scratch))
    try:
        CampaignRunner(
            workers=workers, backend=backend, journal=journal,
            sink=NullSink(),
        ).run(Campaign.grid(names, simulators=("fast",), scale=scale,
                            name=f"resume-{scale}"))
    finally:
        clear_plan()
    # Reaching this line means the kill never fired; exit 0 so the
    # parent's exit-code assertion flags the drill as failed.
    os._exit(0)


def run_resume_drill(
    workloads: Optional[Sequence[str]] = None,
    scale: str = "tiny",
    workers: int = 2,
    backend: str = "fork",
    kill_after: int = 1,
    work_dir: Optional[str] = None,
    sink: Optional[ProgressSink] = None,
) -> ResumeReport:
    """Kill the engine mid-campaign, resume from the journal, compare.

    The sequence the crash-safety claim rests on (docs/robustness.md):

    1. clean cold serial run — baseline canonical document;
    2. the same campaign, journaled, in a forked child engine whose
       fault plan kills it (``os._exit``) right after *kill_after*
       outcomes are durably journaled — the parent asserts the child
       died with :data:`~repro.guard.faults.ENGINE_KILL_EXIT_CODE`;
    3. ``CampaignRunner(resume=journal)`` replays the journal, skips
       the recorded jobs, runs the rest on *backend*;
    4. the resumed merged document must be byte-identical to the
       baseline, with exactly *kill_after* jobs skipped.
    """
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    if kill_after < 1:
        raise ValueError("kill_after must be >= 1 (a kill before any "
                         "durable outcome is just a fresh run)")
    if kill_after >= len(names):
        raise ValueError(
            "kill_after must leave at least one job unfinished, or "
            "the resume has nothing to prove")
    sink = sink if sink is not None else NullSink()
    if work_dir is None:
        work_dir = tempfile.mkdtemp(prefix="fastsim-resume-")
    journal = os.path.join(work_dir, "campaign.journal")
    scratch = os.path.join(work_dir, "scratch")
    os.makedirs(scratch, exist_ok=True)

    def build_campaign() -> Campaign:
        return Campaign.grid(names, simulators=("fast",), scale=scale,
                             name=f"resume-{scale}")

    # 1. Clean cold serial baseline — the ground truth.
    sink.log("resume drill: baseline (cold, serial)")
    baseline_json = CampaignRunner(
        workers=0, sink=sink).run(build_campaign()).canonical_json()

    # 2. The doomed journaled run, in its own engine process.
    sink.log(f"resume drill: doomed engine (kill after {kill_after} "
             f"outcomes, backend={backend})")
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        context = multiprocessing.get_context()
    child = context.Process(
        target=_run_doomed,
        args=(names, scale, workers, backend, journal, kill_after,
              scratch),
    )
    child.start()
    child.join(timeout=300)
    if child.is_alive():  # pragma: no cover - only on a wedged drill
        child.terminate()
        child.join()
    exit_code = child.exitcode

    # 3 + 4. Resume from the journal; compare against the baseline.
    sink.log("resume drill: resuming from journal")
    resumer = CampaignRunner(workers=workers, backend=backend,
                             resume=journal, sink=sink)
    resumed_json = resumer.run(build_campaign()).canonical_json()
    return ResumeReport(
        identical=resumed_json == baseline_json,
        jobs=len(names),
        resumed=resumer.resumed,
        kill_after=kill_after,
        exit_code=exit_code,
        backend=backend,
        baseline_json=baseline_json,
        resumed_json=resumed_json,
    )

"""repro.guard — trust, but verify the memoization pipeline.

FastSim's performance rests on replaying recorded p-action chains
instead of re-simulating. That makes the p-action cache *load-bearing
state*: a corrupted node — on disk, in memory, or injected by a bug —
silently becomes wrong published numbers. This package defends the
bit-identical invariant in depth:

* :class:`GuardedEngine` — a drop-in :class:`FastForwardEngine` that
  audits sampled replay episodes in lockstep against a fresh detailed
  simulator, and on divergence quarantines the corrupt chain and falls
  back to detailed simulation (degrade, never crash, never emit
  un-audited wrong numbers);
* :mod:`repro.guard.faults` — seeded, deterministic fault injectors
  (disk bit-flips/truncation, in-memory node corruption, forced
  divergence, worker crashes/hangs, engine kills, shared-tier
  outages) behind a :class:`FaultPlan`;
* :mod:`repro.guard.chaos` — the end-to-end chaos drills: prove a
  fault-riddled warm campaign produces output byte-identical to a
  clean cold run (the ``fastsim-repro chaos`` CLI), and prove a
  SIGKILL'd journaled engine resumes to the same bytes
  (:func:`run_resume_drill`, ``fastsim-repro chaos --resume-drill``).

The integrity-checked FSPC v2 persistence format itself lives in
:mod:`repro.memo.persist`; see docs/robustness.md for the threat model
and how the layers compose.
"""

from repro.guard.engine import DivergenceReport, GuardedEngine
from repro.guard.faults import (
    CRASH_EXIT_CODE,
    ENGINE_KILL_EXIT_CODE,
    FaultPlan,
    active_plan,
    apply_memory_faults,
    clear_plan,
    force_chain_divergence,
    hang_active,
    inject_disk_faults,
    install_plan,
    maybe_crash,
    maybe_hang,
    maybe_kill_engine,
    maybe_shared_outage,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "ENGINE_KILL_EXIT_CODE",
    "DivergenceReport",
    "FaultPlan",
    "GuardedEngine",
    "active_plan",
    "apply_memory_faults",
    "clear_plan",
    "force_chain_divergence",
    "hang_active",
    "inject_disk_faults",
    "install_plan",
    "maybe_crash",
    "maybe_hang",
    "maybe_kill_engine",
    "maybe_shared_outage",
]

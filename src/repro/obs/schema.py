"""JSON-lines record schemas and the validator ``repro.obs`` exports.

Every machine-readable line the observability layer emits carries a
``"schema"`` field naming its record shape and version::

    {"schema": "repro.obs/metric/v1", "kind": "counter", ...}
    {"schema": "repro.obs/trace-event/v1", "name": "memo.record", ...}
    {"schema": "repro.campaign/job-metrics/v2", "key": "compress:fast:tiny", ...}

Versioned schemas are what make ``cmp``- and ``jq``-based CI checks
safe: a consumer can reject lines it does not understand instead of
silently misreading them, and a schema bump is an explicit, reviewable
event. :func:`validate_record` / :func:`validate_lines` implement a
deliberately small structural check (required fields + types) — not a
full JSON-Schema engine — and are what the CI job and the test suite
run over emitted streams. ``python -m repro.obs FILE...`` validates
files from the command line.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

SCHEMA_KEY = "schema"

#: One metric instrument (counter/gauge/histogram/series) snapshot.
METRIC_SCHEMA = "repro.obs/metric/v1"
#: One trace event (span/instant/counter sample).
TRACE_SCHEMA = "repro.obs/trace-event/v1"
#: One campaign per-job metrics record (schema-versioned successor of
#: the PR-2 ad-hoc dicts; documented in docs/campaign.md).
JOB_METRICS_SCHEMA = "repro.campaign/job-metrics/v2"

_NUMBER = (int, float)

#: Required fields per schema: name -> (type or tuple of types).
_REQUIRED: Dict[str, Dict[str, tuple]] = {
    METRIC_SCHEMA: {
        "kind": (str,),
        "name": (str,),
    },
    TRACE_SCHEMA: {
        "name": (str,),
        "ph": (str,),
        "ts": _NUMBER,
        "cat": (str,),
        "clock": (str,),
    },
    JOB_METRICS_SCHEMA: {
        "key": (str,),
        "status": (str,),
        "attempts": (int,),
        "retries": (int,),
        "host_seconds": _NUMBER,
    },
}

#: Closed vocabularies for enum-like fields.
_ENUMS: Dict[Tuple[str, str], tuple] = {
    (METRIC_SCHEMA, "kind"): ("counter", "gauge", "histogram", "series"),
    (TRACE_SCHEMA, "ph"): ("X", "i", "C"),
    (TRACE_SCHEMA, "clock"): ("host", "sim"),
    (JOB_METRICS_SCHEMA, "status"): ("ok", "failed"),
}


def stamp(schema: str, record: Dict[str, object]) -> Dict[str, object]:
    """Return *record* with its schema field set (copies, never mutates)."""
    stamped = dict(record)
    stamped[SCHEMA_KEY] = schema
    return stamped


def validate_record(record: object) -> List[str]:
    """Structural problems with one decoded record ([] when valid)."""
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    schema = record.get(SCHEMA_KEY)
    if not isinstance(schema, str):
        return ["missing or non-string 'schema' field"]
    required = _REQUIRED.get(schema)
    if required is None:
        return [f"unknown schema {schema!r}"]
    problems = []
    for field in sorted(required):
        types = required[field]
        if field not in record:
            problems.append(f"{schema}: missing required field {field!r}")
        elif not isinstance(record[field], types):
            problems.append(
                f"{schema}: field {field!r} is "
                f"{type(record[field]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    for (enum_schema, field), allowed in sorted(_ENUMS.items()):
        if enum_schema == schema and field in record:
            if record[field] not in allowed:
                problems.append(
                    f"{schema}: field {field!r} value "
                    f"{record[field]!r} not in {allowed}"
                )
    return problems


def validate_lines(lines: Iterable[str]) -> List[str]:
    """Validate a JSON-lines stream; returns per-line problems."""
    problems = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {number}: not JSON ({exc})")
            continue
        for problem in validate_record(record):
            problems.append(f"line {number}: {problem}")
    return problems


def validate_file(path: str) -> List[str]:
    """Validate one ``.jsonl`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return [f"{path}: {problem}"
                for problem in validate_lines(handle)]

"""JSON-lines record schemas and the validator ``repro.obs`` exports.

Every machine-readable line the observability layer emits carries a
``"schema"`` field naming its record shape and version::

    {"schema": "repro.obs/metric/v1", "kind": "counter", ...}
    {"schema": "repro.obs/trace-event/v1", "name": "memo.record", ...}
    {"schema": "repro.campaign/job-metrics/v3", "key": "compress:fast:tiny", ...}

Versioned schemas are what make ``cmp``- and ``jq``-based CI checks
safe: a consumer can reject lines it does not understand instead of
silently misreading them, and a schema bump is an explicit, reviewable
event. :func:`validate_record` / :func:`validate_lines` implement a
deliberately small structural check (required fields + types) — not a
full JSON-Schema engine — and are what the CI job and the test suite
run over emitted streams. ``python -m repro.obs FILE...`` validates
files from the command line; a file whose whole body is one JSON
object with a ``traceEvents`` array is validated as a Chrome trace
document (:func:`validate_chrome_trace`) instead of line by line.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

SCHEMA_KEY = "schema"

#: One metric instrument (counter/gauge/histogram/series) snapshot.
METRIC_SCHEMA = "repro.obs/metric/v1"
#: One trace event (span/instant/counter sample).
TRACE_SCHEMA = "repro.obs/trace-event/v1"
#: One worker's shipped telemetry blob (registry snapshot + ring
#: events), carried inside the backend result channel and merged by
#: the engine — see :mod:`repro.obs.worker`.
WORKER_TELEMETRY_SCHEMA = "repro.obs/worker-telemetry/v1"
#: One campaign per-job metrics record. v3 adds the ``worker`` lane
#: label and the ``cancelled`` status (both shipped since the backends
#: PR); documented in docs/campaign.md.
JOB_METRICS_SCHEMA = "repro.campaign/job-metrics/v3"
#: The v2 shape (pre-distributed-telemetry) stays valid for archived
#: streams.
JOB_METRICS_SCHEMA_V2 = "repro.campaign/job-metrics/v2"
#: One campaign-level summary record closing a metrics stream:
#: wall time, worker count, and the executor backend's mechanism
#: counters (forks/steals/respawns) under ``"backend"``.
CAMPAIGN_METRICS_SCHEMA = "repro.campaign/campaign-metrics/v1"
#: One live campaign event from :meth:`CampaignHandle.events`
#: (SSE-ready; see docs/observability.md).
EVENT_SCHEMA = "repro.campaign/event/v1"
#: One durable campaign-journal record (CRC-framed on disk, written at
#: submit/attempt/outcome/merge boundaries; replayed by
#: ``CampaignRunner(resume=...)`` — see docs/robustness.md).
JOURNAL_SCHEMA = "repro.campaign/journal/v1"

_NUMBER = (int, float)

#: Required fields per schema: name -> (type or tuple of types).
_REQUIRED: Dict[str, Dict[str, tuple]] = {
    METRIC_SCHEMA: {
        "kind": (str,),
        "name": (str,),
    },
    TRACE_SCHEMA: {
        "name": (str,),
        "ph": (str,),
        "ts": _NUMBER,
        "cat": (str,),
        "clock": (str,),
    },
    WORKER_TELEMETRY_SCHEMA: {
        "job_key": (str,),
        "attempt": (int,),
        "worker": (str,),
        "metrics": (dict,),
        "events": (list,),
        "spans_dropped": (int,),
    },
    JOB_METRICS_SCHEMA: {
        "key": (str,),
        "status": (str,),
        "attempts": (int,),
        "retries": (int,),
        "host_seconds": _NUMBER,
    },
    JOB_METRICS_SCHEMA_V2: {
        "key": (str,),
        "status": (str,),
        "attempts": (int,),
        "retries": (int,),
        "host_seconds": _NUMBER,
    },
    CAMPAIGN_METRICS_SCHEMA: {
        "name": (str,),
        "jobs": (int,),
        "failed": (int,),
        "wall_seconds": _NUMBER,
        "workers": (int,),
        "backend": (dict,),
    },
    EVENT_SCHEMA: {
        "event": (str,),
        "seq": (int,),
    },
    JOURNAL_SCHEMA: {
        "kind": (str,),
        "seq": (int,),
    },
}

#: Closed vocabularies for enum-like fields.
_ENUMS: Dict[Tuple[str, str], tuple] = {
    (METRIC_SCHEMA, "kind"): ("counter", "gauge", "histogram", "series"),
    (TRACE_SCHEMA, "ph"): ("X", "i", "C"),
    (TRACE_SCHEMA, "clock"): ("host", "sim"),
    (JOB_METRICS_SCHEMA, "status"): ("ok", "failed", "cancelled",
                                     "poisoned"),
    (JOB_METRICS_SCHEMA_V2, "status"): ("ok", "failed"),
    (JOURNAL_SCHEMA, "kind"): ("campaign-open", "campaign-resume",
                               "attempt", "outcome", "campaign-end",
                               "campaign-cancelled"),
}

#: Chrome trace_event phases the exporter may emit ("M" = metadata).
_CHROME_PHASES = ("C", "M", "X", "i")


def stamp(schema: str, record: Dict[str, object]) -> Dict[str, object]:
    """Return *record* with its schema field set (copies, never mutates)."""
    stamped = dict(record)
    stamped[SCHEMA_KEY] = schema
    return stamped


def validate_record(record: object) -> List[str]:
    """Structural problems with one decoded record ([] when valid)."""
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    schema = record.get(SCHEMA_KEY)
    if not isinstance(schema, str):
        return ["missing or non-string 'schema' field"]
    required = _REQUIRED.get(schema)
    if required is None:
        return [f"unknown schema {schema!r}"]
    problems = []
    for field in sorted(required):
        types = required[field]
        if field not in record:
            problems.append(f"{schema}: missing required field {field!r}")
        elif not isinstance(record[field], types):
            problems.append(
                f"{schema}: field {field!r} is "
                f"{type(record[field]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    for (enum_schema, field), allowed in sorted(_ENUMS.items()):
        if enum_schema == schema and field in record:
            if record[field] not in allowed:
                problems.append(
                    f"{schema}: field {field!r} value "
                    f"{record[field]!r} not in {allowed}"
                )
    return problems


def validate_chrome_trace(document: object) -> List[str]:
    """Structural problems with a Chrome ``traceEvents`` document.

    The exporter's output (:mod:`repro.obs.chrome`) is not JSON lines,
    so it gets its own check: a ``traceEvents`` array whose entries
    carry the trace_event required fields, known phases, integer
    pid/tid lanes, and durations on complete ('X') events.
    """
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    if not events:
        return ["'traceEvents' is empty"]
    problems = []
    for number, event in enumerate(events):
        where = f"traceEvents[{number}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field, types in (("name", (str,)), ("ph", (str,)),
                             ("pid", (int,)), ("tid", (int,)),
                             ("ts", _NUMBER)):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
            elif not isinstance(event[field], types):
                problems.append(
                    f"{where}: field {field!r} is "
                    f"{type(event[field]).__name__}"
                )
        phase = event.get("ph")
        if isinstance(phase, str) and phase not in _CHROME_PHASES:
            problems.append(
                f"{where}: phase {phase!r} not in {_CHROME_PHASES}"
            )
        if phase == "X" and not isinstance(event.get("dur"), _NUMBER):
            problems.append(f"{where}: 'X' event without numeric 'dur'")
    return problems


def validate_lines(lines: Iterable[str]) -> List[str]:
    """Validate a JSON-lines stream; returns per-line problems."""
    problems = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {number}: not JSON ({exc})")
            continue
        for problem in validate_record(record):
            problems.append(f"line {number}: {problem}")
    return problems


def validate_file(path: str) -> List[str]:
    """Validate one file — ``.jsonl`` streams or a Chrome trace JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if text.lstrip().startswith("{"):
        try:
            document = json.loads(text)
        except ValueError:
            document = None
        if isinstance(document, dict) and "traceEvents" in document:
            return [f"{path}: {problem}"
                    for problem in validate_chrome_trace(document)]
    return [f"{path}: {problem}"
            for problem in validate_lines(text.splitlines())]

"""Chrome ``trace_event`` export — view traces in Perfetto.

Converts :class:`~repro.obs.spans.TraceEvent` streams into the JSON
object format consumed by ``chrome://tracing`` and
https://ui.perfetto.dev (the *JSON Array Format* with a
``traceEvents`` wrapper).

Each timeline gets its own synthetic process so they never interleave
misleadingly:

* pid 1 — **host clock**: phase spans and job lifecycles, timestamps
  in real microseconds;
* pid 2 — **simulated clock**: pipeline traces and sampled counter
  tracks, one "microsecond" per simulated cycle;
* pid 3+ — **worker lanes**: events shipped back by campaign workers
  through the distributed-telemetry channel (:mod:`repro.obs.worker`),
  one process per distinct :attr:`TraceEvent.lane` label, assigned in
  sorted-label order so the mapping is deterministic.

Output is deterministic for deterministic event streams: keys are
sorted and events keep emission order.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.obs.spans import CLOCK_SIM, TraceEvent

#: Synthetic process ids, one per clock domain.
PID_HOST = 1
PID_SIM = 2
#: First pid handed to worker lanes (one per sorted lane label).
PID_WORKER_BASE = 3

_PROCESS_NAMES = {
    PID_HOST: "fastsim host (wall clock)",
    PID_SIM: "fastsim simulation (cycle clock)",
}


def lane_pids(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Deterministic lane-label → pid map (sorted labels, pid 3+)."""
    labels = sorted({event.lane for event in events
                     if event.lane is not None})
    return {label: PID_WORKER_BASE + index
            for index, label in enumerate(labels)}


def _metadata_events(lanes: Optional[Dict[str, int]] = None
                     ) -> List[Dict[str, object]]:
    names = dict(_PROCESS_NAMES)
    for label in sorted(lanes or ()):
        names[lanes[label]] = f"fastsim worker {label}"
    events = []
    for pid in sorted(names):
        events.append({
            "args": {"name": names[pid]},
            "cat": "__metadata",
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
        })
    return events


def chrome_event(event: TraceEvent,
                 lanes: Optional[Dict[str, int]] = None
                 ) -> Dict[str, object]:
    """One TraceEvent in Chrome trace_event form.

    *lanes* maps worker-lane labels to pids (see :func:`lane_pids`);
    an event with a lane not in the map (or with no map) falls back to
    its clock-domain pid so standalone conversion stays valid.
    """
    pid = PID_SIM if event.clock == CLOCK_SIM else PID_HOST
    if event.lane is not None and lanes:
        pid = lanes.get(event.lane, pid)
    record: Dict[str, object] = {
        "cat": event.cat,
        "name": event.name,
        "ph": event.ph,
        "pid": pid,
        "tid": 0,
        "ts": event.ts,
    }
    if event.ph == "X":
        # Complete events must carry a duration; clamp zero-length
        # spans to a visible sliver.
        record["dur"] = max(event.dur or 0.0, 0.01)
    if event.args:
        record["args"] = {key: event.args[key]
                          for key in sorted(event.args)}
    return record


def chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """The full exportable document (``traceEvents`` wrapper form)."""
    events = list(events)
    lanes = lane_pids(events)
    trace_events = _metadata_events(lanes)
    trace_events.extend(chrome_event(event, lanes) for event in events)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs"},
        "traceEvents": trace_events,
    }


def render_chrome_trace(events: Iterable[TraceEvent]) -> str:
    """JSON text of the Chrome trace (sorted keys, trailing newline)."""
    return json.dumps(chrome_trace(events), sort_keys=True,
                      default=str, indent=1) + "\n"


def write_chrome_trace(path: str, events: Iterable[TraceEvent]) -> None:
    """Write a ``.json`` trace loadable by chrome://tracing / Perfetto."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_chrome_trace(events))

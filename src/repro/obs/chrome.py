"""Chrome ``trace_event`` export — view traces in Perfetto.

Converts :class:`~repro.obs.spans.TraceEvent` streams into the JSON
object format consumed by ``chrome://tracing`` and
https://ui.perfetto.dev (the *JSON Array Format* with a
``traceEvents`` wrapper).

The two clocks get two synthetic processes so their timelines never
interleave misleadingly:

* pid 1 — **host clock**: phase spans and job lifecycles, timestamps
  in real microseconds;
* pid 2 — **simulated clock**: pipeline traces and sampled counter
  tracks, one "microsecond" per simulated cycle.

Output is deterministic for deterministic event streams: keys are
sorted and events keep emission order.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.obs.spans import CLOCK_SIM, TraceEvent

#: Synthetic process ids, one per clock domain.
PID_HOST = 1
PID_SIM = 2

_PROCESS_NAMES = {
    PID_HOST: "fastsim host (wall clock)",
    PID_SIM: "fastsim simulation (cycle clock)",
}


def _metadata_events() -> List[Dict[str, object]]:
    events = []
    for pid in sorted(_PROCESS_NAMES):
        events.append({
            "args": {"name": _PROCESS_NAMES[pid]},
            "cat": "__metadata",
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
        })
    return events


def chrome_event(event: TraceEvent) -> Dict[str, object]:
    """One TraceEvent in Chrome trace_event form."""
    pid = PID_SIM if event.clock == CLOCK_SIM else PID_HOST
    record: Dict[str, object] = {
        "cat": event.cat,
        "name": event.name,
        "ph": event.ph,
        "pid": pid,
        "tid": 0,
        "ts": event.ts,
    }
    if event.ph == "X":
        # Complete events must carry a duration; clamp zero-length
        # spans to a visible sliver.
        record["dur"] = max(event.dur or 0.0, 0.01)
    if event.args:
        record["args"] = {key: event.args[key]
                          for key in sorted(event.args)}
    return record


def chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """The full exportable document (``traceEvents`` wrapper form)."""
    trace_events = _metadata_events()
    trace_events.extend(chrome_event(event) for event in events)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs"},
        "traceEvents": trace_events,
    }


def render_chrome_trace(events: Iterable[TraceEvent]) -> str:
    """JSON text of the Chrome trace (sorted keys, trailing newline)."""
    return json.dumps(chrome_trace(events), sort_keys=True,
                      default=str, indent=1) + "\n"


def write_chrome_trace(path: str, events: Iterable[TraceEvent]) -> None:
    """Write a ``.json`` trace loadable by chrome://tracing / Perfetto."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_chrome_trace(events))

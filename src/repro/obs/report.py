"""``repro obs report`` — a text dashboard over campaign telemetry.

Reads the files a campaign run leaves behind — the merged metrics
JSON-lines stream (``repro.obs/metric/v1`` instrument records,
``repro.campaign/job-metrics/v3`` per-job records, the closing
``repro.campaign/campaign-metrics/v1`` record) and/or the multi-lane
Chrome trace — and renders the digest a person scanning a finished
campaign wants:

* campaign shape: jobs, failures, wall seconds, worker count, and the
  backend's mechanism counters (dispatches, steals, crashes, …);
* per-worker utilization: jobs run, busy seconds, and busy/wall ratio
  per lane, from the ``worker`` field job records carry;
* memo effectiveness: final hit ratio per job (the
  ``memo.hit_ratio@<job>`` sampled series the telemetry merge
  namespaces) plus encode/resync counters;
* turbo chain-compilation counters and tiered-cache hit rates;
* reliability: retries, steals, crashes, timeouts.

Everything here is **read-only rendering of host-side diagnostics**;
nothing feeds back into canonical outputs. Sections with no data are
omitted, so the report degrades gracefully on partial inputs (a
metrics file alone, a trace alone, obs-off runs).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.obs.schema import (
    CAMPAIGN_METRICS_SCHEMA,
    JOB_METRICS_SCHEMA,
    JOB_METRICS_SCHEMA_V2,
    METRIC_SCHEMA,
    SCHEMA_KEY,
    TRACE_SCHEMA,
)

_JOB_SCHEMAS = (JOB_METRICS_SCHEMA, JOB_METRICS_SCHEMA_V2)


class ReportData:
    """Everything :func:`render` needs, accumulated over input files."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, object] = {}
        self.series_last: Dict[str, object] = {}
        self.jobs: List[Dict[str, object]] = []
        self.campaigns: List[Dict[str, object]] = []
        #: lane label -> (event count, busy host microseconds)
        self.lanes: Dict[str, Tuple[int, float]] = {}
        self.files: List[str] = []

    def _lane(self, label: str, dur: object) -> None:
        count, busy = self.lanes.get(label, (0, 0.0))
        busy += float(dur) if isinstance(dur, (int, float)) else 0.0
        self.lanes[label] = (count + 1, busy)

    # -- record ingestion ------------------------------------------------

    def add_record(self, record: Dict[str, object]) -> None:
        schema = record.get(SCHEMA_KEY)
        if schema == METRIC_SCHEMA:
            kind = record.get("kind")
            name = str(record.get("name", "?"))
            if kind == "counter":
                self.counters[name] = (self.counters.get(name, 0)
                                       + int(record.get("value", 0)))
            elif kind == "gauge":
                self.gauges[name] = record.get("value")
            elif kind == "series":
                samples = record.get("samples") or []
                if samples:
                    self.series_last[name] = samples[-1][1]
        elif schema in _JOB_SCHEMAS:
            self.jobs.append(record)
        elif schema == CAMPAIGN_METRICS_SCHEMA:
            self.campaigns.append(record)
        elif schema == TRACE_SCHEMA and record.get("lane") is not None:
            self._lane(str(record["lane"]), record.get("dur"))

    def add_chrome(self, document: Dict[str, object]) -> None:
        # Recover lane labels from the exporter's process_name
        # metadata ("fastsim worker <label>", pid >= 3).
        names: Dict[object, str] = {}
        events = document.get("traceEvents") or []
        for event in events:
            if (isinstance(event, dict)
                    and event.get("name") == "process_name"):
                label = str((event.get("args") or {}).get("name", ""))
                if label.startswith("fastsim worker "):
                    names[event.get("pid")] = label[len("fastsim worker "):]
        for event in events:
            if not isinstance(event, dict) or event.get("ph") != "X":
                continue
            label = names.get(event.get("pid"))
            if label is not None:
                self._lane(label, event.get("dur"))


def load(paths: List[str]) -> ReportData:
    """Parse metrics JSON-lines and/or Chrome trace files."""
    data = ReportData()
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        data.files.append(path)
        stripped = text.lstrip()
        if stripped.startswith("{"):
            try:
                document = json.loads(text)
            except ValueError:
                document = None
            if isinstance(document, dict) and "traceEvents" in document:
                data.add_chrome(document)
                continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                data.add_record(record)
    return data


# -- rendering ------------------------------------------------------------


def _prefixed(counters: Dict[str, int], prefix: str) -> Dict[str, int]:
    return {name: value for name, value in counters.items()
            if name.startswith(prefix)}


def _ratio(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    --"


def _campaign_section(data: ReportData, lines: List[str]) -> Optional[float]:
    wall: Optional[float] = None
    for record in data.campaigns:
        wall = float(record.get("wall_seconds", 0.0))
        lines.append(f"campaign {record.get('name', '?')}: "
                     f"{record.get('jobs', 0)} jobs, "
                     f"{record.get('failed', 0)} failed, "
                     f"{record.get('workers', 0)} workers, "
                     f"{wall:.3f}s wall")
        backend = record.get("backend") or {}
        if isinstance(backend, dict) and backend:
            pairs = ", ".join(f"{name}={backend[name]}"
                              for name in sorted(backend)
                              if name != "backend")
            name = backend.get("backend", "?")
            lines.append(f"  backend {name}: {pairs}")
    return wall


def _worker_section(data: ReportData, lines: List[str],
                    wall: Optional[float]) -> None:
    per_worker: Dict[str, Dict[str, float]] = {}
    for record in data.jobs:
        worker = record.get("worker")
        if worker is None:
            continue
        stats = per_worker.setdefault(
            str(worker), {"jobs": 0, "ok": 0, "busy": 0.0})
        stats["jobs"] += 1
        stats["ok"] += 1 if record.get("status") == "ok" else 0
        stats["busy"] += float(record.get("host_seconds") or 0.0)
    if not per_worker and not data.lanes:
        return
    lines.append("")
    lines.append("workers (jobs / ok / busy s / busy-wall ratio"
                 " / lane events):")
    labels = sorted(set(per_worker) | set(data.lanes))
    for label in labels:
        stats = per_worker.get(label, {"jobs": 0, "ok": 0, "busy": 0.0})
        events, lane_busy_us = data.lanes.get(label, (0, 0.0))
        busy = stats["busy"] or lane_busy_us / 1e6
        lines.append(
            f"  {label:20s} {int(stats['jobs']):4d} / "
            f"{int(stats['ok']):4d} / {busy:8.3f} / "
            f"{_ratio(busy, wall or 0.0)} / {events}"
        )


def _memo_section(data: ReportData, lines: List[str]) -> None:
    ratios = {name[len("memo.hit_ratio@"):]: value
              for name, value in data.series_last.items()
              if name.startswith("memo.hit_ratio@")}
    if "memo.hit_ratio" in data.series_last:
        ratios.setdefault("(serial)", data.series_last["memo.hit_ratio"])
    memo_counters = _prefixed(data.counters, "memo.")
    if not ratios and not memo_counters:
        return
    lines.append("")
    lines.append("memoization:")
    for job in sorted(ratios):
        value = ratios[job]
        shown = (f"{100.0 * value:5.1f}%"
                 if isinstance(value, (int, float)) else str(value))
        lines.append(f"  hit ratio {job:28s} {shown}")
    for name in sorted(memo_counters):
        lines.append(f"  {name:38s} {memo_counters[name]}")


def _turbo_section(data: ReportData, lines: List[str]) -> None:
    turbo: Dict[str, object] = {}
    turbo.update(_prefixed(data.counters, "turbo."))
    turbo.update({name: value for name, value in data.gauges.items()
                  if name.startswith("turbo.")})
    # Per-worker compile amortization from the job records: each job
    # carries its SegmentTable snapshot ("turbo") and, when a persisted
    # archive was installed, the install counters ("segstore").
    per_worker: Dict[str, Dict[str, int]] = {}
    seg_totals = {"installed": 0, "stale": 0, "mismatched": 0}
    for record in data.jobs:
        snapshot = record.get("turbo")
        if isinstance(snapshot, dict):
            worker = str(record.get("worker") or "(serial)")
            stats = per_worker.setdefault(
                worker, {"jobs": 0, "compiled": 0, "installed": 0,
                         "replays": 0})
            stats["jobs"] += 1
            stats["compiled"] += int(snapshot.get("segments_compiled")
                                     or 0)
            stats["installed"] += int(snapshot.get("segments_installed")
                                      or 0)
            stats["replays"] += int(snapshot.get("segment_replays") or 0)
        seg = record.get("segstore")
        if isinstance(seg, dict):
            for name in seg_totals:
                seg_totals[name] += int(seg.get(name) or 0)
    if not turbo and not per_worker:
        return
    lines.append("")
    lines.append("turbo (chain compilation):")
    for name in sorted(turbo):
        lines.append(f"  {name:38s} {turbo[name]}")
    if any(seg_totals.values()):
        shown = ", ".join(f"{name}={seg_totals[name]}"
                          for name in sorted(seg_totals))
        lines.append(f"  {'persisted segments':38s} {shown}")
    if per_worker:
        lines.append("  per-worker compile amortization "
                     "(jobs / compiled / installed / replays "
                     "/ replays-per-compile):")
        for worker in sorted(per_worker):
            stats = per_worker[worker]
            paid = stats["compiled"]
            amortized = (f"{stats['replays'] / paid:8.1f}" if paid
                         else "      --")
            lines.append(
                f"    {worker:18s} {stats['jobs']:4d} / "
                f"{stats['compiled']:5d} / {stats['installed']:5d} / "
                f"{stats['replays']:7d} / {amortized}"
            )


def _cache_section(data: ReportData, lines: List[str]) -> None:
    tiers = _prefixed(data.counters, "cache.tier_")
    if not tiers:
        return
    lines.append("")
    lines.append("cache tiers:")
    hits = (tiers.get("cache.tier_local_hits", 0)
            + tiers.get("cache.tier_shared_hits", 0))
    lookups = hits + tiers.get("cache.tier_misses", 0)
    for name in sorted(tiers):
        lines.append(f"  {name:38s} {tiers[name]}")
    lines.append(f"  {'hit rate':38s} {_ratio(hits, lookups).strip()}")


def _reliability_section(data: ReportData, lines: List[str]) -> None:
    entries: Dict[str, int] = {}
    retries = sum(int(record.get("retries") or 0) for record in data.jobs)
    if "campaign.retries" in data.counters:
        retries = max(retries, data.counters["campaign.retries"])
    if retries:
        entries["retries"] = retries
    for record in data.campaigns:
        backend = record.get("backend") or {}
        if not isinstance(backend, dict):
            continue
        for name in ("steals", "crashes", "timeouts", "respawns"):
            if backend.get(name):
                entries[name] = entries.get(name, 0) + int(backend[name])
    for name, value in _prefixed(data.counters, "backend.").items():
        tail = name.rsplit(".", 1)[-1]
        if tail in ("steals", "crashes", "timeouts", "respawns") and value:
            entries.setdefault(tail, int(value))
    if not entries:
        return
    lines.append("")
    lines.append("reliability:")
    for name in sorted(entries):
        lines.append(f"  {name:38s} {entries[name]}")


def render(data: ReportData) -> str:
    """The dashboard text for already-loaded telemetry."""
    lines: List[str] = []
    wall = _campaign_section(data, lines)
    if not lines:
        lines.append("campaign: (no campaign-metrics record found)")
    _worker_section(data, lines, wall)
    _memo_section(data, lines)
    _turbo_section(data, lines)
    _cache_section(data, lines)
    _reliability_section(data, lines)
    if not data.jobs and not data.counters and not data.campaigns \
            and not data.lanes:
        lines.append("(no recognised telemetry records in "
                     f"{len(data.files)} file(s))")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    """CLI entry point: ``repro obs report FILE [FILE ...]``."""
    if not argv:
        print("usage: repro obs report FILE.jsonl|FILE.trace.json [...]",
              file=sys.stderr)
        return 2
    try:
        data = load(argv)
    except OSError as exc:
        print(f"cannot read telemetry: {exc}", file=sys.stderr)
        return 2
    print(render(data))
    return 0


__all__ = ["ReportData", "load", "main", "render"]

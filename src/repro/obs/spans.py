"""Span tracer and trace-event sinks (``repro.obs`` layer 2).

One event model — :class:`TraceEvent`, a subset of the Chrome
``trace_event`` format — carries every trace in the system: memo-engine
phase spans, campaign job lifecycles, and per-cycle pipeline traces
(:mod:`repro.uarch.trace` emits into the same sinks). Events live on
one of two clocks:

* ``clock="host"`` — wall microseconds since tracer start (phase
  durations, job wall times);
* ``clock="sim"`` — simulated cycle numbers (pipeline traces, sampled
  counter tracks). Sim-clock events are deterministic.

Sinks are deliberately dumb: :class:`RingBufferSink` keeps the last N
events in memory for live introspection, :class:`JsonlTraceSink`
streams schema-stamped JSON lines, :class:`NullTraceSink` drops
everything. The Chrome exporter (:mod:`repro.obs.chrome`) consumes the
same events.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, TextIO

from repro.obs.schema import TRACE_SCHEMA, stamp

#: Chrome trace_event phase codes this model uses.
PHASES = ("X", "i", "C")  # complete span, instant, counter sample

CLOCK_HOST = "host"
CLOCK_SIM = "sim"


class TraceEvent:
    """One trace event (span, instant, or counter sample).

    ``lane`` labels the worker that produced the event when it arrived
    through the distributed-telemetry merge (:mod:`repro.obs.worker`);
    the Chrome exporter gives each lane its own synthetic process so
    per-worker timelines render side by side. None (the default) means
    the event belongs to the parent process's clock-domain lanes.
    """

    __slots__ = ("name", "ph", "ts", "dur", "cat", "clock", "args",
                 "lane")

    def __init__(self, name: str, ph: str, ts: float, cat: str = "obs",
                 dur: Optional[float] = None, clock: str = CLOCK_HOST,
                 args: Optional[Dict[str, object]] = None,
                 lane: Optional[str] = None):
        self.name = name
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.cat = cat
        self.clock = clock
        self.args = args
        self.lane = lane

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "cat": self.cat,
            "clock": self.clock,
            "name": self.name,
            "ph": self.ph,
            "ts": self.ts,
        }
        if self.dur is not None:
            record["dur"] = self.dur
        if self.lane is not None:
            record["lane"] = self.lane
        if self.args:
            record["args"] = {key: self.args[key]
                              for key in sorted(self.args)}
        return record

    def __repr__(self) -> str:
        return (f"TraceEvent({self.name!r}, ph={self.ph!r}, "
                f"ts={self.ts}, clock={self.clock!r})")


class TraceSink:
    """Protocol: receives :class:`TraceEvent` objects."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class NullTraceSink(TraceSink):
    """Drops every event."""

    def emit(self, event: TraceEvent) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the most recent *capacity* events in memory.

    This is the live-introspection window: ``Observer.snapshot()``
    reads it while a simulation is mid-flight.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.emitted += 1

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)


class JsonlTraceSink(TraceSink):
    """One schema-stamped JSON line per event."""

    def __init__(self, stream: TextIO):
        self.stream = stream

    def emit(self, event: TraceEvent) -> None:
        record = stamp(TRACE_SCHEMA, event.as_dict())
        self.stream.write(json.dumps(record, sort_keys=True,
                                     default=str) + "\n")

    def close(self) -> None:
        self.stream.flush()


class _Span:
    """Context manager emitting one complete ('X') event on exit."""

    __slots__ = ("tracer", "name", "cat", "args", "started")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str,
                 args: Optional[Dict[str, object]]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.started = 0.0

    def __enter__(self) -> None:
        self.started = self.tracer.now_us()
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        ended = self.tracer.now_us()
        self.tracer.emit(TraceEvent(
            self.name, "X", self.started, cat=self.cat,
            dur=ended - self.started, clock=CLOCK_HOST, args=self.args,
        ))
        return False


class SpanTracer:
    """Fans events out to sinks; owns the host-clock origin.

    Host timestamps are microseconds relative to tracer construction,
    so traces from one run line up on one timeline. The host clock is
    observability-only and never reaches simulation state (the
    ``obs/`` lint family enforces this at the call sites).
    """

    def __init__(self, *sinks: TraceSink):
        self.sinks: List[TraceSink] = list(sinks)
        self._origin = time.perf_counter()  # repro-lint: disable=det/time-dependent

    def now_us(self) -> float:
        """Microseconds since tracer start (host clock)."""
        return (time.perf_counter() - self._origin) * 1e6  # repro-lint: disable=det/time-dependent

    def add_sink(self, sink: TraceSink) -> None:
        self.sinks.append(sink)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def span(self, name: str, cat: str = "obs",
             args: Optional[Dict[str, object]] = None) -> _Span:
        """Time a ``with`` block as one complete span event."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "obs",
                ts: Optional[float] = None, clock: str = CLOCK_HOST,
                args: Optional[Dict[str, object]] = None) -> None:
        """Emit a point-in-time event (defaults to the host clock)."""
        if ts is None:
            ts = self.now_us()
        self.emit(TraceEvent(name, "i", ts, cat=cat, clock=clock,
                             args=args))

    def counter_sample(self, name: str, ts: float,
                       values: Dict[str, object],
                       cat: str = "obs",
                       clock: str = CLOCK_SIM) -> None:
        """Emit a counter-track sample (defaults to the sim clock)."""
        self.emit(TraceEvent(name, "C", ts, cat=cat, clock=clock,
                             args=values))

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def events_as_dicts(events: Iterable[TraceEvent]) -> List[Dict[str, object]]:
    """Render events for JSON embedding (stable key order)."""
    return [event.as_dict() for event in events]

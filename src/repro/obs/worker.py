"""Distributed telemetry — collect in workers, ship, merge in parent.

Since the backends PR, parallel campaigns run their simulations in
places the parent's :class:`~repro.obs.core.Observer` cannot reach: a
forked child, a spawn-isolated interpreter, a sibling thread. This
module closes that gap with a collect → ship → merge pipeline:

* **collect** — the backend hands the worker a :class:`TelemetrySpec`
  (a frozen, picklable recipe mirroring the parent observer's
  configuration); the worker builds a :class:`WorkerCollector`, a
  local observer whose registry and bounded ring buffer absorb the
  simulation's deep telemetry at full fidelity, locally.
* **ship** — when the attempt finishes, the collector renders one
  compact, schema-stamped blob
  (``repro.obs/worker-telemetry/v1``: registry snapshot + ring events
  + drop count) that rides back on the *existing* result channel —
  the fork result pipe, the stdio protocol envelope, the queue
  in-process handoff — as :attr:`JobResult.telemetry`. No second
  socket, no shared files.
* **merge** — the engine strips the blob off the result (it must
  never reach canonical output) and, after the run, calls
  :func:`merge_telemetry`: blobs are ordered by
  ``(job_key, attempt, worker)`` so the merged registry and trace are
  deterministic regardless of completion order. Counters sum
  globally; gauges and sampled series are namespaced per job
  (``name@job_key``) because overwriting one worker's last value with
  another's would be meaningless; histograms merge bucket-wise; every
  shipped trace event re-emits through the parent tracer carrying the
  worker's ``lane`` label, which the Chrome exporter renders as a
  distinct pid-3+ process per worker.

Zero-overhead-when-off is preserved end to end: a disabled parent
observer produces ``TelemetrySpec.from_observer(...) is None``, the
backends ship nothing, workers test one ``is None``, and the result
envelope carries no blob — asserted by the obs-on/off byte-identity
matrix in ``tests/obs/test_byte_identity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.obs.core import DEFAULT_SAMPLE_EVERY, Observer
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import WORKER_TELEMETRY_SCHEMA, stamp
from repro.obs.spans import TraceEvent, events_as_dicts

#: Default cap on ring-buffered events shipped per attempt. Smaller
#: than the parent's 4096 ring: every event shipped is pickled across
#: the result channel, and the span/sample density that matters for a
#: lane view fits comfortably.
DEFAULT_RING_CAPACITY = 2048


@dataclass(frozen=True)
class TelemetrySpec:
    """Picklable recipe for a worker-side collector.

    Crosses the placement boundary exactly like
    :class:`~repro.campaign.cachedir.StoreSpec`: the parent ships the
    *description*, the worker builds the live object. ``None`` (the
    spec's absence) is the disabled path — one ``is None`` test per
    attempt, nothing shipped.
    """

    sample_every: int = DEFAULT_SAMPLE_EVERY
    ring_capacity: int = DEFAULT_RING_CAPACITY

    @classmethod
    def from_observer(cls, obs) -> Optional["TelemetrySpec"]:
        """The spec matching a parent observer — None when disabled."""
        if obs is None or not getattr(obs, "enabled", False):
            return None
        return cls(sample_every=getattr(obs, "sample_every",
                                        DEFAULT_SAMPLE_EVERY))

    def collector(self, worker: object) -> "WorkerCollector":
        """Build the live worker-side collector labelled *worker*."""
        return WorkerCollector(self, worker)


class WorkerCollector:
    """A worker-local observer plus the blob renderer.

    ``collector.observer`` is a full :class:`~repro.obs.core.Observer`
    — the simulation is instrumented against the same hook surface it
    would see on the serial path, so worker telemetry has the same
    fidelity (memo spans, sampled series, cache counters), just
    collected locally and shipped at the end.
    """

    def __init__(self, spec: TelemetrySpec, worker: object):
        self.worker = str(worker)
        self.observer = Observer(sample_every=spec.sample_every,
                                 ring_capacity=spec.ring_capacity)

    def blob(self, job_key: str, attempt: int) -> Dict[str, object]:
        """Render the shipped ``repro.obs/worker-telemetry/v1`` blob."""
        ring = self.observer.ring
        return stamp(WORKER_TELEMETRY_SCHEMA, {
            "job_key": str(job_key),
            "attempt": int(attempt),
            "worker": self.worker,
            "metrics": self.observer.registry.as_dict(),
            "events": events_as_dicts(ring.events),
            "spans_dropped": ring.dropped,
        })


# -- deterministic merge --------------------------------------------------


def _order_key(blob: Dict[str, object]):
    return (str(blob.get("job_key", "")), int(blob.get("attempt", 0)),
            str(blob.get("worker", "")))


def _bucket_edge(key: str):
    """Histogram bucket keys are ``str(edge)``; recover the number
    with its original type so re-rendered keys stay byte-stable."""
    try:
        return int(key)
    except ValueError:
        return float(key)


def _merge_histogram(registry: MetricsRegistry, name: str,
                     payload: Dict[str, object]) -> bool:
    """Fold one shipped histogram snapshot into the registry.

    Returns False on a bucket-bound mismatch (different code versions
    on the two sides) — the caller counts those rather than guessing a
    rebinning.
    """
    buckets = sorted(
        ((_bucket_edge(key), int(count))
         for key, count in dict(payload.get("buckets") or {}).items()),
        key=lambda pair: pair[0],
    )
    edges = tuple(edge for edge, _ in buckets)
    target = registry.histogram(name, bounds=edges or None)
    if target.bounds != edges:
        return False
    for index, (_, count) in enumerate(buckets):
        target.counts[index] += count
    target.counts[-1] += int(payload.get("overflow", 0))
    target.count += int(payload.get("count", 0))
    target.total += payload.get("total", 0)
    for extreme in ("min", "max"):
        value = payload.get(extreme)
        if value is None:
            continue
        if extreme == "min" and (target.minimum is None
                                 or value < target.minimum):
            target.minimum = value
        if extreme == "max" and (target.maximum is None
                                 or value > target.maximum):
            target.maximum = value
    return True


def _merge_metrics(registry: MetricsRegistry,
                   blob: Dict[str, object]) -> None:
    job_key = str(blob.get("job_key", ""))
    metrics = blob.get("metrics") or {}

    counters = metrics.get("counters") or {}
    for name in sorted(counters):
        registry.counter(name).inc(int(counters[name]))
    dropped = int(blob.get("spans_dropped", 0))
    if dropped:
        registry.counter("obs.worker_spans_dropped").inc(dropped)

    gauges = metrics.get("gauges") or {}
    for name in sorted(gauges):
        registry.gauge(f"{name}@{job_key}").set(gauges[name])

    histograms = metrics.get("histograms") or {}
    for name in sorted(histograms):
        if not _merge_histogram(registry, name, histograms[name]):
            registry.counter("obs.merge_histogram_mismatch").inc()

    series = metrics.get("series") or {}
    for name in sorted(series):
        payload = series[name]
        target = registry.sampled(f"{name}@{job_key}")
        for timestamp, value in payload.get("samples") or ():
            target.append(timestamp, value)
        target.dropped += int(payload.get("dropped", 0))


def _merge_events(tracer, blob: Dict[str, object]) -> None:
    lane = str(blob.get("worker") or "worker")
    for record in blob.get("events") or ():
        tracer.emit(TraceEvent(
            str(record.get("name", "?")),
            str(record.get("ph", "i")),
            record.get("ts", 0),
            cat=str(record.get("cat", "obs")),
            dur=record.get("dur"),
            clock=str(record.get("clock", "host")),
            args=record.get("args"),
            lane=lane,
        ))


def merge_telemetry(obs, blobs: Iterable[Dict[str, object]]) -> int:
    """Merge shipped worker blobs into the parent observer.

    Blobs are processed in ``(job_key, attempt, worker)`` order, so the
    merged registry — and therefore the campaign metrics JSON-lines
    stream — is deterministic no matter which worker finished first.
    Shipped trace events re-emit through the parent tracer with their
    worker's lane label (flowing to the ring buffer, any JSON-lines
    trace sink, and ultimately the multi-lane Chrome export). Returns
    the number of blobs merged.
    """
    ordered: List[Dict[str, object]] = sorted(
        (blob for blob in blobs if isinstance(blob, dict)),
        key=_order_key,
    )
    registry = obs.registry
    tracer = obs.tracer
    for blob in ordered:
        _merge_metrics(registry, blob)
        _merge_events(tracer, blob)
    if ordered:
        registry.counter("obs.worker_blobs_merged").inc(len(ordered))
    return len(ordered)


__all__ = [
    "DEFAULT_RING_CAPACITY",
    "TelemetrySpec",
    "WorkerCollector",
    "merge_telemetry",
]

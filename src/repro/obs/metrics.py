"""Metric instruments and the registry (``repro.obs`` layer 1).

Three metric classes, following the sampled / event / aggregated
taxonomy (docs/observability.md):

* **sampled** — :class:`SampledSeries`: periodic snapshots of a live
  value (iQ occupancy every N cycles, p-action cache bytes). Sample
  timestamps are *simulated* cycles, so series are deterministic.
* **event-based** — :class:`Counter` increments and
  :class:`Histogram` observations driven by simulation events (replay
  chain ends, cache-store hits, job completions).
* **aggregated** — end-of-run summaries: :class:`Gauge` finals and
  the percentile view every :class:`Histogram` computes from its
  fixed buckets.

All instruments are plain accumulators: they never call back into the
simulation, never read host state, and render with explicitly sorted
keys so exported metric documents are stable for ``cmp``-based checks.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

#: Default histogram bucket upper bounds (generic magnitude ladder).
DEFAULT_BUCKETS = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
    100_000, 1_000_000,
)

#: Default cap on retained samples per series.
DEFAULT_MAX_SAMPLES = 4096


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: object = 0

    def set(self, value: object) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "value": self.value}


class Histogram:
    """Fixed-bucket distribution with derived percentiles.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last edge. Percentiles are reported as the
    upper edge of the bucket containing the requested rank — coarse,
    but deterministic and constant-memory.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str,
                 bounds: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.bounds = tuple(sorted(bounds if bounds is not None
                                   else DEFAULT_BUCKETS))
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def percentile(self, q: float) -> Optional[float]:
        """Upper bucket edge covering the *q*-quantile (0 < q <= 1)."""
        if not self.count:
            return None
        rank = q * self.count
        running = 0
        for index, bucket_count in enumerate(self.counts):
            running += bucket_count
            if running >= rank:
                if index < len(self.bounds):
                    return float(self.bounds[index])
                return float(self.maximum)
        return float(self.maximum)  # pragma: no cover - q > 1 guard

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "buckets": {str(edge): count for edge, count
                        in zip(self.bounds, self.counts)},
            "count": self.count,
            "max": self.maximum,
            "mean": self.mean,
            "min": self.minimum,
            "name": self.name,
            "overflow": self.counts[-1],
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "total": self.total,
        }


class SampledSeries:
    """Bounded (timestamp, value) series sampled on a simulated clock.

    The cap keeps long campaigns from accumulating unbounded sample
    memory; drops are counted, never silent (docs/observability.md).
    """

    __slots__ = ("name", "max_samples", "samples", "dropped")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES):
        self.name = name
        self.max_samples = max_samples
        self.samples: List[Tuple[int, object]] = []
        self.dropped = 0

    def append(self, timestamp: int, value: object) -> None:
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        self.samples.append((timestamp, value))

    def last(self) -> Optional[Tuple[int, object]]:
        return self.samples[-1] if self.samples else None

    def as_dict(self) -> Dict[str, object]:
        return {
            "dropped": self.dropped,
            "name": self.name,
            "samples": [[timestamp, value]
                        for timestamp, value in self.samples],
        }


class MetricsRegistry:
    """Namespace of instruments, created on first use.

    ``registry.counter("memo.resyncs").inc()`` — instruments are
    keyed by name, and every rendering walks names in sorted order so
    two runs that recorded the same values produce byte-identical
    documents regardless of creation order.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, SampledSeries] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  bounds: Optional[Tuple[float, ...]] = None) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, bounds)
        return instrument

    def sampled(self, name: str,
                max_samples: int = DEFAULT_MAX_SAMPLES) -> SampledSeries:
        instrument = self.series.get(name)
        if instrument is None:
            instrument = self.series[name] = SampledSeries(name, max_samples)
        return instrument

    def as_dict(self) -> Dict[str, object]:
        """Full registry contents, every level explicitly sorted."""
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].value
                       for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].as_dict()
                           for name in sorted(self.histograms)},
            "series": {name: self.series[name].as_dict()
                       for name in sorted(self.series)},
        }

    def records(self) -> List[Dict[str, object]]:
        """One flat record per instrument, sorted by (kind, name).

        These are the payloads the JSON-lines metrics stream carries
        (schema ``repro.obs/metric/v1`` — see :mod:`repro.obs.schema`).
        """
        out: List[Dict[str, object]] = []
        for name in sorted(self.counters):
            out.append({"kind": "counter", "name": name,
                        "value": self.counters[name].value})
        for name in sorted(self.gauges):
            out.append({"kind": "gauge", "name": name,
                        "value": self.gauges[name].value})
        for name in sorted(self.histograms):
            record = self.histograms[name].as_dict()
            record["kind"] = "histogram"
            out.append(record)
        for name in sorted(self.series):
            record = self.series[name].as_dict()
            record["kind"] = "series"
            out.append(record)
        return out

"""``repro.obs`` — zero-overhead-when-off telemetry.

The observability layer the evaluation tables only hint at: counters,
gauges, fixed-bucket histograms, and sampled per-cycle series
(:mod:`repro.obs.metrics`); span-based tracing of memo-engine phases,
campaign job lifecycles, and pipeline cycles with ring-buffer /
JSON-lines sinks (:mod:`repro.obs.spans`); Chrome ``trace_event``
export viewable in Perfetto (:mod:`repro.obs.chrome`); and
schema-versioned JSON-lines records with a validator
(:mod:`repro.obs.schema`).

The contract, enforced by test and by the ``obs/`` lint family: with
observability **disabled** (the default — every hook resolves to
:data:`NULL_OBS`), all simulated statistics and canonical outputs are
byte-identical to an enabled run. Observers read simulation state,
never write it.

Quick start::

    from repro.api import simulate
    from repro.obs import make_observer

    obs = make_observer(sample_every=100)
    result = simulate("compress", engine="fast", scale="tiny", obs=obs)
    obs.write_trace("compress.trace.json")   # chrome://tracing
    print(obs.summary())

See docs/observability.md for the metric taxonomy and span naming
convention.
"""

from repro.obs.core import (
    NULL_OBS,
    NullObserver,
    Observer,
    ensure_observer,
    make_observer,
)
from repro.obs.chrome import (
    chrome_trace,
    render_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SampledSeries,
)
from repro.obs.schema import (
    CAMPAIGN_METRICS_SCHEMA,
    EVENT_SCHEMA,
    JOB_METRICS_SCHEMA,
    JOB_METRICS_SCHEMA_V2,
    METRIC_SCHEMA,
    TRACE_SCHEMA,
    WORKER_TELEMETRY_SCHEMA,
    stamp,
    validate_chrome_trace,
    validate_file,
    validate_lines,
    validate_record,
)
from repro.obs.spans import (
    JsonlTraceSink,
    NullTraceSink,
    RingBufferSink,
    SpanTracer,
    TraceEvent,
    TraceSink,
)
from repro.obs.worker import (
    TelemetrySpec,
    WorkerCollector,
    merge_telemetry,
)

__all__ = [
    "CAMPAIGN_METRICS_SCHEMA",
    "Counter",
    "EVENT_SCHEMA",
    "Gauge",
    "Histogram",
    "JOB_METRICS_SCHEMA",
    "JOB_METRICS_SCHEMA_V2",
    "JsonlTraceSink",
    "METRIC_SCHEMA",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObserver",
    "NullTraceSink",
    "Observer",
    "RingBufferSink",
    "SampledSeries",
    "SpanTracer",
    "TRACE_SCHEMA",
    "TelemetrySpec",
    "TraceEvent",
    "TraceSink",
    "WORKER_TELEMETRY_SCHEMA",
    "WorkerCollector",
    "chrome_trace",
    "ensure_observer",
    "make_observer",
    "merge_telemetry",
    "render_chrome_trace",
    "stamp",
    "validate_chrome_trace",
    "validate_file",
    "validate_lines",
    "validate_record",
    "write_chrome_trace",
]

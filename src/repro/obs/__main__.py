"""``python -m repro.obs`` — validate JSON-lines metric/trace files.

Exit codes follow the lint convention: 0 = every line valid, 1 = at
least one invalid line, 2 = usage/I-O error. CI runs this over the
streams a campaign emitted with ``--obs`` / ``--metrics``.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.obs.schema import validate_file


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or any(arg in ("-h", "--help") for arg in argv):
        print("usage: python -m repro.obs FILE.jsonl [FILE.jsonl ...]",
              file=sys.stderr)
        return 2 if not argv else 0
    problems = []
    for path in argv:
        try:
            problems.extend(validate_file(path))
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 2
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} invalid line(s)", file=sys.stderr)
        return 1
    print(f"{len(argv)} file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The observer — every instrumentation hook in one object.

Instrumented code (memo engine, simulators, campaign runner, pipeline
tracer) never talks to registries or sinks directly; it calls hooks on
an observer it was handed::

    with self.obs.span("memo.record", cat="memo"):
        ...
    self.obs.counter("memo.resyncs")
    self.obs.sample_cycle(world.cycle, self, iq_len=len(iq.entries))

Two implementations share that surface:

* :class:`Observer` — the live one: a
  :class:`~repro.obs.metrics.MetricsRegistry`, a
  :class:`~repro.obs.spans.SpanTracer` with a ring-buffer sink (live
  introspection) and optional JSON-lines sink, and the per-N-cycle
  sampler behind the sampled metric class.
* :class:`NullObserver` — the **default**: every hook is a no-op and
  ``span`` returns one shared do-nothing context manager, so code
  instrumented against the module-level :data:`NULL_OBS` pays one
  attribute test (``self._obs_on``) or one trivial call. With obs off,
  tier-1 timing and all canonical outputs are byte-identical to an
  obs-on run — asserted by ``tests/obs/test_byte_identity.py``.

Observers only ever *read* simulation state. The ``obs/`` lint family
(:mod:`repro.lint.obschecks`) statically forbids hook results from
flowing back into the simulation.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import METRIC_SCHEMA, stamp
from repro.obs.spans import (
    JsonlTraceSink,
    RingBufferSink,
    SpanTracer,
    TraceEvent,
    TraceSink,
)

__all__ = ["Observer", "NullObserver", "NULL_OBS", "make_observer",
           "ensure_observer"]

#: Default sampling period for per-cycle series, in simulated cycles.
DEFAULT_SAMPLE_EVERY = 256

#: Hook names shared by Observer and NullObserver (API-parity test).
HOOK_NAMES = (
    "span", "event", "counter", "gauge", "observe",
    "sample_cycle", "sample_pipeline",
)


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullObserver:
    """The disabled observer: every hook compiles down to a no-op."""

    enabled = False

    def span(self, name: str, /, cat: str = "obs",
             **args: object) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, /, cat: str = "obs",
              **args: object) -> None:
        pass

    def counter(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: object) -> None:
        pass

    def observe(self, name: str, value: float,
                bounds: Optional[Tuple[float, ...]] = None) -> None:
        pass

    def sample_cycle(self, cycle: int, engine: object,
                     iq_len: Optional[int] = None) -> None:
        pass

    def sample_pipeline(self, cycle: int, iq_len: int) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"enabled": False}

    def trace_events(self) -> List[TraceEvent]:
        return []


#: The module-level null object instrumented code defaults to.
NULL_OBS = NullObserver()


class Observer:
    """Live observer: registry + tracer + sampler + introspection."""

    enabled = True

    def __init__(
        self,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        ring_capacity: int = 4096,
        trace_stream: Optional[TextIO] = None,
        extra_sinks: Optional[List[TraceSink]] = None,
    ):
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.registry = MetricsRegistry()
        self.ring = RingBufferSink(ring_capacity)
        sinks: List[TraceSink] = [self.ring]
        if trace_stream is not None:
            sinks.append(JsonlTraceSink(trace_stream))
        if extra_sinks:
            sinks.extend(extra_sinks)
        self.tracer = SpanTracer(*sinks)
        self.sample_every = sample_every
        self._last_stripe: Optional[int] = None

    # -- generic hooks ---------------------------------------------------

    def span(self, name: str, /, cat: str = "obs", **args: object):
        """Time a ``with`` block as one span event."""
        return self.tracer.span(name, cat=cat, args=args or None)

    def event(self, name: str, /, cat: str = "obs",
              **args: object) -> None:
        """Record an instant event on the host timeline."""
        self.tracer.instant(name, cat=cat, args=args or None)

    def counter(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: object) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float,
                bounds: Optional[Tuple[float, ...]] = None) -> None:
        """Feed one observation into a fixed-bucket histogram."""
        self.registry.histogram(name, bounds).observe(value)

    # -- sampled hooks ---------------------------------------------------

    def _due(self, cycle: int) -> bool:
        stripe = cycle // self.sample_every
        if stripe == self._last_stripe:
            return False
        self._last_stripe = stripe
        return True

    def sample_cycle(self, cycle: int, engine: object,
                     iq_len: Optional[int] = None) -> None:
        """Per-N-cycle snapshot of the memo engine (sampled metrics).

        Called from both record mode (with the live iQ occupancy) and
        replay fast-forwarding (no iQ exists — ``iq_len`` is None).
        Reads engine state, never writes it.
        """
        if not self._due(cycle):
            return
        cache = engine.cache
        memo = engine.memo
        registry = self.registry
        registry.sampled("memo.pcache_bytes").append(cycle, cache.bytes_used)
        registry.sampled("memo.pcache_configs").append(cycle, len(cache))
        total = memo.replayed_cycles + memo.detailed_cycles
        hit_ratio = memo.replayed_cycles / total if total else 0.0
        registry.sampled("memo.hit_ratio").append(cycle, round(hit_ratio, 6))
        values: Dict[str, object] = {
            "pcache_bytes": cache.bytes_used,
            "hit_pct": round(100.0 * hit_ratio, 2),
        }
        if iq_len is not None:
            registry.sampled("pipeline.iq_occupancy").append(cycle, iq_len)
            values["iq_occupancy"] = iq_len
        self.tracer.counter_sample("memo.sampled", cycle, values,
                                   cat="sample")

    def sample_pipeline(self, cycle: int, iq_len: int) -> None:
        """Per-N-cycle iQ occupancy for non-memoized simulators."""
        if not self._due(cycle):
            return
        self.registry.sampled("pipeline.iq_occupancy").append(cycle, iq_len)
        self.tracer.counter_sample("pipeline.sampled", cycle,
                                   {"iq_occupancy": iq_len}, cat="sample")

    # -- introspection and export ---------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Live view: full registry + the recent span window.

        Safe to call mid-simulation (e.g. from a progress sink or a
        debugger) — it only reads.
        """
        recent = [event.as_dict() for event in self.ring.events[-32:]]
        return {
            "enabled": True,
            "metrics": self.registry.as_dict(),
            "recent_events": recent,
            "spans_dropped": self.ring.dropped,
            "spans_emitted": self.ring.emitted,
        }

    def trace_events(self) -> List[TraceEvent]:
        """Events currently held by the ring buffer."""
        return self.ring.events

    def write_trace(self, path: str) -> None:
        """Export the ring buffer as a Chrome/Perfetto trace JSON."""
        from repro.obs.chrome import write_chrome_trace

        write_chrome_trace(path, self.ring.events)

    def metrics_records(self) -> List[Dict[str, object]]:
        """Schema-stamped metric records (one per instrument)."""
        return [stamp(METRIC_SCHEMA, record)
                for record in self.registry.records()]

    def metrics_jsonl(self) -> str:
        """The metrics stream as JSON lines (sorted keys)."""
        lines = [json.dumps(record, sort_keys=True, default=str)
                 for record in self.metrics_records()]
        return "\n".join(lines) + ("\n" if lines else "")

    def summary(self) -> str:
        """Human-readable digest for the ``obs`` CLI command."""
        registry = self.registry
        lines = ["observability summary"]
        if registry.counters:
            lines.append("  counters:")
            for name in sorted(registry.counters):
                lines.append(f"    {name:32s} "
                             f"{registry.counters[name].value}")
        if registry.gauges:
            lines.append("  gauges:")
            for name in sorted(registry.gauges):
                lines.append(f"    {name:32s} "
                             f"{registry.gauges[name].value}")
        if registry.histograms:
            lines.append("  histograms (count / mean / p50 / p99):")
            for name in sorted(registry.histograms):
                histogram = registry.histograms[name]
                lines.append(
                    f"    {name:32s} {histogram.count} / "
                    f"{histogram.mean:.1f} / {histogram.percentile(0.5)} "
                    f"/ {histogram.percentile(0.99)}"
                )
        if registry.series:
            lines.append("  sampled series (samples / last):")
            for name in sorted(registry.series):
                series = registry.series[name]
                lines.append(f"    {name:32s} {len(series.samples)} / "
                             f"{series.last()}")
        lines.append(f"  trace events: {self.ring.emitted} emitted, "
                     f"{self.ring.dropped} beyond ring capacity")
        return "\n".join(lines)


def make_observer(sample_every: int = DEFAULT_SAMPLE_EVERY,
                  ring_capacity: int = 4096,
                  trace_stream: Optional[TextIO] = None) -> Observer:
    """Build a live observer (the supported construction path)."""
    return Observer(sample_every=sample_every,
                    ring_capacity=ring_capacity,
                    trace_stream=trace_stream)


def ensure_observer(obs: Optional[object]):
    """Normalise an optional observer argument to a usable instance."""
    return obs if obs is not None else NULL_OBS

"""P-action cache inspection — render the graph the paper draws.

The paper's Figures 5 and 6 depict configurations linked to action
chains with outcome-keyed branches. :func:`dump_chain` renders one
configuration's chain in that style; :func:`cache_summary` gives the
whole-cache statistics view. Useful when debugging memoization issues
("why did fast-forwarding stop here?") and in teaching contexts.

Example output::

    Config 38B (11 instructions, start 0x10074)
      +6 cycles
      Retire 4 (1 loads)
      IssueLoad #0
        = 1  -> ...
        = 6  -> Config 40B ...
        = 18 -> <not yet computed>
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.program import Executable
from repro.memo.actions import (
    AdvanceNode,
    ConfigNode,
    ControlNode,
    EndNode,
    LoadIssueNode,
    LoadPollNode,
    Node,
    RetireNode,
    RollbackNode,
    StoreIssueNode,
)
from repro.memo.pcache import PActionCache
from repro.uarch.config_codec import decode_config


def describe_node(node: Node) -> str:
    """One-line description of an action node."""
    kind = type(node)
    if kind is ConfigNode:
        return f"Config {len(node.blob)}B"
    if kind is AdvanceNode:
        return f"+{node.delta} cycles"
    if kind is RetireNode:
        parts = [f"Retire {node.count}"]
        if node.loads:
            parts.append(f"{node.loads} loads")
        if node.stores:
            parts.append(f"{node.stores} stores")
        if node.branches:
            parts.append(f"{node.branches} branches")
        return parts[0] + (
            f" ({', '.join(parts[1:])})" if len(parts) > 1 else ""
        )
    if kind is RollbackNode:
        return f"Rollback branch#{node.control_ordinal}"
    if kind is ControlNode:
        return "ReturnToDirectExec"
    if kind is LoadIssueNode:
        return f"IssueLoad #{node.ordinal}"
    if kind is LoadPollNode:
        return f"PollLoad #{node.ordinal}"
    if kind is StoreIssueNode:
        return f"IssueStore #{node.ordinal}"
    if kind is EndNode:
        return f"End (+{node.delta} cycles)"
    return repr(node)  # pragma: no cover


def describe_config(node: ConfigNode,
                    executable: Optional[Executable] = None) -> str:
    """Describe a configuration, decoding it when possible."""
    base = describe_node(node)
    if executable is None:
        return base
    entries, fetch_pc, stalled, halted = decode_config(node.blob, executable)
    detail = f"{len(entries)} instructions"
    if entries:
        detail += f", start 0x{entries[0].instr.address:x}"
    if stalled:
        detail += ", fetch stalled"
    if halted:
        detail += ", fetch halted"
    elif fetch_pc is not None:
        detail += f", fetch 0x{fetch_pc:x}"
    return f"{base} ({detail})"


def dump_chain(
    start: ConfigNode,
    executable: Optional[Executable] = None,
    max_nodes: int = 40,
) -> str:
    """Render the action chain from *start*, Figure-5 style.

    Follows single successors inline; at outcome nodes, lists every
    recorded edge (descending one level) and marks missing outcomes as
    "<not yet computed>" — the question marks of Figure 6.
    """
    lines: List[str] = []

    def walk(node: Optional[Node], depth: int, budget: int) -> int:
        indent = "  " * depth
        while node is not None and budget > 0:
            budget -= 1
            if type(node) is ConfigNode:
                lines.append(indent + describe_config(node, executable))
                if depth > 0:
                    return budget  # stop at the next configuration
                node = node.next
                continue
            if node.is_outcome:
                lines.append(indent + describe_node(node))
                if not node.edges:
                    lines.append(indent + "  = <not yet computed>")
                for key, successor in node.edges.items():
                    lines.append(indent + f"  = {key!r} ->")
                    budget = walk(successor, depth + 2, budget)
                return budget
            lines.append(indent + describe_node(node))
            if type(node) is EndNode:
                return budget
            node = node.next
        if node is not None and budget <= 0:
            lines.append(indent + "...")
        elif node is None:
            lines.append(indent + "<chain truncated>")
        return budget

    walk(start, 0, max_nodes)
    return "\n".join(lines)


def cache_summary(cache: PActionCache) -> str:
    """Whole-cache statistics (the aggregate view of Table 5)."""
    node_counts = {}
    edge_total = 0
    for node in cache.reachable_nodes():
        name = type(node).__name__
        node_counts[name] = node_counts.get(name, 0) + 1
        if node.is_outcome:
            edge_total += len(node.edges)
    lines = [
        "P-action cache summary",
        f"  configurations indexed : {len(cache)}",
        f"  configs allocated      : {cache.configs_allocated}",
        f"  actions allocated      : {cache.actions_allocated}",
        f"  outcome edges          : {edge_total}",
        f"  modelled bytes         : {cache.bytes_used}"
        f" (peak {cache.peak_bytes})",
        f"  collections/flushes    : {cache.collections}",
        "  node mix:",
    ]
    for name in sorted(node_counts):
        lines.append(f"    {name:16s} {node_counts[name]}")
    return "\n".join(lines)

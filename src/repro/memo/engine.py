"""The fast-forwarding engine — memoized μ-architecture simulation.

This is the reproduction of the paper's §4.2 machinery. The engine runs
in two alternating modes:

**Record (detailed) mode** pumps the :class:`DetailedSimulator`
generator exactly like SlowSim, but additionally writes every
interaction into the p-action cache: an :class:`AdvanceNode` whenever
the acting cycle moved, then the interaction's node, with outcome-bearing
interactions growing an edge per distinct result. At the end of any
cycle that produced actions it snapshots the iQ into a configuration;
if that configuration is already in the cache the chain is linked into
the existing graph and the engine switches to —

**Replay (fast-forward) mode**, which walks the recorded graph and
executes the actions directly against the world — no iQ, no pipeline
scan, no per-cycle work for quiet cycles. Outcome-bearing actions call
the world and follow the edge matching the actual result; a result with
no edge (or a chain pruned by a replacement policy) terminates
fast-forwarding.

**Fall-back/resync**: on termination the engine decodes the owning
configuration back into a pipeline state, restarts a fresh detailed
simulator from it, and silently re-feeds the outcomes logged since that
configuration (no world side effects are repeated — the replayer
already performed them). The simulator is deterministic given
(configuration, outcome sequence), so after the last logged outcome it
stands exactly at the divergence point, and recording continues along a
new branch of the action chain — Figure 6's picture.

Because record and replay drive the same world methods in the same
order at the same cycle numbers, all simulated statistics are
bit-identical with and without memoization; the test suite asserts this
for every workload.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Optional, Tuple

from repro.errors import MemoizationError, SimulationError
from repro.isa.program import Executable
from repro.memo.actions import (
    AdvanceNode,
    ConfigNode,
    ControlNode,
    EndNode,
    LoadIssueNode,
    LoadPollNode,
    Node,
    RetireNode,
    RollbackNode,
    StoreIssueNode,
)
from repro.memo.compile import (
    SegmentTable,
    TurboConfig,
    compile_segment,
    patch_log,
    revalidate,
)
from repro.memo.pcache import AttachPoint, PActionCache
from repro.memo.policies import ReplacementPolicy, UnboundedPolicy
from repro.obs.core import ensure_observer
from repro.sim.results import MemoStats
from repro.sim.world import World
from repro.uarch.config_codec import decode_config, encode_config
from repro.uarch.detailed import DetailedSimulator
from repro.uarch.interactions import (
    CycleBoundary,
    Finished,
    GetControl,
    IssueLoad,
    IssueStore,
    PollLoad,
    Retire,
    Rollback,
)


def run_signature(executable: Executable, params) -> bytes:
    """Identity used to prevent unsound p-action cache reuse.

    Recorded actions encode the *timing* of one pipeline on one binary:
    replaying them for a different text image or different processor
    parameters would be silently wrong, so the cache is bound to both.
    (Predictor and cache-simulator state need no binding — their
    influence flows through outcome edges, which replay checks.)

    This is also the key under which campaign cache directories store
    persisted p-action caches (see :mod:`repro.campaign.cachedir`).
    """
    digest = hashlib.sha256()
    digest.update(executable.text)
    digest.update(executable.text_base.to_bytes(4, "big"))
    digest.update(repr(params).encode())
    return digest.digest()


#: Backwards-compatible private alias (pre-campaign name).
_run_signature = run_signature


#: Matching (request type, node type) pairs for resync verification.
_REQUEST_FOR_NODE = {
    ControlNode: GetControl,
    LoadIssueNode: IssueLoad,
    LoadPollNode: PollLoad,
    StoreIssueNode: IssueStore,
    RetireNode: Retire,
    RollbackNode: Rollback,
}


class FastForwardEngine:
    """Memoized simulation: detailed recording + fast-forward replay."""

    def __init__(
        self,
        executable: Executable,
        world: World,
        pcache: Optional[PActionCache] = None,
        policy: Optional[ReplacementPolicy] = None,
        obs=None,
        turbo=None,
    ):
        self.executable = executable
        self.world = world
        self.params = world.params
        self.cache = pcache if pcache is not None else PActionCache()
        self.policy = policy if policy is not None else UnboundedPolicy()
        # Chain compilation (repro.turbo): accepts None (defaults),
        # a bool, or a TurboConfig. The segment table lives on the
        # cache so compiled segments stay warm across engines sharing
        # a pcache, and so replacement policies can flush deferred
        # touches before collecting (docs/performance.md).
        self.turbo = TurboConfig.resolve(turbo)
        if self.turbo.enabled and self.cache.turbo is None:
            self.cache.turbo = SegmentTable(self.turbo.threshold)
        #: Reusable buffer for control records captured by compiled
        #: segment replays (patched into chain-log templates).
        self._ctl_records: List = []
        self.memo = MemoStats()
        self.max_cycles = 0
        # Observability hooks. ``obs`` resolves to the module-level
        # null object when disabled; ``_obs_on`` guards per-cycle
        # sampling so the off path costs one attribute test. Observers
        # only read engine state (enforced by the obs/ lint family), so
        # simulated results are identical with obs on or off.
        self.obs = ensure_observer(obs)
        self._obs_on = self.obs.enabled

    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 50_000_000) -> MemoStats:
        """Simulate the program to completion."""
        self.max_cycles = max_cycles
        self.cache.bind_program(run_signature(self.executable, self.params))
        simulator = DetailedSimulator(self.executable, self.params)
        blob = self._encode(simulator)
        node = self.cache.lookup(blob)
        if node is not None:
            mode = ("replay", node)
        else:
            root = self.cache.alloc_config(blob)
            mode = ("record", simulator, simulator.run(), (root, None),
                    self.world.cycle, None, 0, False)

        while True:
            if mode[0] == "record":
                _, sim, generator, attach, anchor, send, debt, since = mode
                with self.obs.span("memo.record", cat="memo"):
                    mode = self._record(sim, generator, attach, anchor,
                                        send, debt, since)
            elif mode[0] == "replay":
                with self.obs.span("memo.replay", cat="memo"):
                    mode = self._replay(mode[1])
            else:  # finished
                self.memo.configs_allocated = self.cache.configs_allocated
                self.memo.actions_allocated = self.cache.actions_allocated
                self.memo.cache_bytes = self.cache.bytes_used
                self.memo.peak_cache_bytes = self.cache.peak_bytes
                self.memo.evictions = self.cache.collections
                return self.memo

    def _encode(self, simulator: DetailedSimulator) -> bytes:
        blob = encode_config(
            simulator.iq.entries,
            simulator.fetch_pc,
            simulator.fetch_stalled,
            simulator.fetch_halted,
        )
        if self._obs_on:
            self.obs.counter("memo.encodes")
            self.obs.observe("memo.config_bytes", len(blob))
        return blob

    def _end_chain(self, length: int) -> None:
        """Close one replay chain (statistics + event metrics)."""
        self.memo.chain_lengths.append(length)
        if self._obs_on:
            self.obs.observe("memo.chain_length", length)

    # ------------------------------------------------------------------
    # Record (detailed) mode
    # ------------------------------------------------------------------

    def _record(self, simulator, generator, attach: Optional[AttachPoint],
                anchor: int, send, cycle_debt: int,
                actions_since_config: bool):
        """Run the detailed simulator, recording its actions.

        Returns the next mode tuple: ``("replay", node)`` when a known
        configuration is reached, or ``("finished",)``.
        """
        world = self.world
        cache = self.cache
        memo = self.memo
        obs = self.obs
        obs_on = self._obs_on
        actions_pending = attach is None  # force re-anchor after eviction

        def record_node(node: Node):
            nonlocal attach, anchor, actions_since_config
            cycle = world.cycle
            if cycle != anchor:
                if attach is not None:
                    advance = AdvanceNode(cycle - anchor)
                    cache.alloc_action(advance)
                    cache.attach(attach, advance)
                    attach = (advance, None)
                anchor = cycle
            if attach is not None:
                cache.alloc_action(node)
                cache.attach(attach, node)
            actions_since_config = True

        while True:
            try:
                request = generator.send(send)
            except StopIteration:  # pragma: no cover - protocol violation
                raise SimulationError("detailed simulator ended unexpectedly")
            send = None
            kind = type(request)

            if kind is CycleBoundary:
                # Configurations may only be snapshotted when the world
                # clock is in sync with the simulator's cycle (not while
                # swallowing cycles the replayer already advanced).
                if (actions_since_config or actions_pending) and cycle_debt == 0:
                    blob = self._encode(simulator)
                    existing = cache.lookup(blob)
                    if existing is not None:
                        cache.attach(attach, existing)
                        return ("replay", existing)
                    config = cache.alloc_config(blob)
                    cache.attach(attach, config)
                    attach = (config, None)
                    anchor = world.cycle
                    actions_since_config = False
                    actions_pending = False
                    if self.policy.maybe_collect(cache):
                        # Node identities are stale: re-anchor at the
                        # next configuration boundary.
                        attach = None
                        actions_pending = True
                if cycle_debt > 0:
                    cycle_debt -= 1  # replay already advanced this cycle
                else:
                    world.advance_cycles(1)
                    memo.detailed_cycles += 1
                if obs_on:
                    obs.sample_cycle(world.cycle, self,
                                     simulator.occupancy)
                if world.cycle > self.max_cycles:
                    raise SimulationError(
                        f"exceeded {self.max_cycles} simulated cycles"
                    )
            elif kind is GetControl:
                node = ControlNode()
                record_node(node)
                record = world.get_control()
                send = record
                if attach is not None:
                    attach = (node, record.outcome_key())
            elif kind is IssueLoad:
                node = LoadIssueNode(request.ordinal)
                record_node(node)
                interval = world.issue_load(request.ordinal)
                send = interval
                if attach is not None:
                    attach = (node, interval)
            elif kind is PollLoad:
                node = LoadPollNode(request.ordinal)
                record_node(node)
                reply = world.poll_load(request.ordinal)
                send = reply
                if attach is not None:
                    attach = (node, reply)
            elif kind is IssueStore:
                node = StoreIssueNode(request.ordinal)
                record_node(node)
                interval = world.issue_store(request.ordinal)
                send = interval
                if attach is not None:
                    attach = (node, interval)
            elif kind is Retire:
                node = RetireNode(request.count, request.loads,
                                  request.stores, request.controls,
                                  request.branches)
                record_node(node)
                world.retire(request)
                memo.detailed_instructions += request.count
                if attach is not None:
                    attach = (node, None)
            elif kind is Rollback:
                node = RollbackNode(request.control_ordinal,
                                    request.squashed_loads,
                                    request.squashed_stores,
                                    request.squashed_controls)
                record_node(node)
                world.rollback(request)
                if attach is not None:
                    attach = (node, None)
            elif kind is Finished:
                end = EndNode(world.cycle - anchor)
                if attach is not None:
                    cache.alloc_action(end)
                    cache.attach(attach, end)
                return ("finished",)
            else:  # pragma: no cover - protocol violation
                raise SimulationError(f"unknown request {request!r}")

    # ------------------------------------------------------------------
    # Replay (fast-forward) mode
    # ------------------------------------------------------------------

    def _replay(self, entry: ConfigNode):
        """Fast-forward along the memoized graph starting at *entry*.

        Returns ``("record", ...)`` after a fall-back resync, or
        ``("finished",)``.

        When chain compilation is enabled (:mod:`repro.memo.compile`),
        hot regions of the graph — linear actions, pass-through
        configurations and guarded single-edge outcomes — are replayed
        as straight-line compiled segments instead of node-at-a-time
        interpretation. ``fast`` marks the positions where a segment
        can begin (after a configuration, a followed outcome edge, or
        a previous segment); interior nodes of an uncompiled region pay
        a single extra boolean test. The graph cannot mutate during an
        unguarded replay episode (attaches happen in record mode,
        collections at record-mode configuration boundaries, guard
        invalidations inside audited episodes), so the structural
        generation is read once per episode.
        """
        world = self.world
        cache = self.cache
        memo = self.memo
        obs = self.obs
        obs_on = self._obs_on
        memo.replay_episodes += 1
        chain_length = 0
        chain_log: List[Tuple[Node, object]] = []
        last_blob: Optional[bytes] = None
        log_anchor = world.cycle
        position: Optional[Node] = entry
        came_from: Optional[AttachPoint] = None

        table = cache.turbo if self.turbo.enabled else None
        turbo_on = table is not None
        fast = False
        if turbo_on:
            graph_gen = cache.graph_generation
            threshold = table.threshold
            max_cycles = self.max_cycles
            ctl: List = self._ctl_records
            ctl_append = ctl.append

        while True:
            node = position
            if node is None:
                # Chain pruned by a replacement policy: re-record it.
                self._end_chain(chain_length)
                return self._resync(last_blob, chain_log, came_from,
                                    log_anchor)

            if fast and node.can_head:
                seg = node.seg
                if seg is None:
                    node.seg_hits = hits = node.seg_hits + 1
                    if hits >= threshold:
                        node.seg_hits = 0
                        seg = table.register(
                            compile_segment(node, graph_gen)
                        )
                        node.seg = seg
                        if obs_on:
                            obs.counter("turbo.segments_compiled")
                elif seg is not None and seg.generation != graph_gen:
                    # Something in the graph changed since compilation.
                    # Usually it changed elsewhere: a cheap structural
                    # re-walk revives the segment; otherwise discard
                    # and re-warm toward recompilation.
                    if revalidate(seg, graph_gen):
                        table.revalidations += 1
                        if obs_on:
                            obs.counter("turbo.revalidations")
                    else:
                        table.invalidations += 1
                        if obs_on:
                            obs.counter("turbo.invalidations")
                        node.seg = None
                        node.seg_hits = 1
                        seg = None
                # A segment whose fused total could cross the cycle
                # budget is interpreted instead, so the abort raises at
                # the exact advance the interpreter would have raised.
                if (seg is not None
                        and world.cycle + seg.cycles <= max_cycles):
                    ctl.clear()
                    result = seg.fn(world, seg.requests, seg.keys,
                                    ctl_append)
                    if result is None:
                        # Full replay: apply the per-segment constants.
                        clock = cache.touch_clock + len(seg.nodes)
                        cache.touch_clock = clock
                        seg.touched_at = clock
                        memo.actions_replayed += seg.n_actions
                        memo.configs_replayed += seg.n_configs
                        memo.replayed_cycles += seg.cycles
                        memo.replayed_instructions += seg.instructions
                        chain_length += seg.n_actions
                        if seg.n_configs:
                            last_blob = seg.last_blob
                            chain_log = patch_log(seg.log_tail, ctl)
                        elif seg.log_tail:
                            chain_log.extend(
                                patch_log(seg.log_tail, ctl)
                            )
                        if seg.sets_anchor:
                            log_anchor = world.cycle - seg.trailing_delta
                        came_from = seg.last_attach
                        table.segment_replays += 1
                        if obs_on:
                            obs.counter("turbo.segment_replays")
                            obs.sample_cycle(world.cycle, self)
                        position = seg.end
                        continue
                    # Early return: either the segment's dynamic
                    # terminal (a multi-edge outcome whose edge is
                    # looked up here, exactly like the interpreter) or
                    # a guard miss (within one generation the reply
                    # cannot have an edge — adding one bumps the
                    # generation — so the lookup below misses and this
                    # is exactly the interpreter's fall-back).
                    gid, actual = result
                    (xnode, is_control, n_act, visited, cyc, instr,
                     n_cfg, xblob, template) = seg.exit_meta[gid]
                    if visited == len(seg.nodes):
                        # Full traversal (terminal): batched touch.
                        clock = cache.touch_clock + visited
                        cache.touch_clock = clock
                        seg.touched_at = clock
                    else:
                        # Rare partial traversal: touch the visited
                        # prefix exactly as the interpreter would.
                        for touched in seg.nodes[:visited]:
                            cache.touch(touched)
                    memo.actions_replayed += n_act
                    memo.configs_replayed += n_cfg
                    memo.replayed_cycles += cyc
                    memo.replayed_instructions += instr
                    chain_length += n_act
                    if xblob is not None:
                        last_blob = xblob
                        chain_log = patch_log(template, ctl)
                    else:
                        chain_log.extend(patch_log(template, ctl))
                    chain_log.append((xnode, actual))
                    log_anchor = world.cycle
                    edge_key = (actual.outcome_key() if is_control
                                else actual)
                    successor = xnode.edges.get(edge_key)
                    if successor is None:
                        table.side_exits += 1
                        if obs_on:
                            obs.counter("turbo.side_exits")
                            obs.sample_cycle(world.cycle, self)
                        self._end_chain(chain_length)
                        return self._resync(last_blob, chain_log,
                                            (xnode, edge_key),
                                            log_anchor)
                    came_from = (xnode, edge_key)
                    table.segment_replays += 1
                    if obs_on:
                        obs.counter("turbo.segment_replays")
                        obs.sample_cycle(world.cycle, self)
                    position = successor
                    continue
                fast = False  # interpret the rest of this cold region

            cache.touch(node)
            kind = type(node)

            if kind is ConfigNode:
                memo.configs_replayed += 1
                chain_log = []
                last_blob = node.blob
                log_anchor = world.cycle
                came_from = (node, None)
                position = node.next
                fast = turbo_on
                continue

            if kind is AdvanceNode:
                world.advance_cycles(node.delta)
                memo.replayed_cycles += node.delta
                if obs_on:
                    obs.sample_cycle(world.cycle, self)
                if world.cycle > self.max_cycles:
                    raise SimulationError(
                        f"exceeded {self.max_cycles} simulated cycles"
                    )
                memo.actions_replayed += 1
                chain_length += 1
                came_from = (node, None)
                position = node.next
                continue

            if kind is RetireNode:
                world.retire(Retire(node.count, node.loads, node.stores,
                                    node.controls, node.branches))
                memo.replayed_instructions += node.count
                memo.actions_replayed += 1
                chain_length += 1
                chain_log.append((node, None))
                log_anchor = world.cycle
                came_from = (node, None)
                position = node.next
                continue

            if kind is RollbackNode:
                world.rollback(Rollback(node.control_ordinal,
                                        node.squashed_loads,
                                        node.squashed_stores,
                                        node.squashed_controls))
                memo.actions_replayed += 1
                chain_length += 1
                chain_log.append((node, None))
                log_anchor = world.cycle
                came_from = (node, None)
                position = node.next
                continue

            if kind is ControlNode:
                record = world.get_control()
                outcome_key = record.outcome_key()
                memo.actions_replayed += 1
                chain_length += 1
                chain_log.append((node, record))
                log_anchor = world.cycle
                successor = node.edges.get(outcome_key)
                if successor is None:
                    self._end_chain(chain_length)
                    return self._resync(last_blob, chain_log,
                                        (node, outcome_key), log_anchor)
                came_from = (node, outcome_key)
                position = successor
                fast = turbo_on
                continue

            if kind in (LoadIssueNode, LoadPollNode, StoreIssueNode):
                if kind is LoadIssueNode:
                    reply = world.issue_load(node.ordinal)
                elif kind is LoadPollNode:
                    reply = world.poll_load(node.ordinal)
                else:
                    reply = world.issue_store(node.ordinal)
                memo.actions_replayed += 1
                chain_length += 1
                chain_log.append((node, reply))
                log_anchor = world.cycle
                successor = node.edges.get(reply)
                if successor is None:
                    self._end_chain(chain_length)
                    return self._resync(last_blob, chain_log,
                                        (node, reply), log_anchor)
                came_from = (node, reply)
                position = successor
                fast = turbo_on
                continue

            if kind is EndNode:
                world.advance_cycles(node.delta)
                memo.replayed_cycles += node.delta
                memo.actions_replayed += 1
                chain_length += 1
                self._end_chain(chain_length)
                return ("finished",)

            raise SimulationError(  # pragma: no cover
                f"unknown node {node!r} in p-action cache"
            )

    # ------------------------------------------------------------------
    # Fall-back: resynchronise a fresh detailed simulator
    # ------------------------------------------------------------------

    def _resync(self, blob: Optional[bytes],
                chain_log: List[Tuple[Node, object]],
                attach: Optional[AttachPoint], log_anchor: int):
        """Reconstruct detailed state at the divergence point.

        Decodes the owning configuration, restarts a detailed simulator
        from it, and re-feeds the logged outcomes **without** touching
        the world (the replayer already performed those interactions).
        Returns the record-mode tuple positioned exactly at the
        divergence.
        """
        if blob is None:
            raise SimulationError("fall-back before any configuration")
        if self._obs_on:
            self.obs.counter("memo.resyncs")
            self.obs.observe("memo.resync_log_length", len(chain_log))
        with self.obs.span("memo.resync", cat="memo"):
            try:
                entries, fetch_pc, stalled, halted = decode_config(
                    blob, self.executable
                )
            except MemoizationError:
                raise
            except (ValueError, IndexError, struct.error) as exc:
                # A blob that cannot decode is corrupt in-memory state:
                # the engine cannot resynchronize from it, and silently
                # proceeding would emit wrong numbers. Surface it as
                # the memoization failure it is (docs/robustness.md).
                raise MemoizationError(
                    f"cannot resynchronize: undecodable configuration "
                    f"snapshot ({type(exc).__name__}: {exc})"
                ) from exc
            simulator = DetailedSimulator(self.executable, self.params)
            simulator.restore(entries, fetch_pc, stalled, halted)
            generator = simulator.run()

            send = None
            for node, value in chain_log:
                expected = _REQUEST_FOR_NODE[type(node)]
                while True:
                    request = generator.send(send)
                    send = None
                    if type(request) is CycleBoundary:
                        continue  # cycles already counted during replay
                    break
                if type(request) is not expected:
                    raise SimulationError(
                        f"resync desync: simulator yielded {request!r}, "
                        f"log has {node!r}"
                    )
                if node.is_outcome:
                    send = value
            # Align the world clock with the resumed simulator. The
            # resumed generator's first cycle boundary ends cycle
            # ``b0``: ``log_anchor`` when the prefix left the simulator
            # mid-cycle (non-empty log), else the cycle after the
            # owning configuration. Boundaries whose cycles the
            # replayer already advanced past are "debt" and must be
            # swallowed instead of advancing the clock; conversely,
            # resuming exactly at a configuration owes the one advance
            # the skipped record-mode boundary would have done.
            world_cycle = self.world.cycle
            anchor = world_cycle  # cycle of the last action on branch
            b0 = log_anchor if chain_log else log_anchor + 1
            if world_cycle < b0:
                self.world.advance_cycles(b0 - world_cycle)
                self.memo.detailed_cycles += b0 - world_cycle
            cycle_debt = max(0, world_cycle - b0)
            return ("record", simulator, generator, attach, anchor,
                    send, cycle_debt, bool(chain_log))

"""Memoization of the μ-architecture simulator (the paper's contribution).

* :class:`PActionCache` — configuration → action-chain graph
* :class:`FastForwardEngine` — record/replay/resync driver
* replacement policies — unbounded, flush-on-full, copying GC,
  generational GC (§4.3)
* chain compilation — hot replay paths compiled to flat segments
  (:class:`TurboConfig`, :mod:`repro.memo.compile`)
"""

from repro.memo.actions import (
    ACTION_BYTES,
    AdvanceNode,
    ConfigNode,
    ControlNode,
    EDGE_BYTES,
    EndNode,
    LoadIssueNode,
    LoadPollNode,
    Node,
    OutcomeNode,
    RetireNode,
    RollbackNode,
    StoreIssueNode,
)
from repro.memo.compile import (
    CompiledSegment,
    DEFAULT_COMPILE_THRESHOLD,
    SegmentTable,
    TurboConfig,
    compile_segment,
    patch_log,
    revalidate,
)
from repro.memo.dump import cache_summary, dump_chain
from repro.memo.engine import FastForwardEngine, run_signature
from repro.memo.pcache import PActionCache
from repro.memo.persist import (
    load_pcache,
    read_pcache,
    save_pcache,
    write_pcache,
)
from repro.memo.policies import (
    CopyingGCPolicy,
    FlushOnFullPolicy,
    GenerationalGCPolicy,
    ReplacementPolicy,
    UnboundedPolicy,
    make_policy,
)

__all__ = [
    "ACTION_BYTES",
    "EDGE_BYTES",
    "Node",
    "ConfigNode",
    "AdvanceNode",
    "RetireNode",
    "RollbackNode",
    "OutcomeNode",
    "ControlNode",
    "LoadIssueNode",
    "LoadPollNode",
    "StoreIssueNode",
    "EndNode",
    "PActionCache",
    "FastForwardEngine",
    "run_signature",
    "TurboConfig",
    "SegmentTable",
    "CompiledSegment",
    "DEFAULT_COMPILE_THRESHOLD",
    "compile_segment",
    "patch_log",
    "revalidate",
    "ReplacementPolicy",
    "UnboundedPolicy",
    "FlushOnFullPolicy",
    "CopyingGCPolicy",
    "GenerationalGCPolicy",
    "make_policy",
    "cache_summary",
    "dump_chain",
    "save_pcache",
    "load_pcache",
    "write_pcache",
    "read_pcache",
]

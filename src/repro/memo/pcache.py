"""The p-action cache — configurations mapped to action chains.

Owns the configuration index (compressed iQ snapshot → entry node), the
modelled size accounting, and the allocation statistics that Table 5
reports. Replacement decisions are delegated to a
:class:`~repro.memo.policies.ReplacementPolicy`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import MemoizationError
from repro.memo.actions import (
    ConfigNode,
    EDGE_BYTES,
    Node,
    OutcomeNode,
)
from repro.uarch.config_codec import config_size_bytes

#: An attachment point: (node, edge_key). ``edge_key`` is None for
#: single-successor nodes, else the outcome value whose edge to set.
AttachPoint = Tuple[Node, Optional[object]]


class PActionCache:
    """Graph of configurations and memoized simulator actions."""

    def __init__(self) -> None:
        self.index: Dict[bytes, ConfigNode] = {}
        self.bytes_used = 0
        self.peak_bytes = 0
        #: Static allocation counters (Table 5).
        self.configs_allocated = 0
        self.actions_allocated = 0
        #: Monotonic clock used for touch-based (GC) replacement.
        self.touch_clock = 0
        #: Number of flushes / collections performed.
        self.collections = 0
        #: Identity of the program this cache's configurations describe.
        self._bound_program: Optional[bytes] = None
        #: Structural-mutation generation. Bumped by every operation
        #: that changes node linkage or membership (attach, invalidate,
        #: clear, rebuild); compiled replay segments record the value
        #: they were built under and are discarded on mismatch, so the
        #: turbo fast path can never walk stale pointers
        #: (:mod:`repro.memo.compile`).
        self.graph_generation = 0
        #: Chain-compilation registry (:class:`repro.memo.compile.
        #: SegmentTable`); installed by the engine when turbo is
        #: enabled, None otherwise. Derived state — never persisted.
        self.turbo = None
        #: The key of the most recent :meth:`lookup` hit. The guard's
        #: audit engine uses it as the *trusted* encoding of the state
        #: a replay episode entered from (the key was produced by
        #: ``encode_config`` moments before the hit, so it is immune to
        #: in-memory corruption of the node's ``blob`` attribute).
        self.last_lookup_blob: Optional[bytes] = None
        #: Chains invalidated (quarantined) by the audit engine.
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self.index)

    def bind_program(self, signature: bytes) -> None:
        """Tie the cache to one program's text image.

        Configurations encode instruction addresses, so replaying a
        cache recorded for a different binary would be silently wrong;
        sharing across runs is only legal for the same text.
        """
        if self._bound_program is None:
            self._bound_program = signature
        elif self._bound_program != signature:
            raise MemoizationError(
                "p-action cache was recorded for a different program; "
                "create a fresh PActionCache per executable"
            )

    def snapshot(self) -> Dict[str, object]:
        """Read-only live view for observability and the ``obs`` CLI.

        Keys are explicitly sorted so exported snapshots are stable
        documents; nothing here walks the graph (O(1)), so it is safe
        to call per sample while a simulation is running.
        """
        return {
            "actions_allocated": self.actions_allocated,
            "bytes_used": self.bytes_used,
            "collections": self.collections,
            "configs_allocated": self.configs_allocated,
            "configs_live": len(self.index),
            "invalidations": self.invalidations,
            "peak_bytes": self.peak_bytes,
            "touch_clock": self.touch_clock,
        }

    # -- lookup -----------------------------------------------------------

    def lookup(self, blob: bytes) -> Optional[ConfigNode]:
        """Find the configuration node for *blob*, touching it."""
        node = self.index.get(blob)
        if node is not None:
            self.touch(node)
            self.last_lookup_blob = blob
        return node

    def invalidate(self, node: ConfigNode) -> None:
        """Quarantine *node*'s chain: unlink it and drop its index entry.

        Used by the audit engine when a replayed chain diverges from
        detailed re-execution (in-memory corruption, stale warm-start
        state). The configuration is removed from the index — keyed by
        identity, not by ``node.blob``, which may itself be the
        corrupted field — and its outgoing chain is severed, so every
        path into the node degrades to the safe pruned-chain fall-back
        and a fresh configuration is recorded for that state.

        ``node.blob`` is tried as the index key first — the common case
        where the blob field itself is intact — falling back to the
        full scan only when that probe misses (the blob may be the
        corrupted field).
        """
        try:
            hit = self.index.get(node.blob)
        except TypeError:  # blob corrupted into something unhashable
            hit = None
        if hit is node:
            del self.index[node.blob]
        else:
            for key, candidate in list(self.index.items()):
                if candidate is node:
                    del self.index[key]
        node.next = None
        self.invalidations += 1
        self.graph_generation += 1

    def touch(self, node: Node) -> None:
        """Mark *node* as used (replay traversal / recording)."""
        self.touch_clock += 1
        node.touch_gen = self.touch_clock

    # -- allocation ----------------------------------------------------------

    def _account(self, nbytes: int) -> None:
        self.bytes_used += nbytes
        if self.bytes_used > self.peak_bytes:
            self.peak_bytes = self.bytes_used

    def alloc_config(self, blob: bytes) -> ConfigNode:
        """Allocate (and index) a new configuration node."""
        if blob in self.index:
            raise MemoizationError("configuration already allocated")
        node = ConfigNode(blob, config_size_bytes(blob))
        self.index[blob] = node
        self.configs_allocated += 1
        self._account(node.size_bytes())
        self.touch(node)
        return node

    def alloc_action(self, node: Node) -> Node:
        """Account for a freshly created action node."""
        self.actions_allocated += 1
        self._account(node.size_bytes())
        self.touch(node)
        return node

    def account_edge(self, node: OutcomeNode) -> None:
        """Account for an extra outcome edge added to *node*."""
        if len(node.edges) > 1:
            self._account(EDGE_BYTES)

    def attach(self, point: Optional[AttachPoint], node: Node) -> None:
        """Link *node* as the successor at *point* (no-op when None)."""
        if point is None:
            return
        parent, key = point
        if key is None:
            if parent.is_outcome:
                raise MemoizationError(
                    f"outcome node {parent!r} needs an edge key"
                )
            parent.next = node
        else:
            if not parent.is_outcome:
                raise MemoizationError(
                    f"{parent!r} cannot hold outcome edges"
                )
            parent.edges[key] = node
            self.account_edge(parent)
        self.graph_generation += 1

    # -- wholesale replacement support ----------------------------------------

    def prepare_collection(self) -> None:
        """Hook a replacement policy calls before computing survivals.

        Materializes the turbo fast path's deferred per-node touches
        (see :meth:`repro.memo.compile.SegmentTable.flush_touches`) so
        ``touch_gen``-based survival decisions are identical with chain
        compilation on or off.
        """
        if self.turbo is not None:
            self.turbo.flush_touches(self.graph_generation)

    def clear(self) -> None:
        """Drop everything (the flush-on-full policy)."""
        self.index.clear()
        self.bytes_used = 0
        self.collections += 1
        self.graph_generation += 1
        if self.turbo is not None:
            self.turbo.segments = []

    def rebuild(self, kept: Dict[bytes, ConfigNode]) -> None:
        """Replace the index after a garbage collection and re-account.

        The caller has already pruned dead successors from the kept
        subgraph; this recomputes ``bytes_used`` by walking it.
        """
        self.index = kept
        self.bytes_used = self._measure()
        self.collections += 1
        self.graph_generation += 1

    def _measure(self) -> int:
        return sum(node.size_bytes() for node in self.reachable_nodes())

    def reachable_nodes(self):
        """Iterate every node reachable from the configuration index."""
        seen = set()
        stack = list(self.index.values())
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            if node.is_outcome:
                stack.extend(node.edges.values())
            elif node.next is not None:
                stack.append(node.next)

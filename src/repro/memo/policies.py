"""P-action cache replacement policies (paper §4.3).

The paper investigates four ways of bounding the p-action cache:

* **unbounded** — let it grow (fast while it fits in RAM);
* **flush-on-full** — drop the whole cache when it exceeds a limit and
  let detailed simulation repopulate it ("easy to implement and can
  limit the p-action cache to any size");
* **copying GC** — keep only actions *used since the last collection*;
* **generational GC** — ditto, but nodes that survive a collection are
  promoted and minor collections only sweep the young generation.

The paper's finding — reproduced by ``benchmarks/bench_gc_policies.py``
— is that the collectors are "almost always worse than simply
flushing", because collections are infrequent and little of the cache
survives them.

A policy is consulted after every allocation burst
(:meth:`ReplacementPolicy.maybe_collect`); returning True tells the
recording engine that node identities were invalidated and it must
re-anchor at the next configuration boundary.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.memo.actions import ConfigNode, Node
from repro.memo.pcache import PActionCache


class ReplacementPolicy:
    """Interface: decide when and how to shrink the p-action cache."""

    #: Human-readable name used in benchmark output.
    name = "abstract"

    def maybe_collect(self, cache: PActionCache) -> bool:
        """Shrink *cache* if needed. True when a collection happened."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class UnboundedPolicy(ReplacementPolicy):
    """Never collect: the paper's default measurement configuration."""

    name = "unbounded"

    def maybe_collect(self, cache: PActionCache) -> bool:
        return False


class FlushOnFullPolicy(ReplacementPolicy):
    """Flush the entire cache when it exceeds *limit_bytes*."""

    name = "flush"

    def __init__(self, limit_bytes: int):
        if limit_bytes <= 0:
            raise ValueError("limit must be positive")
        self.limit_bytes = limit_bytes

    def maybe_collect(self, cache: PActionCache) -> bool:
        if cache.bytes_used <= self.limit_bytes:
            return False
        cache.clear()
        return True

    def describe(self) -> str:
        return f"flush@{self.limit_bytes}"


class CopyingGCPolicy(ReplacementPolicy):
    """Keep only nodes used since the last collection.

    A node was "used" when its ``touch_gen`` is newer than the previous
    collection's clock. Untouched successors are unlinked, so replay
    hitting a pruned branch falls back to detailed simulation and
    re-records — exactly the cost the paper measured against flushing
    (plus, in the real implementation, the copying cost; our model
    counts surviving bytes identically).
    """

    name = "copying-gc"

    def __init__(self, limit_bytes: int):
        if limit_bytes <= 0:
            raise ValueError("limit must be positive")
        self.limit_bytes = limit_bytes
        self._last_collection_clock = 0
        #: Fraction of bytes surviving each collection (paper: ~18%).
        self.survival_rates = []

    def maybe_collect(self, cache: PActionCache) -> bool:
        if cache.bytes_used <= self.limit_bytes:
            return False
        # Materialize any touches the compiled fast path deferred, so
        # survival below sees what interpreted replay would have left.
        cache.prepare_collection()
        before = cache.bytes_used
        threshold = self._last_collection_clock
        kept: Dict[bytes, ConfigNode] = {}
        # Per-node survival filter: insertion order of ``index`` is the
        # (deterministic) recording order, and the decision for each
        # node is independent of visit order.
        for blob, node in cache.index.items():  # repro-lint: disable=det/dict-value-iteration
            if node.touch_gen > threshold:
                kept[blob] = node
        for node in list(_walk(kept)):
            _prune_dead_successors(node, threshold)
        cache.rebuild(kept)
        self._last_collection_clock = cache.touch_clock
        self.survival_rates.append(
            cache.bytes_used / before if before else 0.0
        )
        return True

    def describe(self) -> str:
        return f"copying-gc@{self.limit_bytes}"


class GenerationalGCPolicy(ReplacementPolicy):
    """Two-generation collector: survivors are promoted and minor
    collections sweep only the young generation."""

    name = "generational-gc"

    #: Run a full (major) collection every this many minor ones.
    MAJOR_EVERY = 4

    def __init__(self, limit_bytes: int):
        if limit_bytes <= 0:
            raise ValueError("limit must be positive")
        self.limit_bytes = limit_bytes
        self._last_collection_clock = 0
        self._minor_count = 0
        self.survival_rates = []

    def maybe_collect(self, cache: PActionCache) -> bool:
        if cache.bytes_used <= self.limit_bytes:
            return False
        cache.prepare_collection()
        before = cache.bytes_used
        threshold = self._last_collection_clock
        self._minor_count += 1
        major = self._minor_count % self.MAJOR_EVERY == 0
        kept: Dict[bytes, ConfigNode] = {}
        # Same order-insensitive survival filter as SizeLimitPolicy.
        for blob, node in cache.index.items():  # repro-lint: disable=det/dict-value-iteration
            survive = node.touch_gen > threshold or (
                not major and node.generation > 0
            )
            if survive:
                kept[blob] = node
        for node in list(_walk(kept)):
            _prune_dead_successors(
                node, threshold, keep_old=not major
            )
        for node in _walk(kept):
            node.generation = 1  # survivors are promoted
        cache.rebuild(kept)
        self._last_collection_clock = cache.touch_clock
        self.survival_rates.append(
            cache.bytes_used / before if before else 0.0
        )
        return True

    def describe(self) -> str:
        return f"generational-gc@{self.limit_bytes}"


def _walk(index: Dict[bytes, ConfigNode]):
    """Iterate every node reachable from *index* (deduplicated)."""
    seen = set()
    stack = list(index.values())
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        if node.is_outcome:
            stack.extend(node.edges.values())
        elif node.next is not None:
            stack.append(node.next)


def _alive(node: Node, threshold: int, keep_old: bool) -> bool:
    return node.touch_gen > threshold or (keep_old and node.generation > 0)


def _prune_dead_successors(node: Node, threshold: int,
                           keep_old: bool = False) -> None:
    """Unlink successors that were not used since the last collection."""
    if node.is_outcome:
        # Order-insensitive: selects the *set* of dead edges to unlink.
        dead = [
            key for key, succ in node.edges.items()  # repro-lint: disable=det/dict-value-iteration
            if not _alive(succ, threshold, keep_old)
        ]
        for key in dead:
            del node.edges[key]
    elif node.next is not None and not _alive(node.next, threshold, keep_old):
        node.next = None


def make_policy(name: str, limit_bytes: Optional[int] = None,
                ) -> ReplacementPolicy:
    """Factory: ``unbounded``, ``flush``, ``copying-gc``,
    ``generational-gc``."""
    if name == "unbounded":
        return UnboundedPolicy()
    if limit_bytes is None:
        raise ValueError(f"policy {name!r} requires limit_bytes")
    factories = {
        "flush": FlushOnFullPolicy,
        "copying-gc": CopyingGCPolicy,
        "generational-gc": GenerationalGCPolicy,
    }
    try:
        return factories[name](limit_bytes)
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from "
            f"{['unbounded'] + sorted(factories)}"
        ) from None

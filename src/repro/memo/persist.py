"""P-action cache persistence — memoization that survives the process.

FastSim's big caches are worth keeping: a simulation campaign that
re-runs the same binary (regression timing, input sweeps with shared
prefixes, repeated CI runs) can start fully warm. This module
serialises the configuration→action graph to a flat record stream and
back.

Format (all integers big-endian):

* header: magic ``FSPC``, u32 node count, u16 binding-signature length,
  signature bytes;
* one record per node, identified by a dense index. Single successors
  and outcome edges reference nodes by index (``0xFFFFFFFF`` = none).
  Outcome-edge keys are encoded by type tag (int / control-outcome
  tuple).

The binding signature (program text + processor parameters) is stored
and re-imposed on load, so a persisted cache can never be replayed
against the wrong binary or machine model.
"""

from __future__ import annotations

import io
from typing import BinaryIO, Dict, List, Optional, Union

from repro.errors import MemoizationError
from repro.memo.actions import (
    AdvanceNode,
    ConfigNode,
    ControlNode,
    EndNode,
    LoadIssueNode,
    LoadPollNode,
    Node,
    RetireNode,
    RollbackNode,
    StoreIssueNode,
)
from repro.memo.pcache import PActionCache
from repro.uarch.config_codec import config_size_bytes

MAGIC = b"FSPC"
_NONE = 0xFFFFFFFF

_NODE_TAGS = {
    ConfigNode: 0,
    AdvanceNode: 1,
    RetireNode: 2,
    RollbackNode: 3,
    ControlNode: 4,
    LoadIssueNode: 5,
    LoadPollNode: 6,
    StoreIssueNode: 7,
    EndNode: 8,
}
_TAG_NODES = {tag: cls for cls, tag in _NODE_TAGS.items()}

# Edge-key type tags.
_KEY_INT = 0
_KEY_TUPLE = 1


def _write_u32(stream: BinaryIO, value: int) -> None:
    stream.write(value.to_bytes(4, "big"))


def _write_i32(stream: BinaryIO, value: int) -> None:
    stream.write(value.to_bytes(4, "big", signed=True))


def _read_u32(stream: BinaryIO) -> int:
    raw = stream.read(4)
    if len(raw) != 4:
        raise MemoizationError("truncated p-action cache file")
    return int.from_bytes(raw, "big")


def _read_i32(stream: BinaryIO) -> int:
    raw = stream.read(4)
    if len(raw) != 4:
        raise MemoizationError("truncated p-action cache file")
    return int.from_bytes(raw, "big", signed=True)


def _write_key(stream: BinaryIO, key) -> None:
    if isinstance(key, int):
        stream.write(bytes([_KEY_INT]))
        _write_i32(stream, key)
    elif isinstance(key, tuple):
        stream.write(bytes([_KEY_TUPLE]))
        stream.write(bytes([len(key)]))
        for item in key:
            if isinstance(item, bool):
                stream.write(b"b" + (b"\x01" if item else b"\x00"))
            elif isinstance(item, int):
                stream.write(b"i")
                _write_i32(stream, item)
            else:
                raise MemoizationError(
                    f"unsupported edge-key element {item!r}"
                )
    else:
        raise MemoizationError(f"unsupported edge key {key!r}")


def _read_key(stream: BinaryIO):
    tag = stream.read(1)[0]
    if tag == _KEY_INT:
        return _read_i32(stream)
    if tag == _KEY_TUPLE:
        length = stream.read(1)[0]
        items = []
        for _ in range(length):
            kind = stream.read(1)
            if kind == b"b":
                items.append(stream.read(1) == b"\x01")
            elif kind == b"i":
                items.append(_read_i32(stream))
            else:
                raise MemoizationError(f"bad key element tag {kind!r}")
        return tuple(items)
    raise MemoizationError(f"bad edge key tag {tag}")


def _collect_nodes(cache: PActionCache) -> List[Node]:
    ordered: List[Node] = []
    seen = set()
    stack: List[Node] = list(cache.index.values())
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        ordered.append(node)
        if node.is_outcome:
            stack.extend(node.edges.values())
        elif node.next is not None:
            stack.append(node.next)
    return ordered


def write_pcache(cache: PActionCache, stream: BinaryIO) -> None:
    """Serialise *cache* (including its program binding) to *stream*."""
    nodes = _collect_nodes(cache)
    index_of: Dict[int, int] = {id(n): i for i, n in enumerate(nodes)}
    signature = cache._bound_program or b""
    stream.write(MAGIC)
    _write_u32(stream, len(nodes))
    stream.write(len(signature).to_bytes(2, "big"))
    stream.write(signature)
    for node in nodes:
        kind = type(node)
        stream.write(bytes([_NODE_TAGS[kind]]))
        if kind is ConfigNode:
            _write_u32(stream, len(node.blob))
            stream.write(node.blob)
        elif kind is AdvanceNode or kind is EndNode:
            _write_u32(stream, node.delta)
        elif kind is RetireNode:
            for field in (node.count, node.loads, node.stores,
                          node.controls, node.branches):
                stream.write(bytes([field]))
        elif kind is RollbackNode:
            _write_u32(stream, node.control_ordinal)
            for field in (node.squashed_loads, node.squashed_stores,
                          node.squashed_controls):
                stream.write(bytes([field]))
        elif kind in (LoadIssueNode, LoadPollNode, StoreIssueNode):
            _write_u32(stream, node.ordinal)
        # ControlNode has no payload.
        if node.is_outcome:
            stream.write(len(node.edges).to_bytes(2, "big"))
            for key, successor in node.edges.items():
                _write_key(stream, key)
                _write_u32(stream, index_of[id(successor)])
        else:
            _write_u32(
                stream,
                index_of[id(node.next)] if node.next is not None else _NONE,
            )


def read_pcache(stream: BinaryIO) -> PActionCache:
    """Deserialise a cache written by :func:`write_pcache`."""
    if stream.read(4) != MAGIC:
        raise MemoizationError("not a p-action cache file")
    count = _read_u32(stream)
    sig_len = int.from_bytes(stream.read(2), "big")
    signature = stream.read(sig_len)
    nodes: List[Node] = []
    links: List[Optional[object]] = []  # per node: int or [(key, int)]
    for _ in range(count):
        tag = stream.read(1)[0]
        kind = _TAG_NODES.get(tag)
        if kind is None:
            raise MemoizationError(f"unknown node tag {tag}")
        if kind is ConfigNode:
            blob_len = _read_u32(stream)
            blob = stream.read(blob_len)
            node = ConfigNode(blob, config_size_bytes(blob))
        elif kind is AdvanceNode:
            node = AdvanceNode(_read_u32(stream))
        elif kind is EndNode:
            node = EndNode(_read_u32(stream))
        elif kind is RetireNode:
            fields = stream.read(5)
            node = RetireNode(*fields)
        elif kind is RollbackNode:
            ordinal = _read_u32(stream)
            fields = stream.read(3)
            node = RollbackNode(ordinal, *fields)
        elif kind is ControlNode:
            node = ControlNode()
        else:  # load issue / poll, store issue
            node = kind(_read_u32(stream))
        if node.is_outcome:
            n_edges = int.from_bytes(stream.read(2), "big")
            edge_links = []
            for _ in range(n_edges):
                key = _read_key(stream)
                edge_links.append((key, _read_u32(stream)))
            links.append(edge_links)
        else:
            links.append(_read_u32(stream))
        nodes.append(node)

    cache = PActionCache()
    if signature:
        cache.bind_program(signature)
    for node, link in zip(nodes, links):
        if node.is_outcome:
            for key, target in link:
                node.edges[key] = nodes[target]
        elif link != _NONE:
            node.next = nodes[link]
        if type(node) is ConfigNode:
            cache.index[node.blob] = node
    cache.configs_allocated = sum(
        1 for n in nodes if type(n) is ConfigNode
    )
    cache.actions_allocated = len(nodes) - cache.configs_allocated
    cache.bytes_used = cache._measure()
    cache.peak_bytes = cache.bytes_used
    return cache


def save_pcache(cache: PActionCache,
                path: Union[str, "io.PathLike"]) -> None:
    """Write *cache* to *path*."""
    with open(path, "wb") as stream:
        write_pcache(cache, stream)


def load_pcache(path: Union[str, "io.PathLike"]) -> PActionCache:
    """Read a cache from *path*."""
    with open(path, "rb") as stream:
        return read_pcache(stream)

"""P-action cache persistence — memoization that survives the process.

FastSim's big caches are worth keeping: a simulation campaign that
re-runs the same binary (regression timing, input sweeps with shared
prefixes, repeated CI runs) can start fully warm. This module
serialises the configuration→action graph to a flat record stream and
back.

Two on-disk formats exist (all integers big-endian):

**v2 (current, integrity-checked)** — written by :func:`write_pcache`:

* preamble: magic ``FSPC``, u32 sentinel ``0xFFFFFFFF``, u16 format
  version (2);
* header: u32 node count, u16 binding-signature length, signature
  bytes, u32 CRC32 over every preceding byte (preamble included);
* one framed record per node: u32 payload length, the payload (the
  node encoding described below), u32 CRC32 over the payload;
* trailer: the SHA-256 digest (32 bytes) of every preceding byte.

**v1 (legacy, un-checksummed)** — magic followed directly by the u32
node count (which is capped far below the v2 sentinel, so the two
formats are self-distinguishing), u16 signature length, signature, and
bare node payloads. v1 files are still readable; new files are always
written as v2 unless ``version=1`` is forced (used by compat tests).

Node payloads are identical in both formats: a type tag, the node's
fields, then either the outcome-edge table (keys encoded by type tag)
or the single-successor index (``0xFFFFFFFF`` = none). Nodes are
identified by dense index.

Damaged input raises :class:`~repro.errors.PCacheCorruptError` — and
only that (raw ``struct.error`` / ``EOFError`` from decode internals
never escape), naming the failing record and byte offset.
:func:`read_pcache`/:func:`load_pcache` accept ``strict=False`` to
*salvage* instead: CRC-valid records are kept, damaged records are
dropped, and every link into a dropped or missing node is severed —
safe by construction, because the replay engine treats a severed chain
exactly like one pruned by a replacement policy (it falls back to
detailed simulation).

The binding signature (program text + processor parameters) is stored
and re-imposed on load, so a persisted cache can never be replayed
against the wrong binary or machine model.
"""

from __future__ import annotations

import hashlib
import io
import zlib
from typing import BinaryIO, Dict, List, Optional, Tuple, Union

from repro.errors import MemoizationError, PCacheCorruptError
from repro.memo.actions import (
    AdvanceNode,
    ConfigNode,
    ControlNode,
    EndNode,
    LoadIssueNode,
    LoadPollNode,
    Node,
    RetireNode,
    RollbackNode,
    StoreIssueNode,
)
from repro.memo.pcache import PActionCache
from repro.uarch.config_codec import config_size_bytes

MAGIC = b"FSPC"
#: Current on-disk format version.
FORMAT_VERSION = 2
#: Marker after the magic that distinguishes versioned (v2+) files
#: from legacy v1 files, whose node count occupies the same bytes.
_VERSION_SENTINEL = 0xFFFFFFFF
_NONE = 0xFFFFFFFF
#: Sanity bound for one framed record payload (a node encoding is tens
#: of bytes; the largest possible edge table is well under this).
_MAX_RECORD_BYTES = 1 << 24
#: SHA-256 digest size (the v2 whole-file trailer).
_TRAILER_BYTES = 32

_NODE_TAGS = {
    ConfigNode: 0,
    AdvanceNode: 1,
    RetireNode: 2,
    RollbackNode: 3,
    ControlNode: 4,
    LoadIssueNode: 5,
    LoadPollNode: 6,
    StoreIssueNode: 7,
    EndNode: 8,
}
_TAG_NODES = {tag: cls for cls, tag in _NODE_TAGS.items()}

# Edge-key type tags.
_KEY_INT = 0
_KEY_TUPLE = 1

#: Exceptions a damaged payload can trip inside the node decoder. Only
#: :class:`PCacheCorruptError` may escape this module for bad input.
_DECODE_ERRORS = (IndexError, ValueError, KeyError, TypeError,
                  EOFError, OverflowError, MemoryError)


# ---------------------------------------------------------------------------
# Low-level encode helpers (shared by both format versions)
# ---------------------------------------------------------------------------

def _write_u32(stream: BinaryIO, value: int) -> None:
    stream.write(value.to_bytes(4, "big"))


def _write_i32(stream: BinaryIO, value: int) -> None:
    stream.write(value.to_bytes(4, "big", signed=True))


def _write_key(stream: BinaryIO, key) -> None:
    if isinstance(key, int):
        stream.write(bytes([_KEY_INT]))
        _write_i32(stream, key)
    elif isinstance(key, tuple):
        stream.write(bytes([_KEY_TUPLE]))
        stream.write(bytes([len(key)]))
        for item in key:
            if isinstance(item, bool):
                stream.write(b"b" + (b"\x01" if item else b"\x00"))
            elif isinstance(item, int):
                stream.write(b"i")
                _write_i32(stream, item)
            else:
                raise MemoizationError(
                    f"unsupported edge-key element {item!r}"
                )
    else:
        raise MemoizationError(f"unsupported edge key {key!r}")


def _encode_record(node: Node, index_of: Dict[int, int]) -> bytes:
    """One node's payload bytes (format-independent)."""
    stream = io.BytesIO()
    kind = type(node)
    stream.write(bytes([_NODE_TAGS[kind]]))
    if kind is ConfigNode:
        _write_u32(stream, len(node.blob))
        stream.write(node.blob)
    elif kind is AdvanceNode or kind is EndNode:
        _write_u32(stream, node.delta)
    elif kind is RetireNode:
        for field in (node.count, node.loads, node.stores,
                      node.controls, node.branches):
            stream.write(bytes([field]))
    elif kind is RollbackNode:
        _write_u32(stream, node.control_ordinal)
        for field in (node.squashed_loads, node.squashed_stores,
                      node.squashed_controls):
            stream.write(bytes([field]))
    elif kind in (LoadIssueNode, LoadPollNode, StoreIssueNode):
        _write_u32(stream, node.ordinal)
    # ControlNode has no payload.
    if node.is_outcome:
        stream.write(len(node.edges).to_bytes(2, "big"))
        for key, successor in node.edges.items():
            _write_key(stream, key)
            _write_u32(stream, index_of[id(successor)])
    else:
        _write_u32(
            stream,
            index_of[id(node.next)] if node.next is not None else _NONE,
        )
    return stream.getvalue()


def _collect_nodes(cache: PActionCache) -> List[Node]:
    """All reachable nodes in a deterministic, round-trip-stable order.

    Roots are sorted by configuration blob (not ``index`` insertion
    order, which differs between a recording cache and one re-built by
    :func:`_link_up`), and edge dictionaries preserve their insertion
    order through a save/load cycle — so the ordering is a pure
    function of graph structure. The persistent segment store relies on
    this: it names segment heads by their index in this list.
    """
    ordered: List[Node] = []
    seen = set()
    stack: List[Node] = [cache.index[blob]
                         for blob in sorted(cache.index)]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        ordered.append(node)
        if node.is_outcome:
            stack.extend(node.edges.values())
        elif node.next is not None:
            stack.append(node.next)
    return ordered


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

def write_pcache(cache: PActionCache, stream: BinaryIO,
                 version: int = FORMAT_VERSION) -> None:
    """Serialise *cache* (including its program binding) to *stream*.

    *version* selects the on-disk format: 2 (default, integrity
    checked) or 1 (the legacy un-checksummed layout, kept so the
    compat reader stays honest under test).
    """
    if version not in (1, 2):
        raise MemoizationError(f"unsupported FSPC version {version}")
    nodes = _collect_nodes(cache)
    index_of: Dict[int, int] = {id(n): i for i, n in enumerate(nodes)}
    signature = cache._bound_program or b""

    if version == 1:
        stream.write(MAGIC)
        _write_u32(stream, len(nodes))
        stream.write(len(signature).to_bytes(2, "big"))
        stream.write(signature)
        for node in nodes:
            stream.write(_encode_record(node, index_of))
        return

    digest = hashlib.sha256()

    def out(chunk: bytes) -> None:
        digest.update(chunk)
        stream.write(chunk)

    header = io.BytesIO()
    header.write(MAGIC)
    _write_u32(header, _VERSION_SENTINEL)
    header.write(FORMAT_VERSION.to_bytes(2, "big"))
    _write_u32(header, len(nodes))
    header.write(len(signature).to_bytes(2, "big"))
    header.write(signature)
    header_bytes = header.getvalue()
    out(header_bytes)
    out(zlib.crc32(header_bytes).to_bytes(4, "big"))
    for node in nodes:
        payload = _encode_record(node, index_of)
        out(len(payload).to_bytes(4, "big"))
        out(payload)
        out(zlib.crc32(payload).to_bytes(4, "big"))
    stream.write(digest.digest())


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

class _Reader:
    """Bounded reads over an in-memory buffer, tracking the offset."""

    def __init__(self, data: bytes, record: int = -1):
        self.data = data
        self.pos = 0
        #: Record index attached to errors (-1 = header/structure).
        self.record = record

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def corrupt(self, message: str) -> PCacheCorruptError:
        return PCacheCorruptError(message, offset=self.pos,
                                  record=self.record)

    def read(self, count: int) -> bytes:
        chunk = self.data[self.pos:self.pos + count]
        if len(chunk) != count:
            raise self.corrupt(
                f"truncated: wanted {count} bytes, {len(chunk)} left"
            )
        self.pos += count
        return chunk

    def u8(self) -> int:
        return self.read(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self.read(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self.read(4), "big")

    def i32(self) -> int:
        return int.from_bytes(self.read(4), "big", signed=True)


def _read_key(reader: _Reader):
    tag = reader.u8()
    if tag == _KEY_INT:
        return reader.i32()
    if tag == _KEY_TUPLE:
        length = reader.u8()
        items = []
        for _ in range(length):
            kind = reader.read(1)
            if kind == b"b":
                items.append(reader.read(1) == b"\x01")
            elif kind == b"i":
                items.append(reader.i32())
            else:
                raise reader.corrupt(f"bad key element tag {kind!r}")
        return tuple(items)
    raise reader.corrupt(f"bad edge key tag {tag}")


#: Per node: the single-successor index, or [(edge key, index), ...].
_Link = Union[int, List[Tuple[object, int]]]


def _parse_record(reader: _Reader) -> Tuple[Node, _Link]:
    """Decode one node payload positioned at *reader*."""
    tag = reader.u8()
    kind = _TAG_NODES.get(tag)
    if kind is None:
        raise reader.corrupt(f"unknown node tag {tag}")
    if kind is ConfigNode:
        blob_len = reader.u32()
        if blob_len > _MAX_RECORD_BYTES:
            raise reader.corrupt(f"implausible config size {blob_len}")
        blob = reader.read(blob_len)
        node: Node = ConfigNode(blob, config_size_bytes(blob))
    elif kind is AdvanceNode:
        node = AdvanceNode(reader.u32())
    elif kind is EndNode:
        node = EndNode(reader.u32())
    elif kind is RetireNode:
        fields = reader.read(5)
        node = RetireNode(*fields)
    elif kind is RollbackNode:
        ordinal = reader.u32()
        fields = reader.read(3)
        node = RollbackNode(ordinal, *fields)
    elif kind is ControlNode:
        node = ControlNode()
    else:  # load issue / poll, store issue
        node = kind(reader.u32())
    if node.is_outcome:
        n_edges = reader.u16()
        edge_links: List[Tuple[object, int]] = []
        for _ in range(n_edges):
            key = _read_key(reader)
            edge_links.append((key, reader.u32()))
        return node, edge_links
    return node, reader.u32()


def _link_up(nodes: List[Optional[Node]], links: List[Optional[_Link]],
             signature: bytes) -> PActionCache:
    """Assemble a cache from parsed nodes, severing broken links.

    ``None`` entries stand for records that were dropped during a
    salvage; any reference to one (or to an out-of-range index) is
    severed — the replay engine treats a severed chain like one pruned
    by a replacement policy and falls back to detailed simulation, so
    salvage never risks wrong timing.
    """
    count = len(nodes)

    def resolve(target: int) -> Optional[Node]:
        if 0 <= target < count:
            return nodes[target]
        return None

    cache = PActionCache()
    if signature:
        cache.bind_program(signature)
    for node, link in zip(nodes, links):
        if node is None:
            continue
        if node.is_outcome:
            for key, target in link:
                successor = resolve(target)
                if successor is not None:
                    node.edges[key] = successor
        elif link != _NONE:
            node.next = resolve(link)
        if type(node) is ConfigNode:
            cache.index[node.blob] = node
    live = [n for n in nodes if n is not None]
    cache.configs_allocated = sum(
        1 for n in live if type(n) is ConfigNode
    )
    cache.actions_allocated = len(live) - cache.configs_allocated
    cache.bytes_used = cache._measure()
    cache.peak_bytes = cache.bytes_used
    return cache


def _read_v1(reader: _Reader, strict: bool) -> PActionCache:
    """The legacy path: no checksums, best-effort prefix salvage."""
    count = reader.u32()
    if count > _MAX_RECORD_BYTES:
        raise reader.corrupt(f"implausible node count {count}")
    sig_len = reader.u16()
    signature = reader.read(sig_len)
    nodes: List[Optional[Node]] = []
    links: List[Optional[_Link]] = []
    for index in range(count):
        reader.record = index
        try:
            node, link = _parse_record(reader)
        except PCacheCorruptError:
            if strict:
                raise
            # v1 records are unframed: once one is damaged the stream
            # position is untrustworthy, so keep only the valid prefix.
            nodes.extend([None] * (count - index))
            links.extend([None] * (count - index))
            break
        nodes.append(node)
        links.append(link)
    return _link_up(nodes, links, signature)


def _read_v2(reader: _Reader, strict: bool) -> PActionCache:
    """The integrity-checked path: CRC framing + whole-file digest."""
    version = reader.u16()
    if version != FORMAT_VERSION:
        raise reader.corrupt(f"unsupported FSPC format version {version}")
    count = reader.u32()
    if count > _MAX_RECORD_BYTES:
        raise reader.corrupt(f"implausible node count {count}")
    sig_len = reader.u16()
    signature = reader.read(sig_len)
    stored_crc = reader.u32()
    actual_crc = zlib.crc32(reader.data[: reader.pos - 4])
    if stored_crc != actual_crc and strict:
        raise PCacheCorruptError("header CRC mismatch",
                                 offset=reader.pos - 4, record=-1)

    nodes: List[Optional[Node]] = []
    links: List[Optional[_Link]] = []
    framing_lost = False
    for index in range(count):
        reader.record = index
        if framing_lost:
            nodes.append(None)
            links.append(None)
            continue
        record_start = reader.pos
        try:
            payload_len = reader.u32()
            if payload_len > _MAX_RECORD_BYTES or (
                    payload_len + 4 > reader.remaining()):
                raise reader.corrupt(
                    f"implausible record length {payload_len}"
                )
            payload = reader.read(payload_len)
            stored = reader.u32()
        except PCacheCorruptError:
            if strict:
                raise
            framing_lost = True
            nodes.append(None)
            links.append(None)
            continue
        if zlib.crc32(payload) != stored:
            if strict:
                raise PCacheCorruptError(
                    "record CRC mismatch", offset=record_start,
                    record=index,
                )
            # Framing is intact (the length field parsed and the bytes
            # were there), so drop just this record and carry on.
            nodes.append(None)
            links.append(None)
            continue
        body = _Reader(payload, record=index)
        try:
            node, link = _parse_record(body)
        except PCacheCorruptError as exc:
            if strict:
                raise PCacheCorruptError(
                    f"undecodable record despite valid CRC: {exc}",
                    offset=record_start, record=index,
                )
            nodes.append(None)
            links.append(None)
            continue
        nodes.append(node)
        links.append(link)

    reader.record = -1
    if not framing_lost:
        trailer_start = reader.pos
        try:
            stored_digest = reader.read(_TRAILER_BYTES)
        except PCacheCorruptError:
            if strict:
                raise
            stored_digest = None
        if stored_digest is not None:
            actual = hashlib.sha256(reader.data[:trailer_start]).digest()
            if stored_digest != actual and strict:
                raise PCacheCorruptError(
                    "whole-file digest mismatch", offset=trailer_start,
                    record=-1,
                )
            if reader.remaining() and strict:
                # The digest is the last thing a writer emits; bytes
                # after it mean the file was appended to or spliced.
                raise PCacheCorruptError(
                    f"{reader.remaining()} trailing bytes after the "
                    "whole-file digest", offset=reader.pos, record=-1,
                )
    elif strict:  # pragma: no cover - strict raised inside the loop
        raise reader.corrupt("record framing lost")
    return _link_up(nodes, links, signature)


def read_pcache(stream: BinaryIO,
                strict: bool = True) -> PActionCache:
    """Deserialise a cache written by :func:`write_pcache`.

    With ``strict=True`` (the default) any integrity violation raises
    :class:`~repro.errors.PCacheCorruptError` naming the failing record
    and offset. With ``strict=False`` the valid portion is salvaged:
    damaged records are dropped and links into them severed, which the
    replay engine handles exactly like a pruned chain.
    """
    data = stream.read()
    reader = _Reader(data)
    try:
        magic = reader.read(4)
        if magic != MAGIC:
            raise PCacheCorruptError("not a p-action cache file",
                                     offset=0)
        marker = reader.u32()
        if marker == _VERSION_SENTINEL:
            return _read_v2(reader, strict)
        reader.pos -= 4  # the marker was v1's node count
        return _read_v1(reader, strict)
    except PCacheCorruptError:
        raise
    except _DECODE_ERRORS as exc:
        # Belt and braces: no decoder internals may leak for bad input.
        raise PCacheCorruptError(
            f"undecodable p-action cache: {type(exc).__name__}: {exc}",
            offset=reader.pos, record=reader.record,
        )


def save_pcache(cache: PActionCache,
                path: Union[str, "io.PathLike"],
                version: int = FORMAT_VERSION) -> None:
    """Write *cache* to *path* (current format unless overridden)."""
    with open(path, "wb") as stream:
        write_pcache(cache, stream, version=version)


def load_pcache(path: Union[str, "io.PathLike"],
                strict: bool = True) -> PActionCache:
    """Read a cache from *path*; see :func:`read_pcache` for *strict*."""
    with open(path, "rb") as stream:
        return read_pcache(stream, strict=strict)

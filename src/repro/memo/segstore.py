"""Persistent compiled segments — turbo that survives the process.

A warm FSPC p-cache (:mod:`repro.memo.persist`) lets a run skip
detailed simulation, but every process still pays segment *re-warm-up*
(:data:`~repro.memo.compile.DEFAULT_COMPILE_THRESHOLD` interpreted
traversals per hot head) and recompilation from scratch. This module
persists *which chains were worth compiling* alongside the p-cache, so
a warm run enters the compiled fast path from its very first replay.

What is persisted — and, critically, what is not
------------------------------------------------

A segment archive stores, per live compiled segment:

* the **head-node index** in the deterministic
  :func:`~repro.memo.persist._collect_nodes` ordering (the same
  ordering FSPC serialisation uses, so indices survive a p-cache
  save/load round trip), and
* the chain's **structural digest**
  (:func:`~repro.memo.compile.segment_digest`).

No generated code, bytecode, or pickled closure is ever stored. At
install time the segment is **recompiled from the live graph** with
:func:`~repro.memo.compile.compile_segment` and installed only when its
digest matches the persisted one. Everything executed therefore derives
from the independently-integrity-checked p-cache — a corrupt, stale, or
maliciously altered archive can cause at worst a skipped install (the
head re-warms normally), never a wrong replay. The speed win is real
anyway: the warm-up thresholds vanish, and structurally identical
source hits the process-wide code cache in :mod:`repro.memo.compile`.

On-disk format (``.fsseg``, all integers big-endian) mirrors FSPC v2:

* preamble: magic ``FSSG``, u32 sentinel ``0xFFFFFFFF``, u16 version;
* header: u32 p-cache node count (binding: an archive only installs
  against a graph of the same shape), u32 record count, u32 CRC32 over
  every preceding byte;
* one framed record per segment: u32 payload length, payload
  (u32 head index + 32-byte digest), u32 CRC32 over the payload;
* trailer: SHA-256 of every preceding byte.

Damaged input raises :class:`~repro.errors.SegStoreCorruptError`
(strict) or salvages CRC-valid records (``strict=False``); campaign
stores treat corruption as a miss and quarantine the file, exactly
like a corrupt ``.fspc``.
"""

from __future__ import annotations

import hashlib
import io
import zlib
from typing import BinaryIO, Dict, List, Tuple, Union

from repro.errors import SegStoreCorruptError
from repro.memo.compile import compile_segment, revalidate, segment_digest
from repro.memo.pcache import PActionCache
from repro.memo.persist import _collect_nodes

MAGIC = b"FSSG"
FORMAT_VERSION = 1
_VERSION_SENTINEL = 0xFFFFFFFF
#: SHA-256 digest size (per-record chain digest and whole-file trailer).
_DIGEST_BYTES = 32
#: Sanity bound for one framed record payload.
_MAX_RECORD_BYTES = 1 << 16
#: Sanity bound for the record count.
_MAX_RECORDS = 1 << 24

#: Exceptions a damaged payload can trip inside the decoder; only
#: :class:`SegStoreCorruptError` may escape this module for bad input.
_DECODE_ERRORS = (IndexError, ValueError, KeyError, TypeError,
                  EOFError, OverflowError, MemoryError)

#: One persisted segment: (head-node index, structural chain digest).
SegmentRecord = Tuple[int, bytes]


class SegmentArchive:
    """In-memory form of a persisted segment set."""

    __slots__ = ("node_count", "records")

    def __init__(self, node_count: int, records: List[SegmentRecord]):
        self.node_count = node_count
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (f"<SegmentArchive {len(self.records)} segments over "
                f"{self.node_count} nodes>")


# ---------------------------------------------------------------------------
# Capture / install
# ---------------------------------------------------------------------------

def capture(cache: PActionCache) -> SegmentArchive:
    """Snapshot the live compiled segments of *cache* for persistence.

    Only segments still owned by their head (``head.seg is segment``)
    are captured; dead or superseded table entries are skipped. Heads
    are identified by their index in the same deterministic node
    ordering FSPC serialisation uses.
    """
    nodes = _collect_nodes(cache)
    index_of: Dict[int, int] = {id(n): i for i, n in enumerate(nodes)}
    records: List[SegmentRecord] = []
    table = cache.turbo
    if table is not None:
        generation = cache.graph_generation
        for segment in table.segments:
            head = segment.nodes[0]
            if head.seg is not segment:
                continue
            if segment.generation != generation and not revalidate(
                    segment, generation):
                # The graph changed under this segment and its region
                # did not survive — the engine would discard it at next
                # use, and its digest no longer describes what install
                # would compile. Leave it behind.
                continue
            index = index_of.get(id(head))
            if index is None:
                continue
            records.append((index, segment_digest(segment)))
    return SegmentArchive(len(nodes), records)


def install(archive: SegmentArchive, cache: PActionCache) -> Dict[str, int]:
    """Install persisted segments into *cache*; returns counters.

    Each record's chain is recompiled from the live graph and installed
    only when its structural digest matches — so the result is exactly
    what threshold warm-up would eventually have produced, obtained
    immediately. Returns ``{"installed", "stale", "mismatched"}``
    ("stale" = unresolvable/ineligible head or shape mismatch,
    "mismatched" = chain compiled but its digest differs).
    """
    counters = {"installed": 0, "stale": 0, "mismatched": 0}
    table = cache.turbo
    if table is None:
        counters["stale"] = len(archive.records)
        return counters
    nodes = _collect_nodes(cache)
    if archive.node_count != len(nodes):
        # The archive was captured against a differently-shaped graph
        # (e.g. a salvaged p-cache): indices are meaningless.
        counters["stale"] = len(archive.records)
        return counters
    generation = cache.graph_generation
    for head_index, digest in archive.records:
        if not (0 <= head_index < len(nodes)):
            counters["stale"] += 1
            continue
        head = nodes[head_index]
        if not head.can_head or head.seg is not None:
            counters["stale"] += 1
            continue
        segment = compile_segment(head, generation)
        if segment_digest(segment) != digest:
            counters["mismatched"] += 1
            continue
        head.seg = segment
        head.seg_hits = 0
        table.segments.append(segment)
        table.segments_installed += 1
        counters["installed"] += 1
    return counters


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

def write_segments(archive: SegmentArchive, stream: BinaryIO) -> None:
    """Serialise *archive* to *stream* (format described above)."""
    digest = hashlib.sha256()

    def out(chunk: bytes) -> None:
        digest.update(chunk)
        stream.write(chunk)

    header = io.BytesIO()
    header.write(MAGIC)
    header.write(_VERSION_SENTINEL.to_bytes(4, "big"))
    header.write(FORMAT_VERSION.to_bytes(2, "big"))
    header.write(archive.node_count.to_bytes(4, "big"))
    header.write(len(archive.records).to_bytes(4, "big"))
    header_bytes = header.getvalue()
    out(header_bytes)
    out(zlib.crc32(header_bytes).to_bytes(4, "big"))
    for head_index, chain_digest in archive.records:
        payload = head_index.to_bytes(4, "big") + chain_digest
        out(len(payload).to_bytes(4, "big"))
        out(payload)
        out(zlib.crc32(payload).to_bytes(4, "big"))
    stream.write(digest.digest())


def dumps(archive: SegmentArchive) -> bytes:
    """Serialise *archive* to bytes."""
    stream = io.BytesIO()
    write_segments(archive, stream)
    return stream.getvalue()


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

class _Reader:
    """Bounded reads over an in-memory buffer, tracking the offset."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0
        #: Record index attached to errors (-1 = header/structure).
        self.record = -1

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def corrupt(self, message: str) -> SegStoreCorruptError:
        return SegStoreCorruptError(message, offset=self.pos,
                                    record=self.record)

    def read(self, count: int) -> bytes:
        chunk = self.data[self.pos:self.pos + count]
        if len(chunk) != count:
            raise self.corrupt(
                f"truncated: wanted {count} bytes, {len(chunk)} left"
            )
        self.pos += count
        return chunk

    def u16(self) -> int:
        return int.from_bytes(self.read(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self.read(4), "big")


def read_segments(stream_or_bytes: Union[BinaryIO, bytes],
                  strict: bool = True) -> SegmentArchive:
    """Deserialise an archive written by :func:`write_segments`.

    With ``strict=True`` any integrity violation raises
    :class:`~repro.errors.SegStoreCorruptError`. With ``strict=False``
    CRC-valid records are salvaged and damaged ones dropped — always
    safe, because install recompiles and digest-checks every record
    against the live graph anyway.
    """
    if isinstance(stream_or_bytes, (bytes, bytearray)):
        data = bytes(stream_or_bytes)
    else:
        data = stream_or_bytes.read()
    reader = _Reader(data)
    try:
        return _read(reader, strict)
    except SegStoreCorruptError:
        raise
    except _DECODE_ERRORS as exc:
        raise SegStoreCorruptError(
            f"undecodable segment archive: {type(exc).__name__}: {exc}",
            offset=reader.pos, record=reader.record,
        )


def loads(data: bytes, strict: bool = True) -> SegmentArchive:
    """Deserialise an archive from bytes."""
    return read_segments(data, strict=strict)


def _read(reader: _Reader, strict: bool) -> SegmentArchive:
    magic = reader.read(4)
    if magic != MAGIC:
        raise SegStoreCorruptError("not a segment archive", offset=0)
    marker = reader.u32()
    if marker != _VERSION_SENTINEL:
        raise reader.corrupt(f"bad version sentinel 0x{marker:08x}")
    version = reader.u16()
    if version != FORMAT_VERSION:
        raise reader.corrupt(f"unsupported FSSG format version {version}")
    node_count = reader.u32()
    record_count = reader.u32()
    if record_count > _MAX_RECORDS:
        raise reader.corrupt(f"implausible record count {record_count}")
    stored_crc = reader.u32()
    actual_crc = zlib.crc32(reader.data[: reader.pos - 4])
    if stored_crc != actual_crc and strict:
        raise SegStoreCorruptError("header CRC mismatch",
                                   offset=reader.pos - 4, record=-1)

    records: List[SegmentRecord] = []
    framing_lost = False
    for index in range(record_count):
        reader.record = index
        record_start = reader.pos
        try:
            payload_len = reader.u32()
            if payload_len > _MAX_RECORD_BYTES or (
                    payload_len + 4 > reader.remaining()):
                raise reader.corrupt(
                    f"implausible record length {payload_len}"
                )
            payload = reader.read(payload_len)
            stored = reader.u32()
        except SegStoreCorruptError:
            if strict:
                raise
            framing_lost = True
            break
        if zlib.crc32(payload) != stored:
            if strict:
                raise SegStoreCorruptError(
                    "record CRC mismatch", offset=record_start,
                    record=index,
                )
            continue
        if len(payload) != 4 + _DIGEST_BYTES:
            if strict:
                raise SegStoreCorruptError(
                    f"bad record payload size {len(payload)}",
                    offset=record_start, record=index,
                )
            continue
        head_index = int.from_bytes(payload[:4], "big")
        records.append((head_index, payload[4:]))

    reader.record = -1
    if not framing_lost:
        trailer_start = reader.pos
        try:
            stored_digest = reader.read(_DIGEST_BYTES)
        except SegStoreCorruptError:
            if strict:
                raise
            stored_digest = None
        if stored_digest is not None:
            actual = hashlib.sha256(reader.data[:trailer_start]).digest()
            if stored_digest != actual and strict:
                raise SegStoreCorruptError(
                    "whole-file digest mismatch", offset=trailer_start,
                    record=-1,
                )
            if reader.remaining() and strict:
                raise SegStoreCorruptError(
                    f"{reader.remaining()} trailing bytes after the "
                    "whole-file digest", offset=reader.pos, record=-1,
                )
    return SegmentArchive(node_count, records)


def save_segments(archive: SegmentArchive,
                  path: Union[str, "io.PathLike"]) -> None:
    """Write *archive* to *path*."""
    with open(path, "wb") as stream:
        write_segments(archive, stream)


def load_segments(path: Union[str, "io.PathLike"],
                  strict: bool = True) -> SegmentArchive:
    """Read an archive from *path*; see :func:`read_segments`."""
    with open(path, "rb") as stream:
        return read_segments(stream, strict=strict)

"""Chain compilation — flat, replay-optimized segments (``repro.turbo``).

The fast-forward loop in :mod:`repro.memo.engine` is a node-at-a-time
interpreter: every replayed action pays a ``type()`` dispatch, a
``cache.touch``, a handful of per-field statistics increments, a
``chain_log.append`` and an attribute chase — and every configuration
node pays a fresh-list allocation and five bookkeeping stores. This
module compiles a hot region of the recorded graph — after
:data:`DEFAULT_COMPILE_THRESHOLD` traversals of its head — into one
:class:`CompiledSegment`: a straight-line Python function (generated
source, compiled once, replayed thousands of times) plus the metadata
needed to leave the fast path with interpreter-identical state.

What a compiled segment may cover
---------------------------------

The compiler walks the graph from the head while the continuation is
statically known:

* **linear actions** (:class:`~repro.memo.actions.AdvanceNode` /
  ``RetireNode`` / ``RollbackNode``) always have one successor;
* **configuration nodes** are pure replay bookkeeping (log reset, new
  anchor) with one successor — the segment passes straight through and
  the bookkeeping is reconstructed from compile-time metadata;
* **outcome nodes with exactly one edge** become *guarded* calls: the
  world is asked exactly as the interpreter would, and the reply is
  compared against the single recorded edge key. Equal → the successor
  is the compiled continuation. Different → the generated function
  returns a side-exit token and the engine reconstructs the exact
  interpreter state (statistics, chain log, anchor) from the per-guard
  exit table, then falls back to resync — precisely what interpreted
  replay would have done, since within one graph generation a reply
  that differs from the only edge key cannot have an edge.

The walk stops at multi-edge outcome nodes, :class:`EndNode`, pruned
links, a revisited node (the natural loop-closing point — steady-state
loops become one segment replayed per iteration), or the
:data:`MAX_SEGMENT_NODES` cap.

Why replay is faster
--------------------

* consecutive :class:`AdvanceNode` deltas are **fused** into a single
  ``world.advance_cycles`` per outcome-to-outcome gap (legal because
  ``retire``/``rollback`` never read the cycle counter, while the
  cycle-sensitive outcome calls always see a fully advanced clock);
* consecutive :class:`RetireNode` requests are likewise **fused** into
  one pre-built ``Retire`` per gap — ``retire`` only *adds* to the
  queue cursors and statistics, and everything that reads a cursor
  (outcome calls, ``rollback``) is a flush barrier, so the fused call
  leaves exactly the interpreter's world state at every guard;
* ``Retire``/``Rollback`` request objects are pre-built;
* per-node statistics, touches and configuration bookkeeping collapse
  into per-segment constants applied once;
* chain-log entries for loads and stores are static (on a guard hit
  the logged reply *is* the edge key); only control records are
  captured at runtime (:class:`_CtlSlot` patches them into the log
  template on demand);
* the ``max_cycles`` abort check runs once per segment — the replay is
  skipped (interpreted instead) when the segment's total could cross
  the limit, so the interpreter raises at the exact same advance.

Touch semantics under replacement policies
------------------------------------------

A completed segment advances the touch clock by its node count and
defers the per-node ``touch_gen`` writes to
:meth:`SegmentTable.flush_touches`, which replacement policies invoke
(via ``PActionCache.prepare_collection``) before any survival decision.
Collections only ever happen between whole segments, so "all covered
nodes stamped with the segment's final clock" and "covered nodes
stamped with consecutive clocks" fall on the same side of every
survival threshold. Side exits touch their visited prefix eagerly and
exactly (they are rare and lead straight into record mode).

Invalidation
------------

A segment caches node successors and edge tables, so it is only valid
while the graph is unchanged. :class:`~repro.memo.pcache.PActionCache`
keeps a ``graph_generation`` counter, bumped by every structural
mutation (``attach``, guard ``invalidate``, policy ``clear`` /
``rebuild``); a segment whose recorded generation differs is discarded
at its next use and the head re-warms toward recompilation. Replay
never walks stale pointers, and a guard can never miss an edge that
exists: adding an edge bumps the generation first.

Because a valid segment performs exactly the interpreter's world calls
in the same order at the same cycles, and reconstructs the same
statistics, chain log and resync inputs, simulated results are
bit-identical with compilation on or off — asserted for every suite
workload by ``tests/memo/test_turbo.py`` and benchmarked by
``benchmarks/bench_replay_hot_loop.py`` (see docs/performance.md).
Segments are derived state: they are never persisted (FSPC stores only
nodes) and never counted in the modelled cache size.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.memo.actions import (
    AdvanceNode,
    ControlNode,
    LoadIssueNode,
    LoadPollNode,
    Node,
    RetireNode,
    RollbackNode,
    StoreIssueNode,
)
from repro.uarch.interactions import Retire, Rollback

#: Replay traversals of a segment head before it is compiled.
DEFAULT_COMPILE_THRESHOLD = 8

#: Upper bound on nodes covered by one segment (loops close themselves
#: earlier via the revisit rule; this caps pathological straight-line
#: chains so generated functions stay small).
MAX_SEGMENT_NODES = 512

#: Signature of every generated segment function. ``world`` is the
#: live world adapter, ``R`` the pre-built request tuple, ``K`` the
#: non-inlinable key tuple, ``ctl_a`` the control-record collector.
SEG_HEADER = "def _seg(world, R, K, ctl_a):\n"

#: Local alias -> world attribute each generated binding line caches.
#: The values are, by construction, exactly the world methods the
#: interpreted replay loop (:meth:`FastForwardEngine._replay`) calls —
#: the flow lint's codegen checker cross-checks this table against the
#: interpreter source so compiler/interpreter drift is a lint error.
WORLD_BINDINGS = {
    "w_adv": "world.advance_cycles", "w_ret": "world.retire",
    "w_rb": "world.rollback", "w_get": "world.get_control",
    "w_il": "world.issue_load", "w_pl": "world.poll_load",
    "w_st": "world.issue_store",
}

#: Every line shape :func:`compile_segment` can emit, as
#: ``str.format`` templates. Exposed as a module constant so the flow
#: lint can audit the emitter (and tests can inject a mutation to
#: prove the audit bites). Generated code never contains any other
#: statement shape.
SEG_TEMPLATES = {
    "bind": "    {name} = {target}\n",
    "advance": "    w_adv({delta})",
    "retire": "    w_ret(R[{index}])",
    "rollback": "    w_rb(R[{index}])",
    "control_call": "    rec = w_get()",
    "control_log": "    ctl_a(rec)",
    "load_issue": "    r = w_il({ordinal})",
    "load_poll": "    r = w_pl({ordinal})",
    "store_issue": "    r = w_st({ordinal})",
    "guard": "    if {test} != {key}: return ({index}, {ret})",
    "terminal": "    return ({index}, {ret})",
    "epilogue": "    return None\n",
}


@dataclass(frozen=True)
class TurboConfig:
    """Chain-compilation knobs (``--turbo`` / ``--turbo-threshold``)."""

    enabled: bool = True
    threshold: int = DEFAULT_COMPILE_THRESHOLD

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("turbo threshold must be >= 1")

    @staticmethod
    def resolve(value) -> "TurboConfig":
        """Coerce ``None`` / bool / TurboConfig to a TurboConfig."""
        if value is None:
            return TurboConfig()
        if isinstance(value, TurboConfig):
            return value
        return TurboConfig(enabled=bool(value))


#: Process-wide generated-source → code-object cache. Structurally
#: identical chains (the common case when a persistent worker re-runs
#: the same workload, or a persisted cache re-warms) compile to
#: byte-identical source, so the CPython ``compile()`` step — the
#: expensive half of segment compilation — runs once per distinct
#: shape. Only immutable code objects are shared; each segment still
#: ``exec``s into a private namespace, so nothing leaks between runs.
_CODE_CACHE: dict = {}


class _CtlSlot:
    """Placeholder in a log template for a runtime control record."""

    __slots__ = ("i",)

    def __init__(self, i: int):
        self.i = i


#: One guard's side-exit reconstruction record:
#: (node, is_control, actions_incl, visited_nodes, cycles_applied,
#:  instructions_before, configs_before, last_blob_or_None,
#:  log_template). ``actions_incl`` and ``visited_nodes`` count the
#: failing node itself — the interpreter books an outcome before
#: checking its edge table.
ExitMeta = Tuple[Node, bool, int, int, int, int, int,
                 Optional[bytes], Tuple]


class CompiledSegment:
    """One compiled region of the action graph.

    Everything here is derived from the node graph and rebuilt on
    demand; segments are never persisted and never accounted in the
    modelled cache size.
    """

    __slots__ = (
        "fn",           #: generated straight-line replay function
        "source",       #: generated source (capture_source=True only)
        "nodes",        #: tuple of covered nodes, traversal order
        "requests",     #: tuple of pre-built Retire/Rollback requests
        "keys",         #: tuple of non-inlinable expected edge keys
        "n_actions",    #: covered action-node count (excl. configs)
        "n_configs",    #: covered configuration-node count
        "n_ctl",        #: control records captured per full replay
        "cycles",       #: total fused advance delta
        "instructions", #: total retired instruction count
        "last_blob",    #: blob of the last covered config (or None)
        "log_tail",     #: log entries after the last covered config
        "sets_anchor",  #: segment contains an anchor-setting node
        "trailing_delta",  #: advance cycles after the last anchor
        "last_attach",  #: (last covered node, edge key or None)
        "end",          #: successor of the segment at compile time
        "exit_meta",    #: per-guard/terminal ExitMeta tuple
        "guard_keys",   #: expected edge key per guard, walk order
        "has_terminal", #: segment ends in a dynamic multi-edge outcome
        "generation",   #: cache.graph_generation when compiled
        "touched_at",   #: touch-clock value of the latest full replay
    )

    def __init__(self, fn, nodes, requests, keys, n_actions, n_configs,
                 n_ctl, cycles, instructions, last_blob, log_tail,
                 sets_anchor, trailing_delta, last_attach, end,
                 exit_meta, guard_keys, has_terminal, generation,
                 source=None):
        self.fn = fn
        self.source = source
        self.nodes = nodes
        self.requests = requests
        self.keys = keys
        self.n_actions = n_actions
        self.n_configs = n_configs
        self.n_ctl = n_ctl
        self.cycles = cycles
        self.instructions = instructions
        self.last_blob = last_blob
        self.log_tail = log_tail
        self.sets_anchor = sets_anchor
        self.trailing_delta = trailing_delta
        self.last_attach = last_attach
        self.end = end
        self.exit_meta = exit_meta
        self.guard_keys = guard_keys
        self.has_terminal = has_terminal
        self.generation = generation
        self.touched_at = 0

    def __repr__(self) -> str:
        return (f"<CompiledSegment {self.n_actions}+{self.n_configs} "
                f"nodes, +{self.cycles} cycles, "
                f"{len(self.exit_meta)} guards>")


def _literal(value) -> Optional[str]:
    """Source literal for *value* if it can be inlined, else None."""
    if value is None or value is True or value is False:
        return repr(value)
    if type(value) is int or type(value) is str:
        return repr(value)
    if type(value) is tuple:
        parts = [_literal(v) for v in value]
        if any(p is None for p in parts):
            return None
        inner = ", ".join(parts)
        return f"({inner},)" if len(parts) == 1 else f"({inner})"
    return None


def patch_log(template: Tuple, ctl: List) -> List[Tuple[Node, object]]:
    """Materialize a log template, filling control-record slots."""
    return [
        (node, ctl[value.i] if value.__class__ is _CtlSlot else value)
        for node, value in template
    ]


def compile_segment(head: Node, generation: int,
                    capture_source: bool = False) -> CompiledSegment:
    """Compile the statically-known region starting at *head*.

    *head* must be an action node (``can_head``). The walk covers
    linear actions, configurations, and single-edge outcome nodes
    (which become guards); it stops at multi-edge outcomes, end nodes,
    pruned links, revisits, or :data:`MAX_SEGMENT_NODES`.

    *capture_source* keeps the generated source on the segment's
    ``source`` slot (the flow lint's codegen audit reads it; replay
    never needs it, so by default it is dropped after ``compile()``).
    """
    nodes: List[Node] = []
    requests: List[object] = []
    keys: List[object] = []
    guard_keys: List[object] = []
    lines: List[str] = []
    exit_meta: List[ExitMeta] = []
    seen: set = set()  # nodes hash by identity; compile-time only
    used = set()  # world method bindings the generated code needs

    pending = 0          # accumulated advance delta not yet emitted
    applied = 0          # advance cycles emitted so far
    cycles = 0
    instructions = 0
    n_actions = 0
    n_configs = 0
    n_ctl = 0
    last_blob: Optional[bytes] = None
    log_since: List[Tuple[Node, object]] = []
    sets_anchor = False
    trailing = 0
    last_key = None      # edge key that reached the *next* node

    pending_ret: Optional[List[int]] = None  # fused retire field sums

    def flush_retires() -> None:
        nonlocal pending_ret
        if pending_ret is not None:
            used.add("w_ret")
            requests.append(Retire(*pending_ret))
            lines.append(SEG_TEMPLATES["retire"].format(
                index=len(requests) - 1))
            pending_ret = None

    def flush() -> None:
        nonlocal pending, applied
        flush_retires()
        if pending:
            used.add("w_adv")
            lines.append(SEG_TEMPLATES["advance"].format(delta=pending))
            applied += pending
            pending = 0

    def key_expr(key) -> str:
        lit = _literal(key)
        if lit is not None:
            return lit
        keys.append(key)
        return f"K[{len(keys) - 1}]"

    def guard(node: Node, test_expr: str, ret_expr: str, key,
              is_control: bool) -> None:
        # Interpreted replay logs the outcome *before* checking the
        # edge table, so the failing node is part of the exit state;
        # controls hand back the record (the log value, from which the
        # engine recomputes the edge key), loads/stores the raw reply.
        guard_keys.append(key)
        exit_meta.append((
            node, is_control, n_actions + 1, len(nodes) + 1, applied,
            instructions, n_configs, last_blob, tuple(log_since),
        ))
        lines.append(SEG_TEMPLATES["guard"].format(
            test=test_expr, key=key_expr(key),
            index=len(exit_meta) - 1, ret=ret_expr,
        ))

    def outcome_call(kind, node) -> Tuple[str, str]:
        """Emit the world call for an outcome node; return (expr, ret)."""
        if kind is ControlNode:
            used.add("w_get")
            lines.append(SEG_TEMPLATES["control_call"])
            return "rec.outcome_key()", "rec"
        if kind is LoadIssueNode:
            used.add("w_il")
            lines.append(SEG_TEMPLATES["load_issue"].format(
                ordinal=node.ordinal))
        elif kind is LoadPollNode:
            used.add("w_pl")
            lines.append(SEG_TEMPLATES["load_poll"].format(
                ordinal=node.ordinal))
        else:  # StoreIssueNode
            used.add("w_st")
            lines.append(SEG_TEMPLATES["store_issue"].format(
                ordinal=node.ordinal))
        return "r", "r"

    has_terminal = False
    node: Optional[Node] = head
    while (node is not None and len(nodes) < MAX_SEGMENT_NODES
           and node not in seen):
        kind = node.__class__
        if kind is AdvanceNode:
            pending += node.delta
            cycles += node.delta
            trailing += node.delta
        elif kind is RetireNode:
            if pending_ret is None:
                pending_ret = [node.count, node.loads, node.stores,
                               node.controls, node.branches]
            else:
                pending_ret[0] += node.count
                pending_ret[1] += node.loads
                pending_ret[2] += node.stores
                pending_ret[3] += node.controls
                pending_ret[4] += node.branches
            instructions += node.count
            log_since.append((node, None))
            sets_anchor = True
            trailing = 0
        elif kind is RollbackNode:
            # Rollback reads the control cursor retires advance: apply
            # every pending retire before it, exactly as interpreted.
            flush_retires()
            used.add("w_rb")
            requests.append(Rollback(node.control_ordinal,
                                     node.squashed_loads,
                                     node.squashed_stores,
                                     node.squashed_controls))
            lines.append(SEG_TEMPLATES["rollback"].format(
                index=len(requests) - 1))
            log_since.append((node, None))
            sets_anchor = True
            trailing = 0
        elif node.is_config:
            seen.add(node)
            nodes.append(node)
            n_configs += 1
            last_blob = node.blob
            log_since = []
            sets_anchor = True
            trailing = 0
            last_key = None
            node = node.next
            continue
        elif node.is_outcome and len(node.edges) == 1:
            ((key, successor),) = node.edges.items()
            flush()
            test, ret = outcome_call(kind, node)
            is_control = kind is ControlNode
            guard(node, test, ret, key, is_control)
            if is_control:
                used.add("ctl_a")
                lines.append(SEG_TEMPLATES["control_log"])
                log_since.append((node, _CtlSlot(n_ctl)))
                n_ctl += 1
            else:
                log_since.append((node, key))
            seen.add(node)
            nodes.append(node)
            n_actions += 1
            sets_anchor = True
            trailing = 0
            last_key = key
            node = successor
            continue
        elif node.is_outcome:
            # Multi-edge outcome: a dynamic terminal. The compiled
            # code performs the world call and hands the reply back;
            # the engine does the edge lookup itself — exactly the
            # interpreter's outcome processing, with the preceding run
            # compiled instead of dispatched.
            flush()
            _, ret = outcome_call(kind, node)
            exit_meta.append((
                node, kind is ControlNode, n_actions + 1,
                len(nodes) + 1, applied, instructions, n_configs,
                last_blob, tuple(log_since),
            ))
            lines.append(SEG_TEMPLATES["terminal"].format(
                index=len(exit_meta) - 1, ret=ret))
            nodes.append(node)
            n_actions += 1
            has_terminal = True
            node = None
            break
        else:
            break  # EndNode or unknown: stop here
        seen.add(node)
        nodes.append(node)
        n_actions += 1
        last_key = None
        node = node.next
    flush()

    source = SEG_HEADER
    for name in sorted(used & set(WORLD_BINDINGS)):
        source += SEG_TEMPLATES["bind"].format(
            name=name, target=WORLD_BINDINGS[name])
    source += "\n".join(lines) + ("\n" if lines else "")
    source += SEG_TEMPLATES["epilogue"]
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, "<repro.turbo segment>", "exec")
        _CODE_CACHE[source] = code
    namespace: dict = {}
    exec(code, namespace)  # noqa: S102

    return CompiledSegment(
        namespace["_seg"], tuple(nodes), tuple(requests), tuple(keys),
        n_actions, n_configs, n_ctl, cycles, instructions, last_blob,
        tuple(log_since), sets_anchor, trailing,
        (nodes[-1], last_key), node, tuple(exit_meta),
        tuple(guard_keys), has_terminal, generation,
        source=source if capture_source else None,
    )


def segment_digest(segment: CompiledSegment) -> bytes:
    """Structural SHA-256 digest of a compiled segment's covered chain.

    Two segments compiled from structurally identical chains — same
    node kinds, payloads, config blobs, and guarded edge keys, in the
    same order — have equal digests, regardless of which process or
    graph object they were compiled in. This is the identity the
    persistent segment store (:mod:`repro.memo.segstore`) keys on: at
    install time the chain is recompiled from the *live* graph and its
    digest compared against the persisted one, so a stale or corrupt
    record can only ever cause a skipped install, never a wrong replay.

    Both ends derive the digest from a :class:`CompiledSegment`
    produced by :func:`compile_segment`, so the walk rules can never
    drift between save and load.
    """
    h = hashlib.sha256()
    upd = h.update
    nodes = segment.nodes
    count = len(nodes)
    guard_keys = segment.guard_keys
    j = 0
    for i, node in enumerate(nodes):
        kind = node.__class__
        if kind is AdvanceNode:
            upd(b"A")
            upd(node.delta.to_bytes(4, "big"))
        elif kind is RetireNode:
            upd(b"R")
            upd(bytes((node.count, node.loads, node.stores,
                       node.controls, node.branches)))
        elif kind is RollbackNode:
            upd(b"B")
            upd(node.control_ordinal.to_bytes(4, "big"))
            upd(bytes((node.squashed_loads, node.squashed_stores,
                       node.squashed_controls)))
        elif node.is_config:
            upd(b"C")
            upd(len(node.blob).to_bytes(4, "big"))
            upd(node.blob)
        else:  # outcome node: guard (single edge) or trailing terminal
            terminal = segment.has_terminal and i + 1 == count
            upd(b"T" if terminal else b"G")
            upd(kind.__name__.encode("ascii"))
            ordinal = getattr(node, "ordinal", None)
            if ordinal is not None:
                upd(ordinal.to_bytes(4, "big"))
            if not terminal:
                upd(repr(guard_keys[j]).encode("ascii"))
                j += 1
    upd(segment.cycles.to_bytes(8, "big"))
    upd(segment.instructions.to_bytes(8, "big"))
    return h.digest()


def revalidate(segment: CompiledSegment, generation: int) -> bool:
    """Revive *segment* after a graph mutation if its region survived.

    A generation bump says *something* in the graph changed — usually
    an attach far away from this segment. Re-walking the covered nodes
    and comparing every successor link, edge table and guard key
    against what was compiled is O(length) pointer checks; when nothing
    differs the segment is stamped with the current generation and
    reused, skipping the re-warm/recompile cycle entirely.
    """
    nodes = segment.nodes
    guard_keys = segment.guard_keys
    count = len(nodes)
    j = 0
    for i, node in enumerate(nodes):
        if segment.has_terminal and i + 1 == count:
            break  # the terminal's edge table is consulted at runtime
        expected = nodes[i + 1] if i + 1 < count else segment.end
        if node.is_outcome:
            edges = node.edges
            if len(edges) != 1:
                return False
            ((key, successor),) = edges.items()
            if key != guard_keys[j] or successor is not expected:
                return False
            j += 1
        elif node.next is not expected:
            return False
    segment.generation = generation
    return True


class SegmentTable:
    """Per-cache registry of compiled segments (+ turbo statistics).

    Owned by a :class:`~repro.memo.pcache.PActionCache` (its ``turbo``
    attribute); installed by the engine when compilation is enabled.
    The registry exists for :meth:`flush_touches` — segments defer
    per-node ``touch_gen`` writes until a replacement policy is about
    to make survival decisions.
    """

    def __init__(self, threshold: int = DEFAULT_COMPILE_THRESHOLD):
        if threshold < 1:
            raise ValueError("turbo threshold must be >= 1")
        self.threshold = threshold
        self.segments: List[CompiledSegment] = []
        #: Segments ever compiled / full fast-path replays / guard
        #: side exits / stale segments discarded at use (obs mirrors
        #: these as ``turbo.segments_compiled`` etc.).
        self.segments_compiled = 0
        self.segment_replays = 0
        self.side_exits = 0
        self.revalidations = 0
        self.invalidations = 0
        #: Segments installed pre-warmed from a persistent segment
        #: store (:mod:`repro.memo.segstore`) rather than compiled
        #: after threshold traversals.
        self.segments_installed = 0

    def register(self, segment: CompiledSegment) -> CompiledSegment:
        self.segments.append(segment)
        self.segments_compiled += 1
        return segment

    def flush_touches(self, current_generation: int) -> None:
        """Materialize deferred touches onto nodes; drop dead segments.

        Called (via ``PActionCache.prepare_collection``) before a
        replacement policy computes survivals, so ``touch_gen`` is as
        up to date as interpreted replay would have left it. Collection
        order with respect to whole segments is what makes the values
        equivalent: a collection never lands mid-segment, so "all nodes
        stamped with the segment's final clock" and "nodes stamped with
        consecutive clocks" fall on the same side of every threshold.
        """
        live: List[CompiledSegment] = []
        for segment in self.segments:
            stamp = segment.touched_at
            if stamp:
                for node in segment.nodes:
                    if stamp > node.touch_gen:
                        node.touch_gen = stamp
            # A stale-generation segment may yet be revived by
            # revalidate(); it stays live while its head still points
            # at it (the engine clears ``head.seg`` when discarding).
            if segment.nodes[0].seg is segment:
                live.append(segment)
        self.segments = live

    def snapshot(self) -> dict:
        """Sorted-key statistics view (for dumps and tests)."""
        return {
            "invalidations": self.invalidations,
            "revalidations": self.revalidations,
            "segment_replays": self.segment_replays,
            "segments_compiled": self.segments_compiled,
            "segments_installed": self.segments_installed,
            "segments_live": len(self.segments),
            "side_exits": self.side_exits,
            "threshold": self.threshold,
        }

"""P-action cache node types (the recorded "simulator actions").

Paper §4.2: the p-action cache stores a graph of configurations and
action chains. Actions represent every way the μ-architecture simulator
interacts with the outside world — advancing the cycle counter, calling
the cache simulator, returning to direct execution, retiring
instructions — linked in the order the detailed simulator produced
them. Actions whose result can vary (a load's latency, a control
record's outcome) hold an **edge table** mapping each outcome seen so
far to its successor; an outcome not in the table terminates
fast-forwarding (Figure 6's "not yet computed" branches).

Node kinds:

=====================  ====================================================
:class:`ConfigNode`    a compressed iQ snapshot; the entry points of the
                       graph and the resync anchors for fall-back
:class:`AdvanceNode`   advance the cycle counter by a delta
:class:`RetireNode`    retire instructions / advance queue cursors
:class:`RollbackNode`  misprediction rollback of direct execution
:class:`ControlNode`   consume a control record ("return to
                       direct-execution") — outcome-keyed edges
:class:`LoadIssueNode` issue a load to the cache simulator — edges keyed
                       by the returned interval
:class:`LoadPollNode`  poll a load — edges keyed by ready/interval
:class:`StoreIssueNode` issue a store — edges keyed by accept interval
:class:`EndNode`       the program's halt retired; simulation complete
=====================  ====================================================

Byte sizes are a *model* (this is a Python reproduction — the real
objects are Python objects): configurations cost their paper-encoding
length and actions a fixed overhead plus a per-extra-edge cost, so
Table 5 and Figure 7 accounting is comparable with the paper's.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Modelled bytes for one action node (first edge included).
ACTION_BYTES = 16
#: Modelled bytes for each additional outcome edge.
EDGE_BYTES = 8


class Node:
    """Base class: every node knows its successor(s) and GC metadata."""

    __slots__ = ("next", "touch_gen", "generation", "seg", "seg_hits")

    def __init__(self) -> None:
        self.next: Optional[Node] = None
        #: GC clock value when last traversed (for copying collection).
        self.touch_gen = 0
        #: 0 = young, 1 = old (for the generational collector).
        self.generation = 0
        #: Compiled replay segment headed at this node (repro.memo.compile);
        #: derived state — never persisted, rebuilt on demand.
        self.seg = None
        #: Replay traversals of this node as a segment head, counted up
        #: to the compile threshold.
        self.seg_hits = 0

    is_config = False
    is_outcome = False
    #: True for single-successor action nodes whose advance deltas the
    #: chain compiler may fuse (replay neither calls a cycle-sensitive
    #: world method nor resets the chain log).
    is_linear = False
    #: True for action nodes that may head a compiled replay segment
    #: (every recordable action; configurations and end nodes are
    #: handled by the interpreter and passed through / terminate).
    can_head = False

    def size_bytes(self) -> int:
        return ACTION_BYTES


class ConfigNode(Node):
    """A memoized μ-architecture configuration."""

    __slots__ = ("blob", "size")
    is_config = True

    def __init__(self, blob: bytes, size: int):
        super().__init__()
        self.blob = blob
        self.size = size

    def size_bytes(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"<ConfigNode {len(self.blob)}B raw>"


class AdvanceNode(Node):
    """Advance the simulation cycle counter by *delta* cycles."""

    __slots__ = ("delta",)
    is_linear = True
    can_head = True

    def __init__(self, delta: int):
        super().__init__()
        self.delta = delta

    def __repr__(self) -> str:
        return f"<Advance +{self.delta}>"


class RetireNode(Node):
    """Retire instructions; advances statistics and queue cursors."""

    __slots__ = ("count", "loads", "stores", "controls", "branches")
    is_linear = True
    can_head = True

    def __init__(self, count: int, loads: int, stores: int, controls: int,
                 branches: int):
        super().__init__()
        self.count = count
        self.loads = loads
        self.stores = stores
        self.controls = controls
        self.branches = branches

    def __repr__(self) -> str:
        return f"<Retire {self.count}>"


class RollbackNode(Node):
    """Roll direct execution back past a mispredicted branch."""

    __slots__ = ("control_ordinal", "squashed_loads", "squashed_stores",
                 "squashed_controls")
    is_linear = True
    can_head = True

    def __init__(self, control_ordinal: int, squashed_loads: int,
                 squashed_stores: int, squashed_controls: int):
        super().__init__()
        self.control_ordinal = control_ordinal
        self.squashed_loads = squashed_loads
        self.squashed_stores = squashed_stores
        self.squashed_controls = squashed_controls

    def __repr__(self) -> str:
        return f"<Rollback ord={self.control_ordinal}>"


class OutcomeNode(Node):
    """Base for nodes whose successor depends on the world's reply.

    ``next`` is unused; successors live in ``edges``.
    """

    __slots__ = ("edges",)
    is_outcome = True
    can_head = True

    def __init__(self) -> None:
        super().__init__()
        self.edges: Dict[object, Node] = {}

    def size_bytes(self) -> int:
        return ACTION_BYTES + EDGE_BYTES * max(0, len(self.edges) - 1)


class ControlNode(OutcomeNode):
    """Consume the next control record (return to direct execution)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"<Control {len(self.edges)} outcomes>"


class LoadIssueNode(OutcomeNode):
    """Issue the load with iQ ordinal *ordinal* to the cache simulator."""

    __slots__ = ("ordinal",)

    def __init__(self, ordinal: int):
        super().__init__()
        self.ordinal = ordinal

    def __repr__(self) -> str:
        return f"<IssueLoad #{self.ordinal} {len(self.edges)} outcomes>"


class LoadPollNode(OutcomeNode):
    """Poll a previously issued load."""

    __slots__ = ("ordinal",)

    def __init__(self, ordinal: int):
        super().__init__()
        self.ordinal = ordinal

    def __repr__(self) -> str:
        return f"<PollLoad #{self.ordinal} {len(self.edges)} outcomes>"


class StoreIssueNode(OutcomeNode):
    """Issue the store with iQ ordinal *ordinal* to the cache simulator."""

    __slots__ = ("ordinal",)

    def __init__(self, ordinal: int):
        super().__init__()
        self.ordinal = ordinal

    def __repr__(self) -> str:
        return f"<IssueStore #{self.ordinal} {len(self.edges)} outcomes>"


class EndNode(Node):
    """Simulation finished; *delta* covers the trailing drain cycles."""

    __slots__ = ("delta",)

    def __init__(self, delta: int):
        super().__init__()
        self.delta = delta

    def __repr__(self) -> str:
        return f"<End +{self.delta}>"

"""Binary encoding and decoding of instructions.

Instructions are fixed 32-bit words. The top 8 bits hold the opcode; the
remaining 24 bits are laid out per :class:`~repro.isa.opcodes.Format`:

``ALU`` / ``LOAD`` / ``STORE`` / ``JMPL`` and the FP load/store forms::

    [31:24] opcode  [23:19] rd  [18:14] rs1  [13] i  [12:0] imm13 | rs2

``SETHI``::

    [31:24] opcode  [23:19] rd  [18:0] imm19   (rd = imm19 << 13)

``BRANCH`` / ``CALL``::

    [31:24] opcode  [23:0] disp24   (signed word displacement from pc)

FP register forms put ``fd`` in the rd slot and ``fs1``/``fs2`` in the
rs1/rs2 slots. The encoding is deliberately simple — it exists so that
programs are genuine binary images (the executable's text segment is a
``bytes`` object) and so the decoder, not the assembler, is the source of
truth for what the pipeline executes.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode, ZERO_EXT_IMM_OPS, opcode_info
from repro.isa.registers import LINK_REG

IMM13_MIN = -(1 << 12)
IMM13_MAX = (1 << 12) - 1
IMM13U_MAX = (1 << 13) - 1
IMM19_MAX = (1 << 19) - 1
DISP24_MIN = -(1 << 23)
DISP24_MAX = (1 << 23) - 1

_MASK13 = (1 << 13) - 1
_MASK19 = (1 << 19) - 1
_MASK24 = (1 << 24) - 1


def _sext(value: int, bits: int) -> int:
    """Sign-extend the low *bits* of *value*."""
    sign = 1 << (bits - 1)
    value &= (1 << bits) - 1
    return (value ^ sign) - sign


def _check_reg(value: int, what: str) -> int:
    if value is None or not 0 <= value < 32:
        raise EncodingError(f"{what} out of range: {value!r}")
    return value


def _encode_op2(instr: Instruction, word: int) -> int:
    """Encode the i-bit plus imm13 or rs2 into the low 14 bits."""
    if instr.imm is not None:
        if instr.opcode in ZERO_EXT_IMM_OPS:
            if not 0 <= instr.imm <= IMM13U_MAX:
                raise EncodingError(f"unsigned imm13 out of range: {instr.imm}")
        elif not IMM13_MIN <= instr.imm <= IMM13_MAX:
            raise EncodingError(f"imm13 out of range: {instr.imm}")
        return word | (1 << 13) | (instr.imm & _MASK13)
    rs2 = instr.rs2 if instr.rs2 is not None else instr.fs2
    return word | _check_reg(rs2 if rs2 is not None else 0, "rs2")


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction into its 32-bit word."""
    info = opcode_info(instr.opcode)
    word = int(instr.opcode) << 24
    fmt = info.fmt

    if fmt in (Format.ALU, Format.LOAD, Format.JMPL):
        word |= _check_reg(instr.rd if instr.rd is not None else 0, "rd") << 19
        word |= _check_reg(instr.rs1 if instr.rs1 is not None else 0, "rs1") << 14
        word = _encode_op2(instr, word)
    elif fmt is Format.STORE:
        word |= _check_reg(instr.rd if instr.rd is not None else 0, "rd") << 19
        word |= _check_reg(instr.rs1 if instr.rs1 is not None else 0, "rs1") << 14
        word = _encode_op2(instr, word)
    elif fmt is Format.FLOAD:
        word |= _check_reg(instr.fd, "fd") << 19
        word |= _check_reg(instr.rs1 if instr.rs1 is not None else 0, "rs1") << 14
        word = _encode_op2(instr, word)
    elif fmt is Format.FSTORE:
        word |= _check_reg(instr.fd, "fd") << 19
        word |= _check_reg(instr.rs1 if instr.rs1 is not None else 0, "rs1") << 14
        word = _encode_op2(instr, word)
    elif fmt is Format.SETHI:
        if instr.imm is None or not 0 <= instr.imm <= IMM19_MAX:
            raise EncodingError(f"sethi imm19 out of range: {instr.imm!r}")
        word |= _check_reg(instr.rd, "rd") << 19
        word |= instr.imm & _MASK19
    elif fmt in (Format.BRANCH, Format.CALL):
        if instr.target is None:
            raise EncodingError(f"{info.mnemonic} requires a resolved target")
        disp = (instr.target - instr.address) >> 2
        if not DISP24_MIN <= disp <= DISP24_MAX:
            raise EncodingError(f"branch displacement out of range: {disp}")
        word |= disp & _MASK24
    elif fmt is Format.FPOP2:
        word |= _check_reg(instr.fd, "fd") << 19
        word |= _check_reg(instr.fs1, "fs1") << 14
        word |= _check_reg(instr.fs2, "fs2")
    elif fmt is Format.FPOP1:
        word |= _check_reg(instr.fd, "fd") << 19
        word |= _check_reg(instr.fs1, "fs1") << 14
    elif fmt is Format.FCMP:
        word |= _check_reg(instr.fs1, "fs1") << 14
        word |= _check_reg(instr.fs2, "fs2")
    elif fmt is Format.I2F:
        word |= _check_reg(instr.fd, "fd") << 19
        word |= _check_reg(instr.rs1, "rs1") << 14
    elif fmt is Format.F2I:
        word |= _check_reg(instr.rd, "rd") << 19
        word |= _check_reg(instr.fs1, "fs1") << 14
    elif fmt is Format.OUT:
        word |= _check_reg(instr.rs1, "rs1") << 14
    elif fmt is Format.NONE:
        pass
    else:  # pragma: no cover - all formats handled above
        raise EncodingError(f"unhandled format: {fmt!r}")
    return word


def decode(word: int, address: int) -> Instruction:
    """Decode a 32-bit word fetched from *address* into an Instruction."""
    opcode_value = (word >> 24) & 0xFF
    try:
        opcode = Opcode(opcode_value)
    except ValueError:
        raise EncodingError(
            f"illegal opcode 0x{opcode_value:02x} at 0x{address:08x}"
        ) from None
    info = opcode_info(opcode)
    fmt = info.fmt

    rd = (word >> 19) & 0x1F
    rs1 = (word >> 14) & 0x1F
    has_imm = bool(word & (1 << 13))
    if opcode in ZERO_EXT_IMM_OPS:
        imm13 = word & _MASK13
    else:
        imm13 = _sext(word, 13)
    rs2 = word & 0x1F

    if fmt in (Format.ALU, Format.LOAD, Format.JMPL):
        if has_imm:
            return Instruction(address, opcode, rs1=rs1, rd=rd, imm=imm13)
        return Instruction(address, opcode, rs1=rs1, rs2=rs2, rd=rd)
    if fmt is Format.STORE:
        if has_imm:
            return Instruction(address, opcode, rs1=rs1, rd=rd, imm=imm13)
        return Instruction(address, opcode, rs1=rs1, rs2=rs2, rd=rd)
    if fmt is Format.FLOAD:
        if has_imm:
            return Instruction(address, opcode, rs1=rs1, fd=rd, imm=imm13)
        return Instruction(address, opcode, rs1=rs1, rs2=rs2, fd=rd)
    if fmt is Format.FSTORE:
        if has_imm:
            return Instruction(address, opcode, rs1=rs1, fd=rd, imm=imm13)
        return Instruction(address, opcode, rs1=rs1, rs2=rs2, fd=rd)
    if fmt is Format.SETHI:
        return Instruction(address, opcode, rd=rd, imm=word & _MASK19)
    if fmt in (Format.BRANCH, Format.CALL):
        disp = _sext(word, 24)
        target = (address + (disp << 2)) & 0xFFFFFFFF
        if fmt is Format.CALL:
            return Instruction(address, opcode, rd=LINK_REG, target=target)
        return Instruction(address, opcode, target=target)
    if fmt is Format.FPOP2:
        return Instruction(address, opcode, fd=rd, fs1=rs1, fs2=rs2)
    if fmt is Format.FPOP1:
        return Instruction(address, opcode, fd=rd, fs1=rs1)
    if fmt is Format.FCMP:
        return Instruction(address, opcode, fs1=rs1, fs2=rs2)
    if fmt is Format.I2F:
        return Instruction(address, opcode, rs1=rs1, fd=rd)
    if fmt is Format.F2I:
        return Instruction(address, opcode, fs1=rs1, rd=rd)
    if fmt is Format.OUT:
        return Instruction(address, opcode, rs1=rs1)
    if fmt is Format.NONE:
        return Instruction(address, opcode)
    raise EncodingError(f"unhandled format: {fmt!r}")  # pragma: no cover

"""Two-pass assembler for the toy SPARC-like ISA.

The assembler turns assembly text into an :class:`Executable`. The
dialect follows SPARC conventions:

* comments start with ``!`` or ``#`` and run to end of line;
* labels end with ``:`` and may share a line with an instruction;
* sections are selected with ``.text`` / ``.data``;
* data directives: ``.word``, ``.half``, ``.byte``, ``.float`` (IEEE
  binary32), ``.double`` (binary64), ``.space N``, ``.align N``,
  ``.asciz``/``.ascii``, and ``.equ NAME, value`` for constants;
* memory operands are written ``[%base + %index]``, ``[%base + imm]``,
  ``[%base - imm]``, or ``[%base]``;
* ``%hi(expr)`` / ``%lo(expr)`` extract the upper 19 / lower 13 bits of
  a value (matching ``sethi``'s 19-bit immediate).

Pseudo-instructions expand to real ones:

==================  =====================================================
``mov op2, %rd``    ``or %g0, op2, %rd`` (or ``add``/``set`` as needed)
``set val, %rd``    ``sethi %hi(val), %rd`` + ``or %rd, %lo(val), %rd``
``clr %rd``         ``or %g0, %g0, %rd``
``cmp %rs, op2``    ``subcc %rs, op2, %g0``
``tst %rs``         ``orcc %rs, %g0, %g0``
``inc/dec %rd [,n]``  ``add``/``sub %rd, n, %rd``
``neg %rs, %rd``    ``sub %g0, %rs, %rd``
``b label``         ``ba label``
``ret`` / ``retl``  ``jmpl [%ra], %g0``
==================  =====================================================

The entry point is the ``main`` symbol if present, else ``_start``,
else the start of the text segment.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    Format,
    MNEMONIC_TO_OPCODE,
    Opcode,
    opcode_info,
)
from repro.isa.program import DATA_BASE, TEXT_BASE, Executable
from repro.isa.registers import (
    INT_REG_NAMES,
    LINK_REG,
    ZERO_REG,
    parse_fp_reg,
    parse_int_reg,
)

_COMMENT_RE = re.compile(r"[!#].*$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_HI_LO_RE = re.compile(r"^%(hi|lo)\((.+)\)$")

#: Operand parsed from source: ('reg', n) / ('freg', n) / ('imm', expr
#: string) / ('mem', base, index_or_None, offset_expr_or_None).
Operand = Tuple


@dataclass
class _Statement:
    """One instruction or directive with its source position."""

    line: int
    mnemonic: str
    operands: List[str]
    address: int = 0


@dataclass
class _Section:
    """Accumulates one output segment during assembly."""

    base: int
    chunks: bytearray = field(default_factory=bytearray)

    @property
    def position(self) -> int:
        return self.base + len(self.chunks)


class Assembler:
    """Two-pass assembler producing :class:`Executable` images."""

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source: str, name: str = "<asm>") -> Executable:
        """Assemble *source* and return the executable image."""
        statements = self._parse(source, name)
        symbols, text_stmts, data_directives, bss_size = self._layout(
            statements, name
        )
        text = self._emit_text(text_stmts, symbols, name)
        data = self._emit_data(data_directives, symbols, name)
        entry = symbols.get("main", symbols.get("_start", self.text_base))
        return Executable(
            text=bytes(text),
            data=bytes(data),
            bss_size=bss_size,
            text_base=self.text_base,
            data_base=self.data_base,
            entry=entry,
            symbols=symbols,
            source_name=name,
        )

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    def _parse(self, source: str, name: str) -> List[Tuple[int, str, str]]:
        """Split source into (line_number, label_or_None, statement) items.

        Returns a flat list of ``(line, kind, payload)`` tuples where kind
        is ``'label'`` or ``'stmt'``.
        """
        items: List[Tuple[int, str, str]] = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _COMMENT_RE.sub("", raw).strip()
            while line:
                match = _LABEL_RE.match(line)
                if match and not line.startswith("."):
                    items.append((lineno, "label", match.group(1)))
                    line = match.group(2).strip()
                    continue
                items.append((lineno, "stmt", line))
                break
        return items

    def _split_operands(self, text: str) -> List[str]:
        """Split an operand list on commas that are not inside brackets."""
        operands: List[str] = []
        depth = 0
        current = []
        for char in text:
            if char in "[(":
                depth += 1
            elif char in "])":
                depth -= 1
            if char == "," and depth == 0:
                operands.append("".join(current).strip())
                current = []
            else:
                current.append(char)
        tail = "".join(current).strip()
        if tail:
            operands.append(tail)
        return operands

    # ------------------------------------------------------------------
    # Pass 1: layout
    # ------------------------------------------------------------------

    def _layout(
        self, items: List[Tuple[int, str, str]], name: str
    ) -> Tuple[Dict[str, int], List[_Statement], List[_Statement], int]:
        symbols: Dict[str, int] = {}
        text_stmts: List[_Statement] = []
        data_stmts: List[_Statement] = []
        section = "text"
        text_pos = self.text_base
        data_pos = self.data_base

        def position() -> int:
            return text_pos if section == "text" else data_pos

        for lineno, kind, payload in items:
            if kind == "label":
                if payload in symbols:
                    raise AssemblerError(
                        f"duplicate label {payload!r}", lineno, name
                    )
                symbols[payload] = position()
                continue
            parts = payload.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            operands = self._split_operands(operand_text)
            stmt = _Statement(lineno, mnemonic, operands)

            if mnemonic == ".text":
                section = "text"
                continue
            if mnemonic == ".data":
                section = "data"
                continue
            if mnemonic == ".equ":
                if len(operands) != 2:
                    raise AssemblerError(".equ needs NAME, value", lineno, name)
                symbols[operands[0]] = self._eval(
                    operands[1], symbols, lineno, name
                )
                continue
            if mnemonic == ".global":
                continue

            if section == "text":
                if mnemonic.startswith("."):
                    raise AssemblerError(
                        f"directive {mnemonic} not allowed in .text",
                        lineno,
                        name,
                    )
                stmt.address = text_pos
                text_pos += 4 * self._instruction_count(stmt, name)
                text_stmts.append(stmt)
            else:
                stmt.address = data_pos
                data_pos += self._data_size(stmt, data_pos, name)
                data_stmts.append(stmt)

        bss_size = sum(
            self._data_size(s, s.address, name)
            for s in data_stmts
            if s.mnemonic == ".space"
        )
        # BSS (.space) is appended with the rest of the data image as
        # zero bytes, so the executable's bss_size stays 0 and data holds
        # everything — simpler, and identical from the program's view.
        return symbols, text_stmts, data_stmts, 0

    def _instruction_count(self, stmt: _Statement, name: str) -> int:
        """Number of machine instructions a statement expands to."""
        if stmt.mnemonic == "set":
            if len(stmt.operands) != 2:
                raise AssemblerError("set needs value, %rd", stmt.line, name)
            literal = self._try_literal(stmt.operands[0])
            if literal is not None and -4096 <= literal <= 4095:
                return 1
            return 2
        if stmt.mnemonic == "mov":
            literal = self._try_literal(stmt.operands[0]) if stmt.operands else None
            if literal is not None and not -4096 <= literal <= 8191:
                return 2  # expands through `set`
            return 1
        return 1

    def _data_size(self, stmt: _Statement, position: int, name: str) -> int:
        sizes = {
            ".word": 4,
            ".half": 2,
            ".byte": 1,
            ".float": 4,
            ".double": 8,
        }
        mnemonic = stmt.mnemonic
        if mnemonic in sizes:
            return sizes[mnemonic] * max(len(stmt.operands), 1)
        if mnemonic == ".space":
            return self._eval(stmt.operands[0], {}, stmt.line, name)
        if mnemonic == ".align":
            alignment = self._eval(stmt.operands[0], {}, stmt.line, name)
            remainder = position % alignment
            return (alignment - remainder) % alignment
        if mnemonic in (".ascii", ".asciz"):
            literal = self._string_literal(stmt.operands[0], stmt.line, name)
            return len(literal) + (1 if mnemonic == ".asciz" else 0)
        raise AssemblerError(f"unknown directive {mnemonic}", stmt.line, name)

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def _try_literal(self, text: str) -> Optional[int]:
        """Parse a plain integer literal, or None if it is not one."""
        text = text.strip()
        try:
            return int(text, 0)
        except ValueError:
            return None

    def _eval(
        self,
        expr: str,
        symbols: Dict[str, int],
        line: int,
        name: str,
    ) -> int:
        """Evaluate an operand expression to an integer.

        Supports integer literals, symbols, ``%hi(...)``/``%lo(...)``,
        and ``+``/``-`` chains of those.
        """
        expr = expr.strip()
        match = _HI_LO_RE.match(expr)
        if match:
            inner = self._eval(match.group(2), symbols, line, name)
            if match.group(1) == "hi":
                return (inner >> 13) & 0x7FFFF
            return inner & 0x1FFF
        tokens = re.split(r"([+-])", expr)
        total = 0
        sign = 1
        expect_term = True
        for token in tokens:
            token = token.strip()
            if not token:
                continue
            if token == "+":
                sign = sign if expect_term else 1
                expect_term = True
                continue
            if token == "-":
                sign = -sign if expect_term else -1
                expect_term = True
                continue
            total += sign * self._term(token, symbols, line, name)
            sign = 1
            expect_term = False
        return total

    def _term(
        self, token: str, symbols: Dict[str, int], line: int, name: str
    ) -> int:
        literal = self._try_literal(token)
        if literal is not None:
            return literal
        if token in symbols:
            return symbols[token]
        raise AssemblerError(f"undefined symbol {token!r}", line, name)

    def _string_literal(self, text: str, line: int, name: str) -> bytes:
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblerError("expected string literal", line, name)
        body = text[1:-1]
        body = (
            body.replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\\0", "\0")
            .replace('\\"', '"')
        )
        return body.encode("latin-1")

    # ------------------------------------------------------------------
    # Operand parsing (pass 2)
    # ------------------------------------------------------------------

    def _is_int_reg(self, text: str) -> bool:
        return text.startswith("%") and text[1:].lower() in INT_REG_NAMES

    def _is_fp_reg(self, text: str) -> bool:
        return bool(re.fullmatch(r"%[fF]\d+", text))

    def _parse_mem(
        self,
        text: str,
        symbols: Dict[str, int],
        line: int,
        name: str,
    ) -> Tuple[int, Optional[int], Optional[int]]:
        """Parse ``[%base ± offset]`` into (rs1, rs2, imm)."""
        if not (text.startswith("[") and text.endswith("]")):
            raise AssemblerError(f"expected memory operand, got {text!r}", line, name)
        inner = text[1:-1].strip()
        match = re.match(r"^(%\w+)\s*(?:([+-])\s*(.+))?$", inner)
        if not match or not self._is_int_reg(match.group(1)):
            raise AssemblerError(f"bad memory operand {text!r}", line, name)
        base = parse_int_reg(match.group(1))
        if match.group(2) is None:
            return base, None, 0
        rest = match.group(3).strip()
        sign = -1 if match.group(2) == "-" else 1
        if self._is_int_reg(rest):
            if sign < 0:
                raise AssemblerError(
                    "register index cannot be subtracted", line, name
                )
            return base, parse_int_reg(rest), None
        value = sign * self._eval(rest, symbols, line, name)
        return base, None, value

    # ------------------------------------------------------------------
    # Pass 2: text emission
    # ------------------------------------------------------------------

    def _emit_text(
        self,
        statements: List[_Statement],
        symbols: Dict[str, int],
        name: str,
    ) -> bytearray:
        out = bytearray()
        for stmt in statements:
            for instr in self._expand(stmt, symbols, name):
                try:
                    word = encode(instr)
                except Exception as exc:
                    raise AssemblerError(str(exc), stmt.line, name) from exc
                out += word.to_bytes(4, "big")
        return out

    def _expand(
        self,
        stmt: _Statement,
        symbols: Dict[str, int],
        name: str,
    ) -> List[Instruction]:
        """Expand one statement into machine instructions."""
        mnemonic = stmt.mnemonic
        handler = _PSEUDO_HANDLERS.get(mnemonic)
        if handler is not None:
            return handler(self, stmt, symbols, name)
        opcode = MNEMONIC_TO_OPCODE.get(mnemonic)
        if opcode is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", stmt.line, name)
        return [self._encode_native(opcode, stmt, symbols, name)]

    def _operand_imm_or_reg(
        self,
        text: str,
        symbols: Dict[str, int],
        line: int,
        name: str,
    ) -> Tuple[Optional[int], Optional[int]]:
        """Return (rs2, imm) for a reg-or-imm operand."""
        if self._is_int_reg(text):
            return parse_int_reg(text), None
        return None, self._eval(text, symbols, line, name)

    def _encode_native(
        self,
        opcode: Opcode,
        stmt: _Statement,
        symbols: Dict[str, int],
        name: str,
    ) -> Instruction:
        info = opcode_info(opcode)
        ops = stmt.operands
        line = stmt.line
        address = stmt.address

        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    f"{info.mnemonic} expects {count} operands, got {len(ops)}",
                    line,
                    name,
                )

        fmt = info.fmt
        if fmt is Format.ALU:
            need(3)
            rs1 = parse_int_reg(ops[0])
            rs2, imm = self._operand_imm_or_reg(ops[1], symbols, line, name)
            return Instruction(
                address, opcode, rs1=rs1, rs2=rs2, rd=parse_int_reg(ops[2]), imm=imm
            )
        if fmt is Format.SETHI:
            need(2)
            return Instruction(
                address,
                opcode,
                rd=parse_int_reg(ops[1]),
                imm=self._eval(ops[0], symbols, line, name) & 0x7FFFF,
            )
        if fmt in (Format.LOAD, Format.FLOAD):
            need(2)
            rs1, rs2, imm = self._parse_mem(ops[0], symbols, line, name)
            if fmt is Format.LOAD:
                return Instruction(
                    address, opcode, rs1=rs1, rs2=rs2, rd=parse_int_reg(ops[1]), imm=imm
                )
            return Instruction(
                address, opcode, rs1=rs1, rs2=rs2, fd=parse_fp_reg(ops[1]), imm=imm
            )
        if fmt in (Format.STORE, Format.FSTORE):
            need(2)
            rs1, rs2, imm = self._parse_mem(ops[1], symbols, line, name)
            if fmt is Format.STORE:
                return Instruction(
                    address, opcode, rs1=rs1, rs2=rs2, rd=parse_int_reg(ops[0]), imm=imm
                )
            return Instruction(
                address, opcode, rs1=rs1, rs2=rs2, fd=parse_fp_reg(ops[0]), imm=imm
            )
        if fmt is Format.FPOP2:
            need(3)
            return Instruction(
                address,
                opcode,
                fs1=parse_fp_reg(ops[0]),
                fs2=parse_fp_reg(ops[1]),
                fd=parse_fp_reg(ops[2]),
            )
        if fmt is Format.FPOP1:
            need(2)
            return Instruction(
                address, opcode, fs1=parse_fp_reg(ops[0]), fd=parse_fp_reg(ops[1])
            )
        if fmt is Format.FCMP:
            need(2)
            return Instruction(
                address, opcode, fs1=parse_fp_reg(ops[0]), fs2=parse_fp_reg(ops[1])
            )
        if fmt in (Format.BRANCH, Format.CALL):
            need(1)
            target = self._eval(ops[0], symbols, line, name)
            rd = LINK_REG if fmt is Format.CALL else None
            return Instruction(address, opcode, rd=rd, target=target)
        if fmt is Format.JMPL:
            need(2)
            rs1, rs2, imm = self._parse_mem(ops[0], symbols, line, name)
            return Instruction(
                address, opcode, rs1=rs1, rs2=rs2, rd=parse_int_reg(ops[1]), imm=imm
            )
        if fmt is Format.I2F:
            need(2)
            return Instruction(
                address, opcode, rs1=parse_int_reg(ops[0]), fd=parse_fp_reg(ops[1])
            )
        if fmt is Format.F2I:
            need(2)
            return Instruction(
                address, opcode, fs1=parse_fp_reg(ops[0]), rd=parse_int_reg(ops[1])
            )
        if fmt is Format.OUT:
            need(1)
            return Instruction(address, opcode, rs1=parse_int_reg(ops[0]))
        if fmt is Format.NONE:
            need(0)
            return Instruction(address, opcode)
        raise AssemblerError(f"unhandled format {fmt!r}", line, name)

    # -- pseudo-instruction expansions ---------------------------------

    def _pseudo_set(
        self, stmt: _Statement, symbols: Dict[str, int], name: str
    ) -> List[Instruction]:
        if len(stmt.operands) != 2:
            raise AssemblerError("set needs value, %rd", stmt.line, name)
        value = self._eval(stmt.operands[0], symbols, stmt.line, name) & 0xFFFFFFFF
        rd = parse_int_reg(stmt.operands[1])
        if self._instruction_count(stmt, name) == 1:
            signed = value - 0x100000000 if value >= 0x80000000 else value
            return [
                Instruction(stmt.address, Opcode.ADD, rs1=ZERO_REG, rd=rd, imm=signed)
            ]
        return [
            Instruction(stmt.address, Opcode.SETHI, rd=rd, imm=(value >> 13) & 0x7FFFF),
            Instruction(
                stmt.address + 4, Opcode.OR, rs1=rd, rd=rd, imm=value & 0x1FFF
            ),
        ]

    def _pseudo_mov(
        self, stmt: _Statement, symbols: Dict[str, int], name: str
    ) -> List[Instruction]:
        if len(stmt.operands) != 2:
            raise AssemblerError("mov needs src, %rd", stmt.line, name)
        src, dst = stmt.operands
        rd = parse_int_reg(dst)
        if self._is_int_reg(src):
            return [
                Instruction(
                    stmt.address, Opcode.OR, rs1=ZERO_REG, rs2=parse_int_reg(src), rd=rd
                )
            ]
        value = self._eval(src, symbols, stmt.line, name)
        if -4096 <= value <= 4095:
            return [
                Instruction(stmt.address, Opcode.ADD, rs1=ZERO_REG, rd=rd, imm=value)
            ]
        if 0 <= value <= 8191:
            return [
                Instruction(stmt.address, Opcode.OR, rs1=ZERO_REG, rd=rd, imm=value)
            ]
        set_stmt = _Statement(stmt.line, "set", [src, dst], stmt.address)
        return self._pseudo_set(set_stmt, symbols, name)

    def _pseudo_simple(
        self, stmt: _Statement, symbols: Dict[str, int], name: str
    ) -> List[Instruction]:
        mnemonic = stmt.mnemonic
        ops = stmt.operands
        line, address = stmt.line, stmt.address
        if mnemonic == "clr":
            return [
                Instruction(
                    address, Opcode.OR, rs1=ZERO_REG, rs2=ZERO_REG,
                    rd=parse_int_reg(ops[0]),
                )
            ]
        if mnemonic == "cmp":
            rs2, imm = self._operand_imm_or_reg(ops[1], symbols, line, name)
            return [
                Instruction(
                    address, Opcode.SUBCC, rs1=parse_int_reg(ops[0]),
                    rs2=rs2, rd=ZERO_REG, imm=imm,
                )
            ]
        if mnemonic == "tst":
            return [
                Instruction(
                    address, Opcode.ORCC, rs1=parse_int_reg(ops[0]),
                    rs2=ZERO_REG, rd=ZERO_REG,
                )
            ]
        if mnemonic in ("inc", "dec"):
            amount = (
                self._eval(ops[1], symbols, line, name) if len(ops) > 1 else 1
            )
            opcode = Opcode.ADD if mnemonic == "inc" else Opcode.SUB
            reg = parse_int_reg(ops[0])
            return [Instruction(address, opcode, rs1=reg, rd=reg, imm=amount)]
        if mnemonic == "neg":
            src = parse_int_reg(ops[0])
            dst = parse_int_reg(ops[1]) if len(ops) > 1 else src
            return [
                Instruction(address, Opcode.SUB, rs1=ZERO_REG, rs2=src, rd=dst)
            ]
        if mnemonic == "b":
            target = self._eval(ops[0], symbols, line, name)
            return [Instruction(address, Opcode.BA, target=target)]
        if mnemonic in ("ret", "retl"):
            return [
                Instruction(address, Opcode.JMPL, rs1=LINK_REG, rd=ZERO_REG, imm=0)
            ]
        raise AssemblerError(f"unknown pseudo {mnemonic!r}", line, name)

    # ------------------------------------------------------------------
    # Pass 2: data emission
    # ------------------------------------------------------------------

    def _emit_data(
        self,
        statements: List[_Statement],
        symbols: Dict[str, int],
        name: str,
    ) -> bytearray:
        out = bytearray()
        for stmt in statements:
            position = self.data_base + len(out)
            if position != stmt.address:
                raise AssemblerError(
                    "internal layout mismatch", stmt.line, name
                )  # pragma: no cover
            mnemonic = stmt.mnemonic
            if mnemonic == ".word":
                for op in stmt.operands:
                    value = self._eval(op, symbols, stmt.line, name) & 0xFFFFFFFF
                    out += value.to_bytes(4, "big")
            elif mnemonic == ".half":
                for op in stmt.operands:
                    value = self._eval(op, symbols, stmt.line, name) & 0xFFFF
                    out += value.to_bytes(2, "big")
            elif mnemonic == ".byte":
                for op in stmt.operands:
                    value = self._eval(op, symbols, stmt.line, name) & 0xFF
                    out.append(value)
            elif mnemonic == ".float":
                for op in stmt.operands:
                    out += struct.pack(">f", float(op))
            elif mnemonic == ".double":
                for op in stmt.operands:
                    out += struct.pack(">d", float(op))
            elif mnemonic == ".space":
                out += bytes(self._eval(stmt.operands[0], {}, stmt.line, name))
            elif mnemonic == ".align":
                alignment = self._eval(stmt.operands[0], {}, stmt.line, name)
                while (self.data_base + len(out)) % alignment:
                    out.append(0)
            elif mnemonic in (".ascii", ".asciz"):
                out += self._string_literal(stmt.operands[0], stmt.line, name)
                if mnemonic == ".asciz":
                    out.append(0)
            else:  # pragma: no cover - filtered in pass 1
                raise AssemblerError(
                    f"unknown directive {mnemonic}", stmt.line, name
                )
        return out


_PSEUDO_HANDLERS: Dict[str, Callable] = {
    "set": Assembler._pseudo_set,
    "mov": Assembler._pseudo_mov,
    "clr": Assembler._pseudo_simple,
    "cmp": Assembler._pseudo_simple,
    "tst": Assembler._pseudo_simple,
    "inc": Assembler._pseudo_simple,
    "dec": Assembler._pseudo_simple,
    "neg": Assembler._pseudo_simple,
    "b": Assembler._pseudo_simple,
    "ret": Assembler._pseudo_simple,
    "retl": Assembler._pseudo_simple,
}


def assemble(source: str, name: str = "<asm>") -> Executable:
    """Assemble *source* text into an :class:`Executable`."""
    return Assembler().assemble(source, name)

"""Binary object-file format — save and load assembled executables.

The paper's toolchain edits statically linked binaries on disk; ours
should at least be able to *store* them. The ``.fsx`` format is a
minimal static executable container:

========  =====================================================
offset    contents
========  =====================================================
0–3       magic ``FSX1``
4–7       text base address (u32 BE)
8–11      text length (u32 BE)
12–15     data base address (u32 BE)
16–19     data length (u32 BE)
20–23     bss size (u32 BE)
24–27     entry point (u32 BE)
28–31     symbol count (u32 BE)
32–…      text bytes, data bytes, then symbol records
========  =====================================================

A symbol record is ``u16 name_length | name (utf-8) | u32 value``.
All fields big-endian, like the ISA itself.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Union

from repro.errors import EncodingError
from repro.isa.program import Executable

MAGIC = b"FSX1"
_HEADER = struct.Struct(">4sIIIIIII")


def write_executable(executable: Executable, stream: BinaryIO) -> None:
    """Serialise *executable* into *stream*."""
    symbols = sorted(executable.symbols.items())
    stream.write(_HEADER.pack(
        MAGIC,
        executable.text_base,
        len(executable.text),
        executable.data_base,
        len(executable.data),
        executable.bss_size,
        executable.entry,
        len(symbols),
    ))
    stream.write(executable.text)
    stream.write(executable.data)
    for name, value in symbols:
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise EncodingError(f"symbol name too long: {name[:40]}...")
        stream.write(len(encoded).to_bytes(2, "big"))
        stream.write(encoded)
        stream.write((value & 0xFFFFFFFF).to_bytes(4, "big"))


def read_executable(stream: BinaryIO,
                    source_name: str = "<fsx>") -> Executable:
    """Deserialise an executable written by :func:`write_executable`."""
    header = stream.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise EncodingError("truncated object file header")
    (magic, text_base, text_len, data_base, data_len, bss_size, entry,
     symbol_count) = _HEADER.unpack(header)
    if magic != MAGIC:
        raise EncodingError(f"bad magic {magic!r}; not an FSX executable")
    text = stream.read(text_len)
    data = stream.read(data_len)
    if len(text) != text_len or len(data) != data_len:
        raise EncodingError("truncated object file segments")
    symbols = {}
    for _ in range(symbol_count):
        raw_len = stream.read(2)
        if len(raw_len) != 2:
            raise EncodingError("truncated symbol table")
        name_len = int.from_bytes(raw_len, "big")
        name = stream.read(name_len).decode("utf-8")
        raw_value = stream.read(4)
        if len(raw_value) != 4:
            raise EncodingError("truncated symbol value")
        symbols[name] = int.from_bytes(raw_value, "big")
    return Executable(
        text=text,
        data=data,
        bss_size=bss_size,
        text_base=text_base,
        data_base=data_base,
        entry=entry,
        symbols=symbols,
        source_name=source_name,
    )


def save_executable(executable: Executable,
                    path: Union[str, "io.PathLike"]) -> None:
    """Write *executable* to *path*."""
    with open(path, "wb") as stream:
        write_executable(executable, stream)


def load_executable(path: Union[str, "io.PathLike"]) -> Executable:
    """Read an executable from *path*."""
    with open(path, "rb") as stream:
        return read_executable(stream, source_name=str(path))


def to_bytes(executable: Executable) -> bytes:
    """Serialise to an in-memory byte string."""
    buffer = io.BytesIO()
    write_executable(executable, buffer)
    return buffer.getvalue()


def from_bytes(blob: bytes, source_name: str = "<fsx>") -> Executable:
    """Deserialise from an in-memory byte string."""
    return read_executable(io.BytesIO(blob), source_name)

"""Toy SPARC-like instruction set: definitions, assembler, executables.

Public surface:

* :func:`assemble` — assembly text → :class:`Executable`
* :class:`Executable` — loadable program image with decoded-instruction cache
* :class:`Instruction`, :class:`Opcode`, :class:`InstrClass` — decoded form
* :func:`encode` / :func:`decode` — 32-bit binary codec
* :func:`disassemble` — instructions → assembly text
"""

from repro.isa.assembler import Assembler, assemble
from repro.isa.disasm import disassemble, format_instruction
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.objfile import (
    from_bytes,
    load_executable,
    save_executable,
    to_bytes,
)
from repro.isa.opcodes import Format, InstrClass, Opcode, opcode_info
from repro.isa.program import DATA_BASE, STACK_TOP, TEXT_BASE, Executable

__all__ = [
    "Assembler",
    "assemble",
    "disassemble",
    "format_instruction",
    "decode",
    "encode",
    "Instruction",
    "Format",
    "InstrClass",
    "Opcode",
    "opcode_info",
    "Executable",
    "DATA_BASE",
    "STACK_TOP",
    "TEXT_BASE",
    "save_executable",
    "load_executable",
    "to_bytes",
    "from_bytes",
]

"""Executable images.

An :class:`Executable` is the output of the assembler and the input of
every simulator: a binary text segment, an initialised data segment, a
BSS size, an entry point, and a symbol table. The layout mimics a
statically linked SPARC program (the paper instruments statically linked
executables):

=============  ==========================
Segment        Default base address
=============  ==========================
text           ``0x0001_0000``
data (+bss)    ``0x0004_0000``
stack top      ``0x7FFF_F000`` (grows down)
=============  ==========================

The executable also owns the *decoded instruction cache*: all simulators
(functional frontend, out-of-order model, configuration codec) fetch
instructions through :meth:`Executable.instruction_at`, which decodes
each text word once and memoises it. This mirrors FastSim's property
that the instruction at an address can always be looked up from the
(read-only) text image — the basis for compressing pipeline snapshots
down to a start PC plus branch bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import EncodingError, MemoryFault
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction

TEXT_BASE = 0x0001_0000
DATA_BASE = 0x0004_0000
STACK_TOP = 0x7FFF_F000
STACK_SIZE = 0x0010_0000


@dataclass
class Executable:
    """A loadable program image."""

    text: bytes
    data: bytes = b""
    bss_size: int = 0
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    entry: Optional[int] = None
    symbols: Dict[str, int] = field(default_factory=dict)
    source_name: str = "<program>"

    def __post_init__(self) -> None:
        if len(self.text) % 4 != 0:
            raise EncodingError("text segment length must be a multiple of 4")
        if self.entry is None:
            self.entry = self.text_base
        self._decoded: List[Optional[Instruction]] = [None] * (len(self.text) // 4)

    @property
    def text_end(self) -> int:
        """First address past the text segment."""
        return self.text_base + len(self.text)

    @property
    def data_end(self) -> int:
        """First address past initialised data and BSS."""
        return self.data_base + len(self.data) + self.bss_size

    def contains_text(self, address: int) -> bool:
        """True if *address* falls inside the text segment."""
        return self.text_base <= address < self.text_end

    def instruction_at(self, address: int) -> Instruction:
        """Decode (and memoise) the instruction at *address*.

        Raises :class:`MemoryFault` for addresses outside the text
        segment or not word aligned.
        """
        offset = address - self.text_base
        if offset < 0 or offset >= len(self.text) or offset % 4 != 0:
            raise MemoryFault(address, "instruction fetch outside text")
        index = offset >> 2
        cached = self._decoded[index]
        if cached is None:
            word = int.from_bytes(self.text[offset:offset + 4], "big")
            cached = decode(word, address)
            self._decoded[index] = cached
        return cached

    def instructions(self) -> List[Instruction]:
        """Decode the whole text segment, in address order."""
        return [
            self.instruction_at(self.text_base + 4 * i)
            for i in range(len(self.text) // 4)
        ]

    def symbol(self, name: str) -> int:
        """Look up a label's address."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(
                f"no symbol {name!r} in {self.source_name}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"Executable({self.source_name!r}, text={len(self.text)}B, "
            f"data={len(self.data)}B, bss={self.bss_size}B, "
            f"entry=0x{self.entry:x})"
        )

"""Decoded instruction representation.

An :class:`Instruction` is the fully-decoded, immutable form used by every
consumer in the package: the functional emulator pre-decodes the text
segment into a list of these; the out-of-order model reads the register
fields to recompute renaming each cycle; the configuration codec walks
them to rebuild pipeline contents from a compressed snapshot.

Register operands live in two namespaces (integer file and FP file); the
fields ``rs1``/``rs2``/``rd`` are integer-file indices and ``fs1``/
``fs2``/``fd`` are FP-file indices, with ``None`` meaning "not used".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

from repro.isa.opcodes import (
    ACCESS_WIDTH,
    CONDITIONAL_BRANCHES,
    Format,
    InstrClass,
    Opcode,
    OpInfo,
    opcode_info,
)
from repro.isa.registers import ZERO_REG


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction at a fixed text address.

    Derived facts (class, sources, destinations, …) are cached on first
    access: instructions are decoded once per text address and consulted
    millions of times by the timing models, so these lookups are on the
    simulators' hottest path. (``functools.cached_property`` stores into
    the instance ``__dict__`` directly, which coexists with the frozen
    dataclass.)
    """

    address: int
    opcode: Opcode
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    rd: Optional[int] = None
    fs1: Optional[int] = None
    fs2: Optional[int] = None
    fd: Optional[int] = None
    imm: Optional[int] = None  #: sign-extended immediate, if the i-bit is set
    target: Optional[int] = None  #: absolute branch/call target address

    @cached_property
    def info(self) -> OpInfo:
        """Static opcode properties (format, class, latency, cc usage)."""
        return opcode_info(self.opcode)

    @cached_property
    def iclass(self) -> InstrClass:
        return self.info.iclass

    @cached_property
    def latency(self) -> int:
        return self.info.latency

    @cached_property
    def is_conditional_branch(self) -> bool:
        """True for multi-target conditional branches (icc or fcc)."""
        return self.opcode in CONDITIONAL_BRANCHES

    @cached_property
    def is_indirect_jump(self) -> bool:
        """True for jumps whose target is unknown statically (``jmpl``)."""
        return self.opcode is Opcode.JMPL

    @cached_property
    def is_load(self) -> bool:
        return self.info.iclass is InstrClass.LOAD

    @cached_property
    def is_store(self) -> bool:
        return self.info.iclass is InstrClass.STORE

    @cached_property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @cached_property
    def access_width(self) -> int:
        """Memory access width in bytes (loads/stores only)."""
        return ACCESS_WIDTH[self.opcode]

    @property
    def fall_through(self) -> int:
        """Address of the next sequential instruction."""
        return self.address + 4

    @cached_property
    def _int_sources(self) -> Tuple[int, ...]:
        sources = []
        if self.rs1 is not None and self.rs1 != ZERO_REG:
            sources.append(self.rs1)
        if self.rs2 is not None and self.rs2 != ZERO_REG:
            sources.append(self.rs2)
        # Integer stores read the data register from the integer file.
        info = self.info
        if (info.fmt is Format.STORE and self.rd is not None
                and self.rd != ZERO_REG):
            sources.append(self.rd)
        return tuple(sources)

    def int_sources(self) -> Tuple[int, ...]:
        """Integer registers read, excluding the hardwired zero register."""
        return self._int_sources

    @cached_property
    def _int_dest(self) -> Optional[int]:
        info = self.info
        if info.fmt in (Format.ALU, Format.SETHI, Format.LOAD, Format.JMPL,
                        Format.F2I):
            if self.rd is not None and self.rd != ZERO_REG:
                return self.rd
            return None
        if info.fmt is Format.CALL:
            return self.rd  # link register, set by the decoder
        return None

    def int_dest(self) -> Optional[int]:
        """Integer register written, or None. Writes to %g0 are discarded."""
        return self._int_dest

    @cached_property
    def _fp_sources(self) -> Tuple[int, ...]:
        sources = []
        if self.fs1 is not None:
            sources.append(self.fs1)
        if self.fs2 is not None:
            sources.append(self.fs2)
        info = self.info
        if info.fmt is Format.FSTORE and self.fd is not None:
            sources.append(self.fd)
        return tuple(sources)

    def fp_sources(self) -> Tuple[int, ...]:
        """FP registers read."""
        return self._fp_sources

    @cached_property
    def _fp_dest(self) -> Optional[int]:
        info = self.info
        if info.fmt in (Format.FPOP1, Format.FPOP2, Format.FLOAD, Format.I2F):
            return self.fd
        return None

    def fp_dest(self) -> Optional[int]:
        """FP register written, or None."""
        return self._fp_dest

    def __str__(self) -> str:
        from repro.isa.disasm import format_instruction

        return format_instruction(self)

"""Register definitions for the toy SPARC-like ISA.

The ISA has 32 logical integer registers and 32 logical floating-point
registers. Register ``%g0`` (index 0) is hardwired to zero, as on SPARC.
Unlike real SPARC v8 there are **no register windows** — the frontier
between windows is irrelevant to the out-of-order timing model being
reproduced, and a flat file keeps the rename logic honest (see DESIGN.md,
"Substitutions").

SPARC assembly names are accepted by the assembler:

===========  =======================  =========================
Name         Indices                  Conventional role
===========  =======================  =========================
``%g0-%g7``  0–7                      globals (``%g0`` == 0)
``%o0-%o7``  8–15                     outgoing args / results
``%l0-%l7``  16–23                    locals
``%i0-%i7``  24–31                    incoming args
``%f0-%f31`` 0–31 (FP file)           floating point
===========  =======================  =========================

Aliases: ``%sp`` == ``%o6``, ``%fp`` == ``%i6``, ``%ra`` == ``%o7``.
"""

from __future__ import annotations

from typing import Dict

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Index of the hardwired-zero integer register.
ZERO_REG = 0

#: Stack pointer (``%sp`` == ``%o6``).
SP_REG = 14

#: Frame pointer (``%fp`` == ``%i6``).
FP_REG = 30

#: Link register used by ``call`` (``%o7``).
LINK_REG = 15


def _build_int_names() -> Dict[str, int]:
    names: Dict[str, int] = {}
    for i in range(8):
        names[f"g{i}"] = i
        names[f"o{i}"] = 8 + i
        names[f"l{i}"] = 16 + i
        names[f"i{i}"] = 24 + i
    for i in range(NUM_INT_REGS):
        names[f"r{i}"] = i
    names["sp"] = SP_REG
    names["fp"] = FP_REG
    names["ra"] = LINK_REG
    return names


def _build_fp_names() -> Dict[str, int]:
    return {f"f{i}": i for i in range(NUM_FP_REGS)}


#: Assembly name -> integer register index.
INT_REG_NAMES: Dict[str, int] = _build_int_names()

#: Assembly name -> floating point register index.
FP_REG_NAMES: Dict[str, int] = _build_fp_names()

#: Canonical printable name for each integer register index.
INT_REG_CANONICAL = (
    [f"g{i}" for i in range(8)]
    + [f"o{i}" for i in range(8)]
    + [f"l{i}" for i in range(8)]
    + [f"i{i}" for i in range(8)]
)


def int_reg_name(index: int) -> str:
    """Return the canonical SPARC-style name (``%g0`` …) for an index."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return "%" + INT_REG_CANONICAL[index]


def fp_reg_name(index: int) -> str:
    """Return the printable name (``%f0`` …) for an FP register index."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return f"%f{index}"


def parse_int_reg(name: str) -> int:
    """Parse an integer register name (with or without ``%``)."""
    key = name.lstrip("%").lower()
    if key not in INT_REG_NAMES:
        raise ValueError(f"unknown integer register: {name!r}")
    return INT_REG_NAMES[key]


def parse_fp_reg(name: str) -> int:
    """Parse a floating-point register name (with or without ``%``)."""
    key = name.lstrip("%").lower()
    if key not in FP_REG_NAMES:
        raise ValueError(f"unknown fp register: {name!r}")
    return FP_REG_NAMES[key]

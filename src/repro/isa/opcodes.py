"""Opcode definitions, instruction classes, and execution latencies.

The instruction set is a SPARC v8 flavoured 32-bit RISC:

* integer ALU ops with an optional condition-code-setting ``cc`` variant
  (``add``/``addcc``, ``sub``/``subcc``, …), operand 2 either a register
  or a 13-bit signed immediate;
* ``sethi`` for building 32-bit constants;
* loads and stores of bytes/halfwords/words plus single/double floats;
* floating point arithmetic (``fadd`` … ``fsqrt``) and compare;
* conditional branches on integer (``icc``) and floating (``fcc``)
  condition codes, pc-relative direct ``call``, and the indirect
  ``jmpl``;
* ``nop``, ``out`` (writes a register to the program's output stream,
  used by workloads to emit checksums), and ``halt`` (ends simulation —
  the substitute for exiting to the OS).

Deviations from real SPARC v8 (documented in DESIGN.md): no branch delay
slots, no register windows, and ``fitod``/``fdtoi`` convert directly
between the integer and FP files instead of bouncing through memory.

Each opcode carries an :class:`InstrClass`, which is what the
out-of-order timing model dispatches on, and a fixed execution latency
(loads get theirs from the cache simulator instead).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class InstrClass(enum.IntEnum):
    """Functional-unit class of an instruction, as seen by the timing model."""

    IALU = 0  #: single-cycle integer op (2 integer ALUs)
    IMUL = 1  #: integer multiply (issues to ALU 1)
    IDIV = 2  #: integer divide (issues to ALU 1, long latency)
    LOAD = 3  #: memory load (address queue + cache simulator)
    STORE = 4  #: memory store (address queue + cache simulator)
    FALU = 5  #: FP add/sub/compare/move (FP adder)
    FMUL = 6  #: FP multiply (FP multiplier)
    FDIV = 7  #: FP divide (FP multiplier, long latency)
    FSQRT = 8  #: FP square root (FP multiplier, long latency)
    BRANCH = 9  #: conditional branch (resolves in integer ALU 1)
    JUMP = 10  #: call / jmpl (single target or indirect)
    NOP = 11  #: no-operation
    HALT = 12  #: terminate simulation


class Format(enum.IntEnum):
    """Assembly/encoding format of an opcode."""

    ALU = 0  #: ``op %rs1, reg_or_imm, %rd``
    SETHI = 1  #: ``sethi imm22, %rd``
    LOAD = 2  #: ``op [%rs1 + reg_or_imm], %rd``
    STORE = 3  #: ``op %rd, [%rs1 + reg_or_imm]``
    FLOAD = 4  #: ``op [%rs1 + reg_or_imm], %fd``
    FSTORE = 5  #: ``op %fd, [%rs1 + reg_or_imm]``
    FPOP2 = 6  #: ``op %fs1, %fs2, %fd``
    FPOP1 = 7  #: ``op %fs, %fd``
    FCMP = 8  #: ``fcmp %fs1, %fs2``
    BRANCH = 9  #: ``op label`` (22-bit pc-relative displacement)
    CALL = 10  #: ``call label`` (30-bit pc-relative displacement)
    JMPL = 11  #: ``jmpl %rs1 + reg_or_imm, %rd``
    I2F = 12  #: ``op %rs1, %fd``
    F2I = 13  #: ``op %fs, %rd``
    NONE = 14  #: no operands (``nop``, ``halt``)
    OUT = 15  #: ``out %rs1``


class Opcode(enum.IntEnum):
    """Every opcode in the toy ISA. Values are the 8-bit primary opcode field."""

    # Integer ALU.
    ADD = 0x01
    ADDCC = 0x02
    SUB = 0x03
    SUBCC = 0x04
    AND = 0x05
    ANDCC = 0x06
    OR = 0x07
    ORCC = 0x08
    XOR = 0x09
    XORCC = 0x0A
    SLL = 0x0B
    SRL = 0x0C
    SRA = 0x0D
    SMUL = 0x0E
    SDIV = 0x0F
    SETHI = 0x10

    # Memory.
    LD = 0x20
    LDB = 0x21
    LDUB = 0x22
    LDH = 0x23
    LDUH = 0x24
    ST = 0x25
    STB = 0x26
    STH = 0x27
    LDF = 0x28
    LDDF = 0x29
    STF = 0x2A
    STDF = 0x2B

    # Floating point.
    FADD = 0x30
    FSUB = 0x31
    FMUL = 0x32
    FDIV = 0x33
    FSQRT = 0x34
    FNEG = 0x35
    FABS = 0x36
    FMOV = 0x37
    FCMP = 0x38
    FITOD = 0x39
    FDTOI = 0x3A

    # Control transfer: integer condition-code branches.
    BA = 0x40
    BN = 0x41
    BE = 0x42
    BNE = 0x43
    BG = 0x44
    BLE = 0x45
    BGE = 0x46
    BL = 0x47
    BGU = 0x48
    BLEU = 0x49

    # Control transfer: floating condition-code branches.
    FBE = 0x4A
    FBNE = 0x4B
    FBL = 0x4C
    FBLE = 0x4D
    FBG = 0x4E
    FBGE = 0x4F

    # Jumps.
    CALL = 0x50
    JMPL = 0x51

    # Miscellaneous.
    NOP = 0x60
    OUT = 0x61
    HALT = 0x7F


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    mnemonic: str
    fmt: Format
    iclass: InstrClass
    latency: int = 1
    sets_icc: bool = False
    reads_icc: bool = False
    sets_fcc: bool = False
    reads_fcc: bool = False


# Execution latencies loosely follow the MIPS R10000 (Yeager 1996): 1-cycle
# integer ALU, 6-cycle multiply, 34-cycle divide, 2-cycle FP add/multiply,
# 12-cycle FP divide, 18-cycle FP square root. Loads have no static latency;
# the cache simulator supplies it.
LAT_IALU = 1
LAT_IMUL = 6
LAT_IDIV = 34
LAT_FALU = 2
LAT_FMUL = 2
LAT_FDIV = 12
LAT_FSQRT = 18
LAT_BRANCH = 1
LAT_JUMP = 1
LAT_AGEN = 1  #: address-generation cycle for loads/stores

OPCODE_INFO: Dict[Opcode, OpInfo] = {
    Opcode.ADD: OpInfo("add", Format.ALU, InstrClass.IALU, LAT_IALU),
    Opcode.ADDCC: OpInfo("addcc", Format.ALU, InstrClass.IALU, LAT_IALU, sets_icc=True),
    Opcode.SUB: OpInfo("sub", Format.ALU, InstrClass.IALU, LAT_IALU),
    Opcode.SUBCC: OpInfo("subcc", Format.ALU, InstrClass.IALU, LAT_IALU, sets_icc=True),
    Opcode.AND: OpInfo("and", Format.ALU, InstrClass.IALU, LAT_IALU),
    Opcode.ANDCC: OpInfo("andcc", Format.ALU, InstrClass.IALU, LAT_IALU, sets_icc=True),
    Opcode.OR: OpInfo("or", Format.ALU, InstrClass.IALU, LAT_IALU),
    Opcode.ORCC: OpInfo("orcc", Format.ALU, InstrClass.IALU, LAT_IALU, sets_icc=True),
    Opcode.XOR: OpInfo("xor", Format.ALU, InstrClass.IALU, LAT_IALU),
    Opcode.XORCC: OpInfo("xorcc", Format.ALU, InstrClass.IALU, LAT_IALU, sets_icc=True),
    Opcode.SLL: OpInfo("sll", Format.ALU, InstrClass.IALU, LAT_IALU),
    Opcode.SRL: OpInfo("srl", Format.ALU, InstrClass.IALU, LAT_IALU),
    Opcode.SRA: OpInfo("sra", Format.ALU, InstrClass.IALU, LAT_IALU),
    Opcode.SMUL: OpInfo("smul", Format.ALU, InstrClass.IMUL, LAT_IMUL),
    Opcode.SDIV: OpInfo("sdiv", Format.ALU, InstrClass.IDIV, LAT_IDIV),
    Opcode.SETHI: OpInfo("sethi", Format.SETHI, InstrClass.IALU, LAT_IALU),
    Opcode.LD: OpInfo("ld", Format.LOAD, InstrClass.LOAD),
    Opcode.LDB: OpInfo("ldb", Format.LOAD, InstrClass.LOAD),
    Opcode.LDUB: OpInfo("ldub", Format.LOAD, InstrClass.LOAD),
    Opcode.LDH: OpInfo("ldh", Format.LOAD, InstrClass.LOAD),
    Opcode.LDUH: OpInfo("lduh", Format.LOAD, InstrClass.LOAD),
    Opcode.ST: OpInfo("st", Format.STORE, InstrClass.STORE),
    Opcode.STB: OpInfo("stb", Format.STORE, InstrClass.STORE),
    Opcode.STH: OpInfo("sth", Format.STORE, InstrClass.STORE),
    Opcode.LDF: OpInfo("ldf", Format.FLOAD, InstrClass.LOAD),
    Opcode.LDDF: OpInfo("lddf", Format.FLOAD, InstrClass.LOAD),
    Opcode.STF: OpInfo("stf", Format.FSTORE, InstrClass.STORE),
    Opcode.STDF: OpInfo("stdf", Format.FSTORE, InstrClass.STORE),
    Opcode.FADD: OpInfo("fadd", Format.FPOP2, InstrClass.FALU, LAT_FALU),
    Opcode.FSUB: OpInfo("fsub", Format.FPOP2, InstrClass.FALU, LAT_FALU),
    Opcode.FMUL: OpInfo("fmul", Format.FPOP2, InstrClass.FMUL, LAT_FMUL),
    Opcode.FDIV: OpInfo("fdiv", Format.FPOP2, InstrClass.FDIV, LAT_FDIV),
    Opcode.FSQRT: OpInfo("fsqrt", Format.FPOP1, InstrClass.FSQRT, LAT_FSQRT),
    Opcode.FNEG: OpInfo("fneg", Format.FPOP1, InstrClass.FALU, LAT_FALU),
    Opcode.FABS: OpInfo("fabs", Format.FPOP1, InstrClass.FALU, LAT_FALU),
    Opcode.FMOV: OpInfo("fmov", Format.FPOP1, InstrClass.FALU, LAT_FALU),
    Opcode.FCMP: OpInfo("fcmp", Format.FCMP, InstrClass.FALU, LAT_FALU, sets_fcc=True),
    Opcode.FITOD: OpInfo("fitod", Format.I2F, InstrClass.FALU, LAT_FALU),
    Opcode.FDTOI: OpInfo("fdtoi", Format.F2I, InstrClass.FALU, LAT_FALU),
    Opcode.BA: OpInfo("ba", Format.BRANCH, InstrClass.JUMP, LAT_JUMP),
    Opcode.BN: OpInfo("bn", Format.BRANCH, InstrClass.NOP, LAT_IALU),
    Opcode.BE: OpInfo("be", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_icc=True),
    Opcode.BNE: OpInfo("bne", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_icc=True),
    Opcode.BG: OpInfo("bg", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_icc=True),
    Opcode.BLE: OpInfo("ble", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_icc=True),
    Opcode.BGE: OpInfo("bge", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_icc=True),
    Opcode.BL: OpInfo("bl", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_icc=True),
    Opcode.BGU: OpInfo("bgu", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_icc=True),
    Opcode.BLEU: OpInfo("bleu", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_icc=True),
    Opcode.FBE: OpInfo("fbe", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_fcc=True),
    Opcode.FBNE: OpInfo("fbne", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_fcc=True),
    Opcode.FBL: OpInfo("fbl", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_fcc=True),
    Opcode.FBLE: OpInfo("fble", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_fcc=True),
    Opcode.FBG: OpInfo("fbg", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_fcc=True),
    Opcode.FBGE: OpInfo("fbge", Format.BRANCH, InstrClass.BRANCH, LAT_BRANCH, reads_fcc=True),
    Opcode.CALL: OpInfo("call", Format.CALL, InstrClass.JUMP, LAT_JUMP),
    Opcode.JMPL: OpInfo("jmpl", Format.JMPL, InstrClass.JUMP, LAT_JUMP),
    Opcode.NOP: OpInfo("nop", Format.NONE, InstrClass.NOP, LAT_IALU),
    Opcode.OUT: OpInfo("out", Format.OUT, InstrClass.IALU, LAT_IALU),
    Opcode.HALT: OpInfo("halt", Format.NONE, InstrClass.HALT, LAT_IALU),
}

#: Mnemonic -> opcode, for the assembler.
MNEMONIC_TO_OPCODE: Dict[str, Opcode] = {
    info.mnemonic: op for op, info in OPCODE_INFO.items()
}

#: Conditional branch opcodes (multi-target control transfers that the
#: frontend predicts and records in the control-flow queue).
CONDITIONAL_BRANCHES = frozenset(
    op for op, info in OPCODE_INFO.items()
    if info.iclass is InstrClass.BRANCH
)

#: Opcodes whose target is not known statically (indirect jumps).
INDIRECT_JUMPS = frozenset({Opcode.JMPL})

#: Opcodes whose 13-bit immediate is zero-extended rather than
#: sign-extended (logical ops and shifts, MIPS-style, so that ``set``
#: can build any 32-bit constant with ``sethi`` + ``or``).
ZERO_EXT_IMM_OPS = frozenset({
    Opcode.AND, Opcode.ANDCC, Opcode.OR, Opcode.ORCC,
    Opcode.XOR, Opcode.XORCC, Opcode.SLL, Opcode.SRL, Opcode.SRA,
})

#: Width in bytes of each memory opcode's access.
ACCESS_WIDTH: Dict[Opcode, int] = {
    Opcode.LD: 4,
    Opcode.LDB: 1,
    Opcode.LDUB: 1,
    Opcode.LDH: 2,
    Opcode.LDUH: 2,
    Opcode.ST: 4,
    Opcode.STB: 1,
    Opcode.STH: 2,
    Opcode.LDF: 4,
    Opcode.LDDF: 8,
    Opcode.STF: 4,
    Opcode.STDF: 8,
}


def opcode_info(op: Opcode) -> OpInfo:
    """Return the :class:`OpInfo` for *op*."""
    return OPCODE_INFO[op]

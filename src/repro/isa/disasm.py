"""Disassembly — turn decoded instructions back into assembly text.

Used by error messages, pipeline debug dumps, and the round-trip tests
(assemble → encode → decode → format → assemble must be a fixed point).
"""

from __future__ import annotations

from typing import Iterable

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format
from repro.isa.registers import fp_reg_name, int_reg_name


def _op2(instr: Instruction) -> str:
    """Format the reg-or-imm second operand."""
    if instr.imm is not None:
        return str(instr.imm)
    return int_reg_name(instr.rs2 if instr.rs2 is not None else 0)


def _addr(instr: Instruction) -> str:
    """Format a ``[%rs1 + op2]`` effective address."""
    base = int_reg_name(instr.rs1 if instr.rs1 is not None else 0)
    if instr.imm is not None:
        if instr.imm == 0:
            return f"[{base}]"
        sign = "+" if instr.imm >= 0 else "-"
        return f"[{base} {sign} {abs(instr.imm)}]"
    if instr.rs2 is not None and instr.rs2 != 0:
        return f"[{base} + {int_reg_name(instr.rs2)}]"
    return f"[{base}]"


def format_instruction(instr: Instruction) -> str:
    """Render one instruction as assembly text."""
    info = instr.info
    m = info.mnemonic
    fmt = info.fmt
    if fmt is Format.ALU:
        return (
            f"{m} {int_reg_name(instr.rs1 or 0)}, {_op2(instr)}, "
            f"{int_reg_name(instr.rd or 0)}"
        )
    if fmt is Format.SETHI:
        return f"{m} 0x{instr.imm:x}, {int_reg_name(instr.rd or 0)}"
    if fmt is Format.LOAD:
        return f"{m} {_addr(instr)}, {int_reg_name(instr.rd or 0)}"
    if fmt is Format.STORE:
        return f"{m} {int_reg_name(instr.rd or 0)}, {_addr(instr)}"
    if fmt is Format.FLOAD:
        return f"{m} {_addr(instr)}, {fp_reg_name(instr.fd or 0)}"
    if fmt is Format.FSTORE:
        return f"{m} {fp_reg_name(instr.fd or 0)}, {_addr(instr)}"
    if fmt is Format.FPOP2:
        return (
            f"{m} {fp_reg_name(instr.fs1 or 0)}, {fp_reg_name(instr.fs2 or 0)}, "
            f"{fp_reg_name(instr.fd or 0)}"
        )
    if fmt is Format.FPOP1:
        return f"{m} {fp_reg_name(instr.fs1 or 0)}, {fp_reg_name(instr.fd or 0)}"
    if fmt is Format.FCMP:
        return f"{m} {fp_reg_name(instr.fs1 or 0)}, {fp_reg_name(instr.fs2 or 0)}"
    if fmt in (Format.BRANCH, Format.CALL):
        return f"{m} 0x{instr.target:x}"
    if fmt is Format.JMPL:
        return f"{m} {_addr(instr)}, {int_reg_name(instr.rd or 0)}"
    if fmt is Format.I2F:
        return f"{m} {int_reg_name(instr.rs1 or 0)}, {fp_reg_name(instr.fd or 0)}"
    if fmt is Format.F2I:
        return f"{m} {fp_reg_name(instr.fs1 or 0)}, {int_reg_name(instr.rd or 0)}"
    if fmt is Format.OUT:
        return f"{m} {int_reg_name(instr.rs1 or 0)}"
    return m


def disassemble(instructions: Iterable[Instruction]) -> str:
    """Render a sequence of instructions, one per line with addresses."""
    lines = [
        f"0x{instr.address:08x}:  {format_instruction(instr)}"
        for instr in instructions
    ]
    return "\n".join(lines)

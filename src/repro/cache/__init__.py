"""Non-blocking cache hierarchy (L1 + L2 + MSHRs + split-transaction bus)."""

from repro.cache.bus import Bus
from repro.cache.hierarchy import READY, CacheStats, MemorySystem
from repro.cache.mshr import MSHRFile
from repro.cache.params import CacheLevelParams, MemorySystemParams
from repro.cache.sets import TagArray

__all__ = [
    "Bus",
    "CacheLevelParams",
    "CacheStats",
    "MemorySystem",
    "MemorySystemParams",
    "MSHRFile",
    "READY",
    "TagArray",
]

"""Cache and memory-system parameters.

Defaults reproduce the paper's Table 1: a 16 KB 2-way write-through L1
data cache and a 1 MB 2-way write-back L2, 8 MSHRs each, connected by
an 8-byte-wide split-transaction bus. Line size and latencies are not
stated in the paper; we use 32-byte lines and calibrate the L1-miss /
L2-hit delay to the 6 cycles the paper quotes in its example.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheLevelParams:
    """Geometry and policy of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_size: int = 32
    mshrs: int = 8
    write_back: bool = False  #: False = write-through (no write allocate)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_size):
            raise ValueError(
                f"{self.name}: size must be a multiple of assoc * line_size"
            )
        if self.line_size & (self.line_size - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)


@dataclass(frozen=True)
class MemorySystemParams:
    """The full hierarchy: L1 + L2 + bus + DRAM."""

    l1: CacheLevelParams = field(
        default_factory=lambda: CacheLevelParams(
            "L1", size_bytes=16 * 1024, associativity=2, write_back=False
        )
    )
    l2: CacheLevelParams = field(
        default_factory=lambda: CacheLevelParams(
            "L2", size_bytes=1024 * 1024, associativity=2, write_back=True
        )
    )
    #: Cycles from issue to data for an L1 hit.
    l1_hit_latency: int = 1
    #: Cycles from issue to data for an L1 miss that hits in L2
    #: (the paper's "usually a 6 cycle delay").
    l2_hit_latency: int = 6
    #: Additional cycles for an L2 miss (DRAM access).
    memory_latency: int = 26
    #: Bus width in bytes (Table 1: "8 byte wide, split transaction bus").
    bus_width: int = 8
    #: Store buffer entries between the pipeline and the L1/L2.
    store_buffer: int = 8

    def bus_cycles_for(self, nbytes: int) -> int:
        """Bus occupancy (in cycles) to move *nbytes*."""
        return max(1, (nbytes + self.bus_width - 1) // self.bus_width)

"""Set-associative tag array with true-LRU replacement.

Holds tags and dirty bits only — the timing models never move data, just
like FastSim's cache simulator, which reports *when* data would arrive,
never *what* it is.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.params import CacheLevelParams


class _Way:
    __slots__ = ("tag", "dirty", "lru")

    def __init__(self) -> None:
        self.tag: Optional[int] = None
        self.dirty = False
        self.lru = 0  #: higher = more recently used


class TagArray:
    """Tags + LRU + dirty bits for one cache level."""

    def __init__(self, params: CacheLevelParams):
        self.params = params
        self._line_shift = params.line_size.bit_length() - 1
        self._set_mask = params.num_sets - 1
        if params.num_sets & self._set_mask:
            raise ValueError(f"{params.name}: set count must be a power of two")
        self._sets: List[List[_Way]] = [
            [_Way() for _ in range(params.associativity)]
            for _ in range(params.num_sets)
        ]
        self._clock = 0  #: monotonically increasing LRU stamp
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def line_address(self, address: int) -> int:
        """The line-aligned address containing *address*."""
        return address & ~(self.params.line_size - 1)

    def _locate(self, line_addr: int) -> Tuple[List[_Way], int]:
        index = (line_addr >> self._line_shift) & self._set_mask
        tag = line_addr >> self._line_shift
        return self._sets[index], tag

    # ------------------------------------------------------------------

    def probe(self, address: int, update_lru: bool = True) -> bool:
        """Return hit/miss; on hit optionally refresh LRU. Counts stats."""
        ways, tag = self._locate(self.line_address(address))
        for way in ways:
            if way.tag == tag:
                if update_lru:
                    self._clock += 1
                    way.lru = self._clock
                self.hits += 1
                return True
        self.misses += 1
        return False

    def probe_line(self, line_addr: int,
                   update_lru: bool = True) -> Optional[_Way]:
        """:meth:`probe` for an already line-aligned address, returning
        the hit :class:`_Way` (or None on miss) so callers can remember
        it. Statistics and LRU behave exactly like :meth:`probe`."""
        ways, tag = self._locate(line_addr)
        for way in ways:
            if way.tag == tag:
                if update_lru:
                    self._clock += 1
                    way.lru = self._clock
                self.hits += 1
                return way
        self.misses += 1
        return None

    def touch(self, way: _Way) -> None:
        """Refresh LRU + count a hit for a way a filter already proved
        present — byte-for-byte the bookkeeping of a :meth:`probe` hit."""
        self._clock += 1
        way.lru = self._clock
        self.hits += 1

    def contains(self, address: int) -> bool:
        """Hit/miss check without touching LRU or statistics."""
        ways, tag = self._locate(self.line_address(address))
        return any(way.tag == tag for way in ways)

    def fill(self, address: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert the line containing *address*.

        Returns ``(evicted_line_address, was_dirty)`` when a valid line
        was displaced, else None. Filling a line already present just
        refreshes its LRU (and ORs in the dirty bit).
        """
        line_addr = self.line_address(address)
        ways, tag = self._locate(line_addr)
        self._clock += 1
        for way in ways:
            if way.tag == tag:
                way.lru = self._clock
                way.dirty = way.dirty or dirty
                return None
        victim = min(ways, key=lambda w: w.lru)
        evicted = None
        if victim.tag is not None:
            evicted_addr = (
                victim.tag << self._line_shift
            )
            evicted = (evicted_addr, victim.dirty)
            self.evictions += 1
        victim.tag = tag
        victim.dirty = dirty
        victim.lru = self._clock
        return evicted

    def set_dirty(self, address: int) -> None:
        """Mark the (present) line containing *address* dirty."""
        ways, tag = self._locate(self.line_address(address))
        for way in ways:
            if way.tag == tag:
                way.dirty = True
                return

    def invalidate(self, address: int) -> bool:
        """Drop the line containing *address*; True if it was present."""
        ways, tag = self._locate(self.line_address(address))
        for way in ways:
            if way.tag == tag:
                way.tag = None
                way.dirty = False
                way.lru = 0
                return True
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

"""Split-transaction bus between L1, L2, and memory.

Table 1 specifies an "8 byte wide, split transaction bus". The model is
an occupancy timeline: each transfer reserves the earliest available
window of ``ceil(bytes / width)`` cycles at or after its request time.
Because the bus is split-transaction, the address request and the data
reply are separate reservations, and unrelated transfers can use the
bus in between.

The bus holds only *relative* scheduling state (the next-free cycle),
so steady-state loops produce repeating intervals — which is what lets
the p-action cache reuse load-latency outcome edges.
"""

from __future__ import annotations


class Bus:
    """Single shared bus with FIFO occupancy reservations."""

    def __init__(self, width_bytes: int = 8):
        self.width_bytes = width_bytes
        self._next_free = 0
        self.busy_cycles = 0
        self.transfers = 0

    def cycles_for(self, nbytes: int) -> int:
        """Occupancy in cycles for an *nbytes* transfer."""
        return max(1, (nbytes + self.width_bytes - 1) // self.width_bytes)

    def reserve(self, now: int, nbytes: int) -> int:
        """Reserve the bus for an *nbytes* transfer at or after *now*.

        Returns the cycle at which the transfer **completes**.
        """
        start = max(now, self._next_free)
        duration = self.cycles_for(nbytes)
        self._next_free = start + duration
        self.busy_cycles += duration
        self.transfers += 1
        return self._next_free

    def next_free(self) -> int:
        """The first cycle at which the bus is idle."""
        return self._next_free

"""The non-blocking cache and memory simulator.

Reproduces the interface FastSim's μ-architecture simulator uses
(paper §4.1):

* :meth:`MemorySystem.issue_load` is called when a load is chosen from
  the address queue. It immediately returns the **shortest interval**
  (in cycles) before the data *could* become available — optimistically
  assuming an L2 hit when the load misses in L1.
* After waiting that interval the μ-architecture calls
  :meth:`MemorySystem.poll_load`, which either reports the data ready
  (returns 0) or returns a new interval to wait (e.g. the load also
  missed in L2) — "a common example is a load that first misses in the
  L1 cache (usually a 6 cycle delay), then misses in the L2 cache
  resulting in an additional delay depending on the current state of
  the cache".
* :meth:`MemorySystem.issue_store` returns the interval until the store
  is accepted by the store buffer (usually 1 cycle); the write-through
  L1 traffic, L2 write allocation, and writebacks proceed in the
  background and surface only as contention.

No program data moves through this simulator — it computes *when*, not
*what* (the frontend already computed the values). Tag-array updates
happen eagerly at issue time with in-flight lines guarded by MSHR
completion times, a standard simplification that keeps behaviour a
deterministic function of the request sequence — the property
memoization relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.bus import Bus
from repro.cache.mshr import MSHRFile
from repro.cache.params import MemorySystemParams
from repro.cache.sets import TagArray
from repro.errors import SimulationError

#: :meth:`MemorySystem.poll_load` return value meaning "data available".
READY = 0

#: Entries in the DEW-style direct-mapped L1 load filter. Must be a
#: power of two; sized so the filter itself stays resident in the host
#: CPU's cache while covering far more lines than a hot loop touches.
FILTER_SIZE = 256


@dataclass
class _LoadRequest:
    token: int
    address: int
    width: int
    issue_time: int
    ready_time: int
    l1_hit: bool
    l2_hit: bool
    polls: int = 0


class CacheStats:
    """Aggregated counters, identical between detailed and replay runs."""

    __slots__ = (
        "loads", "stores", "l1_load_hits", "l1_load_misses",
        "l1_store_hits", "l1_store_misses", "l2_hits", "l2_misses",
        "writebacks", "store_buffer_stalls",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __eq__(self, other) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"CacheStats({fields})"


class MemorySystem:
    """Non-blocking L1 + L2 + bus + DRAM timing model."""

    def __init__(self, params: Optional[MemorySystemParams] = None,
                 l1_filter: bool = True):
        self.params = params if params is not None else MemorySystemParams()
        self.l1 = TagArray(self.params.l1)
        self.l2 = TagArray(self.params.l2)
        self.l1_mshrs = MSHRFile(self.params.l1.mshrs)
        self.l2_mshrs = MSHRFile(self.params.l2.mshrs)
        self.bus = Bus(self.params.bus_width)
        self.stats = CacheStats()
        self._loads: Dict[int, _LoadRequest] = {}
        self._next_token = 0
        #: Completion times of stores occupying store-buffer slots.
        self._store_slots: List[int] = []
        #: DEW-style direct-mapped load filter: ``slot -> (line, way)``
        #: short-circuiting repeated same-line L1 load hits before the
        #: full MSHR + set lookup. Invariant: an entry exists only for a
        #: line currently valid in the L1 tags with no in-flight L1 MSHR
        #: newer than the insert — inserts happen only on the probe-hit
        #: path (which the in-flight check precedes), and every L1
        #: eviction/invalidation clears the matching entry. The filter
        #: is a host-side accelerator: hit/miss statistics, LRU motion,
        #: and returned intervals are byte-identical with it off.
        self._filter_enabled = bool(l1_filter)
        self._filter_mask = FILTER_SIZE - 1
        self._filter: List[Optional[tuple]] = [None] * FILTER_SIZE
        self.filter_hits = 0
        self.filter_misses = 0
        self.filter_invalidations = 0

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def issue_load(self, address: int, width: int, now: int):
        """Begin a load. Returns ``(token, interval)``.

        *interval* is the shortest number of cycles before the data
        could be available; the caller must poll after waiting it.
        """
        self.stats.loads += 1
        params = self.params
        line = self.l1.line_address(address)

        slot = -1
        if self._filter_enabled:
            slot = (line >> self.l1._line_shift) & self._filter_mask
            entry = self._filter[slot]
            if entry is not None and entry[0] == line:
                # Filtered hit: the line is proven present with no
                # in-flight fill, so replay the probe-hit bookkeeping
                # without touching MSHRs or walking the set. Deferring
                # release_completed is unobservable — every other MSHR
                # reader releases first (at a time >= now).
                self.filter_hits += 1
                self.stats.l1_load_hits += 1
                self.l1.touch(entry[1])
                ready = now + params.l1_hit_latency
                request = self._remember(address, width, now, ready,
                                         l1_hit=True, l2_hit=True)
                return request.token, max(1, ready - now)
            self.filter_misses += 1

        self.l1_mshrs.release_completed(now)
        self.l2_mshrs.release_completed(now)

        inflight = self.l1_mshrs.lookup(line)
        if inflight is not None and inflight > now:
            # The line is already being fetched: merge with that fill.
            self.stats.l1_load_misses += 1
            completion = self.l1_mshrs.merge(line)
            request = self._remember(address, width, now, completion,
                                     l1_hit=False, l2_hit=True)
            return request.token, max(1, completion - now)

        way = self.l1.probe_line(line)
        if way is not None:
            self.stats.l1_load_hits += 1
            if slot >= 0:
                self._filter[slot] = (line, way)
            ready = now + params.l1_hit_latency
            request = self._remember(address, width, now, ready,
                                     l1_hit=True, l2_hit=True)
            return request.token, max(1, ready - now)

        # L1 miss: wait for a free MSHR if necessary, then access L2.
        self.stats.l1_load_misses += 1
        start = self.l1_mshrs.next_slot_time(now)
        ready, l2_hit = self._fetch_line_from_l2(line, start)
        self.l1_mshrs.allocate(line, ready)
        self._fill_l1(line)
        request = self._remember(address, width, now, ready,
                                 l1_hit=False, l2_hit=l2_hit)
        # First reply is optimistic: it assumes the L2 will hit. The
        # poll after this interval discovers any additional delay.
        optimistic = min(ready, start + params.l2_hit_latency)
        return request.token, max(1, optimistic - now)

    def poll_load(self, token: int, now: int) -> int:
        """Check a load previously issued.

        Returns :data:`READY` (0) when the data is available, else the
        number of further cycles to wait.
        """
        try:
            request = self._loads[token]
        except KeyError:
            raise SimulationError(f"unknown load token {token}") from None
        request.polls += 1
        if now >= request.ready_time:
            del self._loads[token]
            return READY
        return request.ready_time - now

    def reset_timing(self) -> None:
        """Forget in-flight timing state; keep cache contents and stats.

        Sampled simulation restarts simulated time at each measurement
        window; pending fills, store-buffer slots, and bus reservations
        from the previous window's clock domain must not leak in.
        """
        self._loads.clear()
        self._store_slots.clear()
        self.l1_mshrs._inflight.clear()
        self.l2_mshrs._inflight.clear()
        self.bus._next_free = 0

    def warm_access(self, address: int, is_store: bool = False) -> None:
        """Functionally warm the tag arrays (no timing, MSHRs, bus, or
        hit/miss statistics).

        Used by sampled simulation between measurement windows so cache
        state tracks the skipped instruction stream — the standard cure
        for sampling's "state loss between sample clusters". ``fill``
        refreshes LRU when the line is already present.
        """
        line = self.l1.line_address(address)
        if not is_store or self.l1.contains(line):
            # Write-through L1 does not allocate on store misses.
            displaced = self.l1.fill(line)
            if displaced is not None:
                self._filter_invalidate(displaced[0])
        evicted = self.l2.fill(self.l2.line_address(address),
                               dirty=is_store)
        if evicted is not None:
            self.l1.invalidate(evicted[0])
            self._filter_invalidate(evicted[0])

    def cancel_load(self, token: int) -> None:
        """Forget an issued load (squashed wrong-path instruction).

        The line fill it triggered still completes — as in hardware —
        only the reply bookkeeping is dropped.
        """
        self._loads.pop(token, None)

    def _remember(self, address: int, width: int, now: int, ready: int,
                  l1_hit: bool, l2_hit: bool) -> _LoadRequest:
        token = self._next_token
        self._next_token += 1
        request = _LoadRequest(token, address, width, now, ready,
                               l1_hit, l2_hit)
        self._loads[token] = request
        return request

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def issue_store(self, address: int, width: int, now: int) -> int:
        """Begin a store. Returns the interval until it is accepted.

        Acceptance means the store owns a store-buffer slot; the
        pipeline treats it as complete after this interval. The
        write-through traffic drains in the background.
        """
        self.stats.stores += 1
        params = self.params
        start = self._store_slot_time(now)

        # Write-through, no-write-allocate L1.
        if self.l1.probe(address):
            self.stats.l1_store_hits += 1
        else:
            self.stats.l1_store_misses += 1

        # The word travels to L2 over the bus.
        transfer_done = self.bus.reserve(start, width)
        line = self.l2.line_address(address)
        self.l2_mshrs.release_completed(now)
        inflight = self.l2_mshrs.lookup(line)
        if inflight is not None and inflight > now:
            completion = max(self.l2_mshrs.merge(line), transfer_done)
            self.l2.set_dirty(line)
        elif self.l2.probe(address):
            self.stats.l2_hits += 1
            self.l2.set_dirty(line)
            completion = transfer_done
        else:
            # Write-allocate into the write-back L2: fetch the line from
            # memory, then merge the store's bytes.
            self.stats.l2_misses += 1
            completion = self._fetch_line_from_memory(line, transfer_done)
            self._fill_l2(line, dirty=True)
            if not self.l2_mshrs.full:
                self.l2_mshrs.allocate(line, completion)

        self._store_slots.append(completion)
        return max(1, start - now + 1)

    def _store_slot_time(self, now: int) -> int:
        """Earliest cycle a store-buffer slot is free."""
        self._store_slots = [t for t in self._store_slots if t > now]
        if len(self._store_slots) < self.params.store_buffer:
            return now
        self.stats.store_buffer_stalls += 1
        return min(self._store_slots)

    # ------------------------------------------------------------------
    # Line movement
    # ------------------------------------------------------------------

    def _fetch_line_from_l2(self, line: int, start: int):
        """Schedule an L1 fill from L2. Returns (ready_cycle, l2_hit)."""
        params = self.params
        self.l2_mshrs.release_completed(start)
        inflight = self.l2_mshrs.lookup(line)
        if inflight is not None and inflight > start:
            # L2 is already fetching this line from memory.
            ready = self.bus.reserve(self.l2_mshrs.merge(line),
                                     params.l1.line_size)
            return ready, False
        if self.l2.probe(line):
            self.stats.l2_hits += 1
            # L2 access pipeline, then the line crosses the bus.
            access_done = start + params.l2_hit_latency - self.bus.cycles_for(
                params.l1.line_size
            )
            ready = self.bus.reserve(max(start, access_done),
                                     params.l1.line_size)
            return max(ready, start + params.l2_hit_latency), True
        self.stats.l2_misses += 1
        mem_start = self.l2_mshrs.next_slot_time(start)
        fill_done = self._fetch_line_from_memory(line, mem_start)
        self._fill_l2(line, dirty=False)
        self.l2_mshrs.allocate(line, fill_done)
        ready = self.bus.reserve(fill_done, params.l1.line_size)
        return ready, False

    def _fetch_line_from_memory(self, line: int, start: int) -> int:
        """Schedule a DRAM access for *line*; returns the fill cycle."""
        params = self.params
        request_done = self.bus.reserve(start, params.bus_width)
        return request_done + params.memory_latency

    def _fill_l1(self, line: int) -> None:
        """Insert *line* into L1 (write-through: evictions are silent —
        but the load filter must forget the displaced line)."""
        evicted = self.l1.fill(line)
        if evicted is not None:
            self._filter_invalidate(evicted[0])

    def _fill_l2(self, line: int, dirty: bool) -> None:
        """Insert *line* into L2, scheduling a writeback if needed."""
        evicted = self.l2.fill(line, dirty=dirty)
        if evicted is not None and evicted[1]:
            self.stats.writebacks += 1
            self.bus.reserve(self.bus.next_free(), self.params.l2.line_size)
            # Inclusive-enough behaviour: drop the line from L1 as well so
            # both levels stay consistent about what is cached.
            self.l1.invalidate(evicted[0])
            self._filter_invalidate(evicted[0])

    def _filter_invalidate(self, line: int) -> None:
        """Exact invalidation: clear the filter slot iff it names *line*."""
        slot = (line >> self.l1._line_shift) & self._filter_mask
        entry = self._filter[slot]
        if entry is not None and entry[0] == line:
            self._filter[slot] = None
            self.filter_invalidations += 1

    def filter_stats(self) -> Dict[str, int]:
        """Host-side filter effectiveness counters (never canonical)."""
        return {
            "hits": self.filter_hits,
            "misses": self.filter_misses,
            "invalidations": self.filter_invalidations,
        }

    # ------------------------------------------------------------------

    @property
    def outstanding_loads(self) -> int:
        return len(self._loads)

"""Miss Status Holding Registers.

An MSHR tracks one outstanding line fill. Requests to a line that is
already being fetched merge into the existing MSHR instead of issuing a
second fill (and complete when that fill completes). When all MSHRs are
busy, a new miss must wait until the earliest in-flight fill finishes —
the paper's model gives both cache levels 8 MSHRs, which is what bounds
the memory-level parallelism of the non-blocking caches.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SimulationError


class MSHRFile:
    """A file of *capacity* miss-status holding registers."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        #: line address -> completion cycle of the in-flight fill
        self._inflight: Dict[int, int] = {}
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._inflight)

    @property
    def full(self) -> bool:
        return len(self._inflight) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[int]:
        """Completion cycle of an in-flight fill for *line_addr*, or None."""
        return self._inflight.get(line_addr)

    def merge(self, line_addr: int) -> int:
        """Attach another request to an in-flight fill."""
        try:
            completion = self._inflight[line_addr]
        except KeyError:
            raise SimulationError(
                f"no in-flight fill for line 0x{line_addr:x}"
            ) from None
        self.merges += 1
        return completion

    def allocate(self, line_addr: int, completion: int) -> None:
        """Track a new fill completing at cycle *completion*."""
        if self.full:
            raise SimulationError("MSHR file is full")
        if line_addr in self._inflight:
            raise SimulationError(
                f"duplicate MSHR for line 0x{line_addr:x}"
            )
        self._inflight[line_addr] = completion
        self.allocations += 1

    def earliest_completion(self) -> int:
        """Completion cycle of the fill that finishes first."""
        if not self._inflight:
            raise SimulationError("no in-flight fills")
        return min(self._inflight.values())

    def release_completed(self, now: int) -> None:
        """Retire every fill whose completion cycle has passed."""
        # Order-insensitive: the comprehension selects a *set* of lines
        # to delete; no recorded value depends on visit order.
        done = [line for line, when in self._inflight.items() if when <= now]  # repro-lint: disable=det/dict-value-iteration
        for line in done:
            del self._inflight[line]

    def next_slot_time(self, now: int) -> int:
        """Earliest cycle at which a free MSHR is available.

        When the file is full, the fill finishing first is retired and
        its completion cycle returned — the caller allocates *as of*
        that future cycle.
        """
        self.release_completed(now)
        if not self.full:
            return now
        self.full_stalls += 1
        when = self.earliest_completion()
        self.release_completed(when)
        return when

"""The documented entry points: ``simulate`` and ``run_campaign``.

This facade is the supported way in::

    import repro.api as api

    # One measurement — a suite workload, an Executable, or a file.
    result = api.simulate("compress", engine="fast", scale="tiny")

    # Many measurements — parallel, fault-tolerant, warm-started.
    campaign = api.run_campaign(
        workloads=["compress", "go"],
        simulators=("fast", "slow"),
        scale="tiny", workers=4, cache_dir=".fastsim-cache",
    )
    print(campaign["compress:fast:tiny"].result.summary())

Everything here is re-exported lazily from the top-level ``repro``
namespace (``repro.simulate``, ``repro.run_campaign``). Direct
construction of :class:`repro.analysis.SuiteRunner` is deprecated;
:func:`suite_runner` builds the memoizing facade without the warning.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.campaign.engine import (
    Campaign,
    CampaignResult,
    CampaignRunner,
)
from repro.campaign.jobs import Job, PolicySpec
from repro.campaign.cachedir import CacheStore
from repro.campaign.progress import ProgressSink, make_sink
from repro.campaign.worker import simulate_executable
from repro.isa.program import Executable
from repro.memo.policies import ReplacementPolicy
from repro.sim.results import SimulationResult
from repro.uarch.params import ProcessorParams
from repro.workloads.suite import WORKLOAD_ORDER, WORKLOADS, load_workload

__all__ = [
    "simulate",
    "run_campaign",
    "suite_runner",
]


def _resolve_executable(exe_or_name: Union[Executable, str],
                        scale: str) -> Executable:
    """Accept an Executable, a suite workload name, or a file path."""
    if isinstance(exe_or_name, Executable):
        return exe_or_name
    if exe_or_name in WORKLOADS:
        return load_workload(exe_or_name, scale)
    if exe_or_name.endswith(".fsx"):
        from repro.isa.objfile import load_executable

        return load_executable(exe_or_name)
    if exe_or_name.endswith(".s"):
        from repro.isa.assembler import assemble

        with open(exe_or_name) as handle:
            return assemble(handle.read(), name=exe_or_name)
    raise ValueError(
        f"cannot resolve {exe_or_name!r}: not an Executable, not a "
        f"suite workload (choose from {list(WORKLOAD_ORDER)}), and not "
        "a .fsx/.s path"
    )


def simulate(
    exe_or_name: Union[Executable, str],
    *,
    engine: str = "fast",
    scale: str = "test",
    params: Optional[ProcessorParams] = None,
    policy: Optional[Union[PolicySpec, ReplacementPolicy]] = None,
    cache_dir: Optional[str] = None,
    obs=None,
    audit_every: Optional[int] = None,
    audit_seed: int = 0,
    turbo: bool = True,
    turbo_threshold: Optional[int] = None,
) -> SimulationResult:
    """Simulate one program under one engine; returns the result.

    *exe_or_name* may be an assembled :class:`Executable`, the name of
    a suite workload (built at *scale*), or a path to an ``.fsx``
    binary / ``.s`` source. *engine* is ``fast`` (memoized), ``slow``
    (direct-execution only), or ``baseline`` (integrated). With
    *cache_dir*, ``fast`` runs warm-start from (and update) the shared
    p-action cache store. *obs* is an optional
    :class:`repro.obs.Observer`; telemetry is off (and free) without
    one, and never changes simulated results either way — see
    docs/observability.md. *audit_every* (``fast`` only) enables the
    :class:`~repro.guard.GuardedEngine`'s online replay audits —
    results stay bit-identical to an unguarded run; see
    docs/robustness.md. *turbo* / *turbo_threshold* (``fast`` only)
    control chain compilation of hot replay paths — on by default,
    bit-identical either way; see docs/performance.md.
    """
    executable = _resolve_executable(exe_or_name, scale)
    if isinstance(policy, PolicySpec):
        policy = policy.build()
    store = CacheStore(cache_dir, obs=obs) if cache_dir else None
    result, _ = simulate_executable(
        executable, engine, params=params, policy=policy, store=store,
        obs=obs, audit_every=audit_every, audit_seed=audit_seed,
        turbo=turbo, turbo_threshold=turbo_threshold,
    )
    return result


def run_campaign(
    workloads: Optional[Iterable[str]] = None,
    simulators: Sequence[str] = ("fast", "slow", "baseline"),
    *,
    scale: str = "test",
    params: Optional[ProcessorParams] = None,
    include_native: bool = False,
    jobs: Optional[Sequence[Job]] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    progress: Union[ProgressSink, str, None] = None,
    name: str = "campaign",
    obs=None,
    audit_every: Optional[int] = None,
    audit_seed: int = 0,
    turbo: bool = True,
    turbo_threshold: Optional[int] = None,
) -> CampaignResult:
    """Execute a simulation campaign; returns merged results.

    Either pass explicit *jobs*, or let the workload × simulator grid
    be built from *workloads* (default: the full 18-workload suite) and
    *simulators*. ``workers=0`` runs serially in-process; ``workers>=1``
    shards across a worker pool with per-job *timeout* and bounded
    *retries*. *progress* is a
    :class:`~repro.campaign.progress.ProgressSink` or one of ``"text"``
    / ``"jsonl"`` / ``"silent"``. Merged results are deterministic: see
    :meth:`~repro.campaign.engine.CampaignResult.canonical_json`.
    *obs* is an optional :class:`repro.obs.Observer`; the runner traces
    job lifecycles through it (and, on the serial ``workers=0`` path,
    the simulations themselves). *audit_every* turns on online replay
    audits for every ``fast`` job (see docs/robustness.md) without
    changing canonical output. *turbo* / *turbo_threshold* control
    chain compilation for every ``fast`` job (on by default) — also
    without changing canonical output (docs/performance.md).
    """
    if jobs is not None:
        campaign = Campaign(jobs=tuple(jobs), name=name)
    else:
        names = (list(workloads) if workloads is not None
                 else list(WORKLOAD_ORDER))
        campaign = Campaign.grid(
            names, simulators, scale=scale, params=params,
            include_native=include_native, name=name,
        )
    overrides = {}
    if audit_every is not None:
        overrides.update(audit_every=audit_every, audit_seed=audit_seed)
    if not turbo:
        overrides.update(turbo=False)
    if turbo_threshold is not None:
        overrides.update(turbo_threshold=turbo_threshold)
    if overrides:
        from dataclasses import replace

        campaign = Campaign(
            jobs=tuple(
                replace(job, **overrides)
                if job.simulator == "fast" and job.kind == "simulate"
                else job
                for job in campaign.jobs
            ),
            name=campaign.name,
        )
    if isinstance(progress, str):
        sink = make_sink(progress)
    else:
        sink = progress
    runner = CampaignRunner(
        workers=workers, cache_dir=cache_dir, timeout=timeout,
        retries=retries, sink=sink, obs=obs,
    )
    return runner.run(campaign)


def suite_runner(scale: str = "test", **kwargs):
    """Build the memoizing table/figure runner without the deprecation
    warning (accepts the same keywords as ``SuiteRunner``)."""
    from repro.analysis.runner import SuiteRunner

    return SuiteRunner(scale=scale, **kwargs)

"""The documented entry points: ``simulate``, ``run_campaign``, and
the submit/await pair ``submit_campaign`` / :class:`CampaignHandle`.

This facade is the supported way in::

    import repro.api as api

    # One measurement — a suite workload, an Executable, or a file.
    result = api.simulate("compress", engine="fast", scale="tiny")

    # Many measurements — parallel, fault-tolerant, warm-started.
    campaign = api.run_campaign(
        workloads=["compress", "go"],
        simulators=("fast", "slow"),
        scale="tiny", workers=4, cache_dir=".fastsim-cache",
    )
    print(campaign["compress:fast:tiny"].result.summary())

    # The same campaign, submitted instead of awaited: queue it, watch
    # progress, block only when the result is needed.
    handle = api.submit_campaign(
        workloads=["compress", "go"], scale="tiny", workers=4,
        backend="queue", cache_dir=".fastsim-cache",
        shared_cache_dir="/shared/fastsim-cache",
    )
    print(handle.progress())        # {"jobs": 6, "ok": 2, ...}
    campaign = handle.result(timeout=600)

``run_campaign`` *is* ``submit_campaign(...).result()`` — the blocking
form is a thin shim over the submit/await split, so both produce
byte-identical merged payloads by construction, and every existing
``run_campaign`` signature keeps working (mirroring the
:class:`~repro.analysis.SuiteRunner` treatment: the legacy entry point
stays supported while new code targets the richer one).

Everything here is re-exported lazily from the top-level ``repro``
namespace (``repro.simulate``, ``repro.run_campaign``,
``repro.submit_campaign``). Direct construction of
:class:`repro.analysis.SuiteRunner` is deprecated;
:func:`suite_runner` builds the memoizing facade without the warning.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.campaign.backends import ExecutorBackend
from repro.campaign.engine import (
    Campaign,
    CampaignResult,
    CampaignRunner,
)
from repro.campaign.handle import (
    CampaignHandle,
    EventStream,
    ProgressCounter,
)
from repro.campaign.jobs import Job, PolicySpec
from repro.campaign.cachedir import make_store
from repro.campaign.progress import ProgressSink, TeeSink, make_sink
from repro.campaign.worker import simulate_executable
from repro.isa.program import Executable
from repro.memo.policies import ReplacementPolicy
from repro.sim.results import SimulationResult
from repro.uarch.params import ProcessorParams
from repro.workloads.suite import WORKLOAD_ORDER, WORKLOADS, load_workload

__all__ = [
    "simulate",
    "run_campaign",
    "submit_campaign",
    "CampaignHandle",
    "suite_runner",
]


def _resolve_executable(exe_or_name: Union[Executable, str],
                        scale: str) -> Executable:
    """Accept an Executable, a suite workload name, or a file path."""
    if isinstance(exe_or_name, Executable):
        return exe_or_name
    if exe_or_name in WORKLOADS:
        return load_workload(exe_or_name, scale)
    if exe_or_name.endswith(".fsx"):
        from repro.isa.objfile import load_executable

        return load_executable(exe_or_name)
    if exe_or_name.endswith(".s"):
        from repro.isa.assembler import assemble

        with open(exe_or_name) as handle:
            return assemble(handle.read(), name=exe_or_name)
    raise ValueError(
        f"cannot resolve {exe_or_name!r}: not an Executable, not a "
        f"suite workload (choose from {list(WORKLOAD_ORDER)}), and not "
        "a .fsx/.s path"
    )


def simulate(
    exe_or_name: Union[Executable, str],
    *,
    engine: str = "fast",
    scale: str = "test",
    params: Optional[ProcessorParams] = None,
    policy: Optional[Union[PolicySpec, ReplacementPolicy]] = None,
    cache_dir: Optional[str] = None,
    shared_cache_dir: Optional[str] = None,
    obs=None,
    audit_every: Optional[int] = None,
    audit_seed: int = 0,
    turbo: bool = True,
    turbo_threshold: Optional[int] = None,
    threaded_frontend: bool = True,
    l1_filter: bool = True,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Simulate one program under one engine; returns the result.

    *exe_or_name* may be an assembled :class:`Executable`, the name of
    a suite workload (built at *scale*), or a path to an ``.fsx``
    binary / ``.s`` source. *engine* is ``fast`` (memoized), ``slow``
    (direct-execution only), or ``baseline`` (integrated). With
    *cache_dir*, ``fast`` runs warm-start from (and update) the shared
    p-action cache store. *obs* is an optional
    :class:`repro.obs.Observer`; telemetry is off (and free) without
    one, and never changes simulated results either way — see
    docs/observability.md. *audit_every* (``fast`` only) enables the
    :class:`~repro.guard.GuardedEngine`'s online replay audits —
    results stay bit-identical to an unguarded run; see
    docs/robustness.md. *turbo* / *turbo_threshold* (``fast`` only)
    control chain compilation of hot replay paths — on by default,
    bit-identical either way; see docs/performance.md.
    *threaded_frontend* / *l1_filter* (``fast`` only) toggle the
    host-side frontend/memory-hierarchy speed layers for ablation —
    also on by default and bit-identical either way. With
    *shared_cache_dir* (requires *cache_dir*), warm-start reads
    through a two-tier store — local dir first, then the shared tier,
    promoting byte-exact hits locally; see docs/distributed.md.
    *backend* routes the run through a one-job campaign on the named
    executor backend (``fast`` suite workloads only — backends place
    jobs by workload name); results are byte-identical to the
    in-process path, which ``backend=None`` (the default) keeps using.
    """
    if backend is not None:
        if (not isinstance(exe_or_name, str)
                or exe_or_name not in WORKLOADS):
            raise ValueError(
                "backend= places jobs by suite workload name; pass "
                f"one of {list(WORKLOAD_ORDER)} (or drop backend= to "
                "simulate an Executable or file in-process)"
            )
        if isinstance(policy, ReplacementPolicy):
            raise ValueError(
                "backend= cannot ship a live ReplacementPolicy across "
                "a placement boundary; pass a declarative PolicySpec"
            )
        outcome = run_campaign(
            jobs=[Job(workload=exe_or_name, simulator=engine,
                      scale=scale, params=params, policy=policy)],
            workers=1, cache_dir=cache_dir,
            shared_cache_dir=shared_cache_dir, obs=obs,
            audit_every=audit_every, audit_seed=audit_seed,
            turbo=turbo, turbo_threshold=turbo_threshold,
            threaded_frontend=threaded_frontend, l1_filter=l1_filter,
            backend=backend, name=f"simulate-{exe_or_name}",
        )
        job_result = outcome.results[0]
        if not job_result.ok:
            raise RuntimeError(
                f"{job_result.key}: {job_result.error}"
            )
        return job_result.result
    executable = _resolve_executable(exe_or_name, scale)
    if isinstance(policy, PolicySpec):
        policy = policy.build()
    store = make_store(cache_dir, shared_cache_dir, obs=obs)
    result, _ = simulate_executable(
        executable, engine, params=params, policy=policy, store=store,
        obs=obs, audit_every=audit_every, audit_seed=audit_seed,
        turbo=turbo, turbo_threshold=turbo_threshold,
        threaded_frontend=threaded_frontend, l1_filter=l1_filter,
    )
    return result


def _build_campaign(
    workloads: Optional[Iterable[str]],
    simulators: Sequence[str],
    scale: str,
    params: Optional[ProcessorParams],
    include_native: bool,
    jobs: Optional[Sequence[Job]],
    name: str,
    backend: Union[str, ExecutorBackend, None],
    audit_every: Optional[int],
    audit_seed: int,
    turbo: bool,
    turbo_threshold: Optional[int],
    threaded_frontend: bool = True,
    l1_filter: bool = True,
) -> Campaign:
    """The campaign both entry points build — grid or explicit jobs,
    with audit/turbo overrides applied to the ``fast`` simulate jobs."""
    campaign_backend = backend if isinstance(backend, str) else "fork"
    if jobs is not None:
        campaign = Campaign(jobs=tuple(jobs), name=name,
                            backend=campaign_backend)
    else:
        names = (list(workloads) if workloads is not None
                 else list(WORKLOAD_ORDER))
        campaign = Campaign.grid(
            names, simulators, scale=scale, params=params,
            include_native=include_native, name=name,
            backend=campaign_backend,
        )
    overrides = {}
    if audit_every is not None:
        overrides.update(audit_every=audit_every, audit_seed=audit_seed)
    if not turbo:
        overrides.update(turbo=False)
    if turbo_threshold is not None:
        overrides.update(turbo_threshold=turbo_threshold)
    if not threaded_frontend:
        overrides.update(threaded_frontend=False)
    if not l1_filter:
        overrides.update(l1_filter=False)
    if overrides:
        from dataclasses import replace

        campaign = Campaign(
            jobs=tuple(
                replace(job, **overrides)
                if job.simulator == "fast" and job.kind == "simulate"
                else job
                for job in campaign.jobs
            ),
            name=campaign.name,
            backend=campaign.backend,
        )
    return campaign


def submit_campaign(
    workloads: Optional[Iterable[str]] = None,
    simulators: Sequence[str] = ("fast", "slow", "baseline"),
    *,
    scale: str = "test",
    params: Optional[ProcessorParams] = None,
    include_native: bool = False,
    jobs: Optional[Sequence[Job]] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    shared_cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    progress: Union[ProgressSink, str, None] = None,
    name: str = "campaign",
    obs=None,
    audit_every: Optional[int] = None,
    audit_seed: int = 0,
    turbo: bool = True,
    turbo_threshold: Optional[int] = None,
    threaded_frontend: bool = True,
    l1_filter: bool = True,
    backend: Union[str, ExecutorBackend, None] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
    hang_after: Optional[float] = None,
) -> CampaignHandle:
    """Submit a campaign for background execution; returns a handle.

    Accepts exactly what :func:`run_campaign` accepts and starts the
    run on a background thread immediately. The returned
    :class:`~repro.campaign.handle.CampaignHandle` awaits the merged
    result (``handle.result(timeout=...)``), reports live job counts
    (``handle.progress()``), streams schema-stamped live events
    (``handle.events()`` — replay-then-live, SSE-ready; see
    docs/observability.md), requests early termination
    (``handle.cancel()`` — unfinished jobs come back
    ``status="cancelled"``), and exposes host-side diagnostics
    (``handle.metrics()``). ``handle.result()`` is byte-for-byte the
    payload the blocking form returns, because the blocking form *is*
    submit-then-await. *backend* picks the executor backend (``fork``,
    ``subprocess``, ``queue`` — see docs/distributed.md);
    *shared_cache_dir* (with *cache_dir* as the local tier) warm-starts
    through a two-tier read-through/write-back store. *journal* makes
    the engine keep a durable crash journal at that path; *resume*
    replays one, skipping jobs already completed (byte-identical merge
    — see docs/robustness.md § Crash-safe campaigns); *hang_after*
    (seconds) arms worker hang detection via heartbeats.
    """
    campaign = _build_campaign(
        workloads, simulators, scale, params, include_native, jobs,
        name, backend, audit_every, audit_seed, turbo, turbo_threshold,
        threaded_frontend=threaded_frontend, l1_filter=l1_filter,
    )
    if isinstance(progress, str):
        sink = make_sink(progress)
    else:
        sink = progress
    counter = ProgressCounter()
    events = EventStream()
    sink = (TeeSink(counter, events) if sink is None
            else TeeSink(sink, counter, events))
    runner = CampaignRunner(
        workers=workers, cache_dir=cache_dir, timeout=timeout,
        retries=retries, sink=sink, obs=obs, backend=backend,
        shared_cache_dir=shared_cache_dir,
        journal=journal, resume=resume, hang_after=hang_after,
    )
    return CampaignHandle(campaign, runner, counter, events)


def run_campaign(
    workloads: Optional[Iterable[str]] = None,
    simulators: Sequence[str] = ("fast", "slow", "baseline"),
    *,
    scale: str = "test",
    params: Optional[ProcessorParams] = None,
    include_native: bool = False,
    jobs: Optional[Sequence[Job]] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    shared_cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    progress: Union[ProgressSink, str, None] = None,
    name: str = "campaign",
    obs=None,
    audit_every: Optional[int] = None,
    audit_seed: int = 0,
    turbo: bool = True,
    turbo_threshold: Optional[int] = None,
    threaded_frontend: bool = True,
    l1_filter: bool = True,
    backend: Union[str, ExecutorBackend, None] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
    hang_after: Optional[float] = None,
) -> CampaignResult:
    """Execute a simulation campaign; returns merged results.

    The blocking form of :func:`submit_campaign` — literally
    submit-then-await, so the payload is byte-identical to
    ``submit_campaign(...).result()``. Either pass explicit *jobs*, or
    let the workload × simulator grid be built from *workloads*
    (default: the full 18-workload suite) and *simulators*.
    ``workers=0`` runs serially in-process; ``workers>=1`` shards
    across the selected executor *backend* (``fork`` — the default —
    ``subprocess``, or ``queue``; see docs/distributed.md) with
    per-job *timeout* and bounded *retries*. *progress* is a
    :class:`~repro.campaign.progress.ProgressSink` or one of ``"text"``
    / ``"jsonl"`` / ``"silent"``. With *shared_cache_dir*, warm-start
    reads through a two-tier store (*cache_dir* is the local tier).
    Merged results are deterministic: see
    :meth:`~repro.campaign.engine.CampaignResult.canonical_json`.
    *obs* is an optional :class:`repro.obs.Observer`; the runner traces
    job lifecycles through it (and, on the serial ``workers=0`` path,
    the simulations themselves). *audit_every* turns on online replay
    audits for every ``fast`` job (see docs/robustness.md) without
    changing canonical output. *turbo* / *turbo_threshold* control
    chain compilation for every ``fast`` job (on by default) — also
    without changing canonical output (docs/performance.md).
    """
    handle = submit_campaign(
        workloads, simulators, scale=scale, params=params,
        include_native=include_native, jobs=jobs, workers=workers,
        cache_dir=cache_dir, shared_cache_dir=shared_cache_dir,
        timeout=timeout, retries=retries, progress=progress, name=name,
        obs=obs, audit_every=audit_every, audit_seed=audit_seed,
        turbo=turbo, turbo_threshold=turbo_threshold,
        threaded_frontend=threaded_frontend, l1_filter=l1_filter,
        backend=backend,
        journal=journal, resume=resume, hang_after=hang_after,
    )
    return handle.result()


def suite_runner(scale: str = "test", **kwargs):
    """Build the memoizing table/figure runner without the deprecation
    warning (accepts the same keywords as ``SuiteRunner``)."""
    from repro.analysis.runner import SuiteRunner

    return SuiteRunner(scale=scale, **kwargs)

"""Regenerate the paper's Figure 7 and the §4.3 / §5 GC policy study.

Figure 7 sweeps the p-action cache size limit under the flush-on-full
policy and reports the memoization speedup (SlowSim time / FastSim
time) at each limit. The paper sweeps 512 KB – 256 MB against caches of
up to 889 MB; our workloads produce caches of tens-to-hundreds of
kilobytes, so the sweep covers the same *relative* range — from a small
fraction of each workload's natural cache size up past all of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.runner import SuiteRunner
from repro.campaign.jobs import Job, JobResult, PolicySpec
from repro.workloads.suite import WORKLOAD_ORDER

#: Default relative cache limits (fraction of the workload's unbounded
#: p-action cache size). Spans "an order-of-magnitude reduction" and
#: more, like the paper's 512KB..256MB axis.
DEFAULT_FRACTIONS = (0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5)


@dataclass
class Figure7Point:
    """One (workload, cache-limit) measurement."""

    benchmark: str
    limit_bytes: int
    limit_fraction: float  #: limit / unbounded cache size
    speedup: float  #: SlowSim host time / FastSim host time
    flushes: int
    detailed_fraction: float


@dataclass
class PolicyStudyRow:
    """One (workload, policy) measurement for the GC comparison."""

    benchmark: str
    policy: str
    limit_bytes: int
    speedup: float
    collections: int
    detailed_fraction: float
    survival_rate: Optional[float] = None  #: mean bytes surviving a GC


def _policy_batch(runner: SuiteRunner,
                  wanted: List[Job]) -> Dict[str, JobResult]:
    """Run policy jobs, deduplicated by key (two sweep fractions can
    clamp to the same byte limit and therefore the same job)."""
    unique = {job.key: job for job in wanted}
    return runner.run_batch(list(unique.values()))


def figure7(
    runner: SuiteRunner,
    workloads: Optional[Iterable[str]] = None,
    fractions: Iterable[float] = DEFAULT_FRACTIONS,
) -> List[Figure7Point]:
    """Speedup vs. p-action cache limit, flush-on-full policy."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_ORDER)
    fractions = list(fractions)
    # The unbounded fast runs size each workload's sweep; run them (and
    # the SlowSim baselines) first, then the whole policy grid as one
    # campaign batch.
    runner.prefetch(names, ("slow", "fast"))
    grid: List[tuple] = []
    wanted: List[Job] = []
    for name in names:
        natural = max(runner.run(name, "fast").memo.peak_cache_bytes, 1)
        for fraction in fractions:
            limit = max(int(natural * fraction), 512)
            job = runner.job(name, "fast", PolicySpec("flush", limit))
            grid.append((name, fraction, limit, job.key))
            wanted.append(job)
    outcomes = _policy_batch(runner, wanted)
    points = []
    for name, fraction, limit, key in grid:
        slow = runner.run(name, "slow")
        fast = outcomes[key].result
        assert fast.cycles == slow.cycles, (
            f"policy changed results for {name}"
        )
        points.append(Figure7Point(
            benchmark=name,
            limit_bytes=limit,
            limit_fraction=fraction,
            speedup=slow.host_seconds / fast.host_seconds,
            flushes=fast.memo.evictions,
            detailed_fraction=fast.memo.detailed_fraction,
        ))
    return points


def gc_policy_study(
    runner: SuiteRunner,
    workloads: Optional[Iterable[str]] = None,
    fraction: float = 0.35,
) -> List[PolicyStudyRow]:
    """Flush vs. copying GC vs. generational GC at one cache limit.

    Reproduces §5's negative result: the collectors are no better than
    flushing, and little of the cache survives each collection.
    """
    names = list(workloads) if workloads is not None else list(WORKLOAD_ORDER)
    runner.prefetch(names, ("slow", "fast"))
    grid: List[tuple] = []
    wanted: List[Job] = []
    for name in names:
        unbounded = runner.run(name, "fast")
        limit = max(int(unbounded.memo.peak_cache_bytes * fraction), 512)
        for kind in ("flush", "copying-gc", "generational-gc"):
            job = runner.job(name, "fast", PolicySpec(kind, limit))
            grid.append((name, kind, limit, job.key))
            wanted.append(job)
    outcomes = _policy_batch(runner, wanted)
    rows = []
    for name, kind, limit, key in grid:
        slow = runner.run(name, "slow")
        outcome = outcomes[key]
        fast = outcome.result
        assert fast.cycles == slow.cycles
        survival = None
        rates = outcome.metrics.get("survival_rates")
        if rates:
            survival = sum(rates) / len(rates)
        rows.append(PolicyStudyRow(
            benchmark=name,
            policy=kind,
            limit_bytes=limit,
            speedup=slow.host_seconds / fast.host_seconds,
            collections=fast.memo.evictions,
            detailed_fraction=fast.memo.detailed_fraction,
            survival_rate=survival,
        ))
    return rows


def figure7_series(points: List[Figure7Point]) -> Dict[str, List[Figure7Point]]:
    """Group Figure 7 points by benchmark (one line per benchmark)."""
    series: Dict[str, List[Figure7Point]] = {}
    for point in points:
        series.setdefault(point.benchmark, []).append(point)
    for line in series.values():
        line.sort(key=lambda p: p.limit_bytes)
    return series

"""Regenerate the paper's evaluation tables (Tables 2, 3, 4, 5).

Each ``tableN`` function returns a list of per-benchmark row
dataclasses carrying exactly the columns the paper reports, plus a
``paper`` reference band where the paper states one, so EXPERIMENTS.md
can be produced mechanically. Rendering to text lives in
:mod:`repro.analysis.report`.

Slowdowns are measured against plain functional execution — the
reproduction's stand-in for "time to execute the original,
uninstrumented executables" (see DESIGN.md, Substitutions): every
quantity the paper's claims rest on is a *ratio between simulators*,
which survives the Python-for-hardware substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.analysis.runner import SuiteRunner
from repro.workloads.suite import WORKLOAD_ORDER, WORKLOADS


@dataclass
class Table2Row:
    """Performance of FastSim vs. SlowSim (paper Table 2)."""

    benchmark: str
    spec_name: str
    program_seconds: float  #: functional-execution time ("Program")
    slow_slowdown: float  #: SlowSim time / program time
    fast_slowdown: float  #: FastSim time / program time
    speedup: float  #: "Slow / Fast" — the memoization factor


@dataclass
class Table3Row:
    """FastSim vs. the SimpleScalar surrogate (paper Table 3)."""

    benchmark: str
    spec_name: str
    cycles: int  #: "Program cycles" from out-of-order simulation
    instructions: int  #: retired instructions
    baseline_kinsts: float  #: baseline simulator Kinsts/second
    slow_kinsts: float  #: SlowSim Kinsts/second
    fast_kinsts: float  #: FastSim Kinsts/second
    fast_vs_baseline: float  #: the paper's final column
    slow_vs_baseline: float  #: direct-execution-only gain (§1: 1.1-2.1x)


@dataclass
class Table4Row:
    """Detailed vs. replayed instruction counts (paper Table 4)."""

    benchmark: str
    spec_name: str
    detailed_instructions: int
    replayed_instructions: int
    detailed_fraction: float  #: "Detailed / Total"


@dataclass
class Table5Row:
    """Memoization measurements (paper Table 5)."""

    benchmark: str
    spec_name: str
    cache_bytes: int  #: modelled p-action cache footprint
    static_configs: int
    static_actions: int
    actions_per_config: float  #: dynamic (paper: 3.4-4.9)
    cycles_per_config: float  #: dynamic (paper: 1.0-1.6)
    avg_chain: float  #: mean replayed-chain length
    max_chain: int  #: longest replayed chain


def _names(workloads: Optional[Iterable[str]]) -> List[str]:
    return list(workloads) if workloads is not None else list(WORKLOAD_ORDER)


def table2(runner: SuiteRunner,
           workloads: Optional[Iterable[str]] = None) -> List[Table2Row]:
    """Slowdowns of SlowSim and FastSim, and the memoization speedup."""
    rows = []
    runner.prefetch(_names(workloads), ("slow", "fast"),
                    include_native=True)
    for name in _names(workloads):
        native = runner.native(name)
        slow = runner.run(name, "slow")
        fast = runner.run(name, "fast")
        rows.append(Table2Row(
            benchmark=name,
            spec_name=WORKLOADS[name].spec_name,
            program_seconds=native.seconds,
            slow_slowdown=slow.host_seconds / native.seconds,
            fast_slowdown=fast.host_seconds / native.seconds,
            speedup=slow.host_seconds / fast.host_seconds,
        ))
    return rows


def table3(runner: SuiteRunner,
           workloads: Optional[Iterable[str]] = None) -> List[Table3Row]:
    """Simulation rates against the integrated (SimpleScalar-role)
    baseline."""
    rows = []
    runner.prefetch(_names(workloads), ("slow", "fast", "baseline"))
    for name in _names(workloads):
        slow = runner.run(name, "slow")
        fast = runner.run(name, "fast")
        base = runner.run(name, "baseline")
        rows.append(Table3Row(
            benchmark=name,
            spec_name=WORKLOADS[name].spec_name,
            cycles=fast.cycles,
            instructions=fast.instructions,
            baseline_kinsts=base.kinsts_per_second,
            slow_kinsts=slow.kinsts_per_second,
            fast_kinsts=fast.kinsts_per_second,
            fast_vs_baseline=base.host_seconds / fast.host_seconds,
            slow_vs_baseline=base.host_seconds / slow.host_seconds,
        ))
    return rows


def table4(runner: SuiteRunner,
           workloads: Optional[Iterable[str]] = None) -> List[Table4Row]:
    """Fraction of instructions simulated in detail vs. replayed."""
    rows = []
    runner.prefetch(_names(workloads), ("fast",))
    for name in _names(workloads):
        fast = runner.run(name, "fast")
        memo = fast.memo
        rows.append(Table4Row(
            benchmark=name,
            spec_name=WORKLOADS[name].spec_name,
            detailed_instructions=memo.detailed_instructions,
            replayed_instructions=memo.replayed_instructions,
            detailed_fraction=memo.detailed_fraction,
        ))
    return rows


def table5(runner: SuiteRunner,
           workloads: Optional[Iterable[str]] = None) -> List[Table5Row]:
    """P-action cache contents and chain statistics."""
    rows = []
    runner.prefetch(_names(workloads), ("fast",))
    for name in _names(workloads):
        fast = runner.run(name, "fast")
        memo = fast.memo
        rows.append(Table5Row(
            benchmark=name,
            spec_name=WORKLOADS[name].spec_name,
            cache_bytes=memo.peak_cache_bytes,
            static_configs=memo.configs_allocated,
            static_actions=memo.actions_allocated,
            actions_per_config=memo.actions_per_config,
            cycles_per_config=memo.cycles_per_config,
            avg_chain=memo.avg_chain_length,
            max_chain=memo.max_chain_length,
        ))
    return rows

"""Machine-readable export of the regenerated experiments.

CI pipelines and meta-analyses want the tables as data, not text.
:func:`export_all` runs (or reuses) the suite measurements and returns
one JSON-serialisable dictionary covering Tables 2–5; :func:`save_json`
writes it to disk. Dataclass rows are converted field-by-field, so the
JSON schema is exactly the documented row types in
:mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, List, Optional, Union

from repro.analysis.runner import SuiteRunner
from repro.analysis.tables import table2, table3, table4, table5

FORMAT_VERSION = 1


def _rows_to_dicts(rows: List[object]) -> List[Dict[str, object]]:
    return [dataclasses.asdict(row) for row in rows]


def export_all(
    runner: SuiteRunner,
    workloads: Optional[Iterable[str]] = None,
) -> Dict[str, object]:
    """Regenerate Tables 2–5 and package them as one document."""
    names = list(workloads) if workloads is not None else None
    # One prefetch covers every table below; with a parallel runner the
    # whole grid executes as a single campaign.
    runner.prefetch(names, ("fast", "slow", "baseline"),
                    include_native=True)
    return {
        "format_version": FORMAT_VERSION,
        "paper": {
            "title": "Fast Out-Of-Order Processor Simulation Using "
                     "Memoization",
            "authors": "Eric Schnarr and James R. Larus",
            "venue": "ASPLOS-VIII, 1998",
        },
        "scale": runner.scale,
        "table2": _rows_to_dicts(table2(runner, names)),
        "table3": _rows_to_dicts(table3(runner, names)),
        "table4": _rows_to_dicts(table4(runner, names)),
        "table5": _rows_to_dicts(table5(runner, names)),
    }


def save_json(document: Dict[str, object],
              path: Union[str, "object"]) -> None:
    """Write an export document as pretty-printed JSON."""
    with open(path, "w") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")


def export_json(
    path: Union[str, "object"],
    scale: str = "test",
    workloads: Optional[Iterable[str]] = None,
    runner: Optional[SuiteRunner] = None,
) -> Dict[str, object]:
    """One-call convenience: run, package, and write. Returns the doc."""
    if runner is None:
        runner = SuiteRunner(scale=scale)
    document = export_all(runner, workloads)
    save_json(document, path)
    return document

"""Experiment regeneration: the paper's tables and figures.

.. deprecated::
    Constructing :class:`SuiteRunner` directly from this package is
    deprecated; use :func:`repro.api.suite_runner` (or the
    :func:`repro.api.simulate` / :func:`repro.api.run_campaign` entry
    points) instead. The class re-exported here warns on construction.
"""

import warnings

from repro.analysis.export import export_all, export_json, save_json
from repro.analysis.figures import (
    DEFAULT_FRACTIONS,
    Figure7Point,
    PolicyStudyRow,
    figure7,
    figure7_series,
    gc_policy_study,
)
from repro.analysis.report import (
    render_figure7,
    render_policy_study,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)
from repro.analysis.calibrate import (
    Calibration,
    calibrate,
    render_calibration,
)
from repro.analysis.mixes import (
    InstructionMix,
    instruction_mix,
    render_mix_table,
    workload_mix,
)
from repro.analysis.runner import NativeRun
from repro.analysis.runner import SuiteRunner as _SuiteRunnerImpl
from repro.analysis.sweeps import (
    SweepPoint,
    best_variant,
    render_sweep,
    sweep_parameters,
)
from repro.analysis.tables import (
    Table2Row,
    Table3Row,
    Table4Row,
    Table5Row,
    table2,
    table3,
    table4,
    table5,
)

class SuiteRunner(_SuiteRunnerImpl):
    """Deprecated construction shim — see :func:`repro.api.suite_runner`."""

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "constructing SuiteRunner directly is deprecated; use "
            "repro.api.suite_runner(...) or the repro.api.simulate / "
            "repro.api.run_campaign entry points",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


__all__ = [
    "SuiteRunner",
    "NativeRun",
    "SweepPoint",
    "sweep_parameters",
    "render_sweep",
    "best_variant",
    "Calibration",
    "calibrate",
    "render_calibration",
    "InstructionMix",
    "instruction_mix",
    "workload_mix",
    "render_mix_table",
    "export_all",
    "export_json",
    "save_json",
    "table2",
    "table3",
    "table4",
    "table5",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "Table5Row",
    "figure7",
    "figure7_series",
    "gc_policy_study",
    "Figure7Point",
    "PolicyStudyRow",
    "DEFAULT_FRACTIONS",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_figure7",
    "render_policy_study",
]

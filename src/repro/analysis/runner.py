"""Suite runner — executes workloads under each simulator, with caching.

Tables 2–5 and Figure 7 all consume the same underlying measurements; a
:class:`SuiteRunner` runs each (workload, simulator, scale) combination
at most once per process and also times plain functional execution (the
stand-in for native hardware in the paper's slowdown columns).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.emulator.functional import Interpreter
from repro.memo.policies import ReplacementPolicy
from repro.sim.baseline import IntegratedSimulator
from repro.sim.fastsim import FastSim
from repro.sim.results import SimulationResult
from repro.sim.slowsim import SlowSim
from repro.uarch.params import ProcessorParams
from repro.workloads.suite import WORKLOAD_ORDER, load_workload

SIMULATORS = ("fast", "slow", "baseline")


@dataclass
class NativeRun:
    """Plain functional execution — the 'original program' row."""

    seconds: float
    instructions: int
    output: List[int]


@dataclass
class SuiteRunner:
    """Runs and caches (workload × simulator) measurements."""

    scale: str = "test"
    params: Optional[ProcessorParams] = None
    verbose: bool = False
    progress: Optional[Callable[[str], None]] = None
    _results: Dict[Tuple[str, str], SimulationResult] = field(
        default_factory=dict
    )
    _native: Dict[str, NativeRun] = field(default_factory=dict)

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)
        elif self.verbose:
            print(message, flush=True)

    # ------------------------------------------------------------------

    def native(self, name: str) -> NativeRun:
        """Functional-execution timing for workload *name*."""
        if name not in self._native:
            executable = load_workload(name, self.scale)
            interpreter = Interpreter(executable)
            started = time.perf_counter()
            interpreter.run()
            elapsed = time.perf_counter() - started
            self._native[name] = NativeRun(
                seconds=elapsed,
                instructions=interpreter.state.instret,
                output=list(interpreter.state.output),
            )
        return self._native[name]

    def run(self, name: str, simulator: str,
            policy: Optional[ReplacementPolicy] = None) -> SimulationResult:
        """Simulate workload *name* under *simulator*.

        Runs with a policy are never cached (the policy is part of the
        experiment).
        """
        key = (name, simulator)
        if policy is None and key in self._results:
            return self._results[key]
        executable = load_workload(name, self.scale)
        self._log(f"running {name} [{self.scale}] under {simulator}...")
        if simulator == "fast":
            result = FastSim(executable, params=self.params,
                             policy=policy).run()
        elif simulator == "slow":
            result = SlowSim(executable, params=self.params).run()
        elif simulator == "baseline":
            result = IntegratedSimulator(executable, params=self.params).run()
        else:
            raise ValueError(f"unknown simulator {simulator!r}")
        if policy is None:
            self._results[key] = result
        return result

    def run_all(self, workloads: Optional[Iterable[str]] = None,
                simulators: Iterable[str] = SIMULATORS,
                ) -> Dict[str, Dict[str, SimulationResult]]:
        """Run every (workload, simulator) pair; returns nested dict."""
        names = list(workloads) if workloads is not None else WORKLOAD_ORDER
        table: Dict[str, Dict[str, SimulationResult]] = {}
        for name in names:
            table[name] = {
                simulator: self.run(name, simulator)
                for simulator in simulators
            }
        return table

"""Suite runner — a memoizing facade over the campaign engine.

Tables 2–5 and Figure 7 all consume the same underlying measurements; a
:class:`SuiteRunner` runs each (workload, simulator, scale) combination
at most once per process and also times plain functional execution (the
stand-in for native hardware in the paper's slowdown columns).

Since the campaign engine landed, the runner no longer executes
anything itself: every measurement flows through
:func:`repro.campaign.worker.execute_job` — in-process for incremental
``run()`` calls, or sharded across a
:class:`~repro.campaign.engine.CampaignRunner` worker pool when
``workers >= 1`` and several measurements are needed at once
(:meth:`SuiteRunner.prefetch` / :meth:`SuiteRunner.run_all`). Passing
``cache_dir`` warm-starts FastSim runs from the shared on-disk p-action
cache store. Progress goes through one
:class:`~repro.campaign.progress.ProgressSink` (the old ``verbose`` /
``progress=callable`` arguments are adapted onto it).

Prefer constructing runners through :func:`repro.api.suite_runner`;
direct construction of the :class:`SuiteRunner` re-exported from
``repro.analysis`` is deprecated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.cachedir import make_store
from repro.campaign.engine import Campaign, CampaignRunner
from repro.campaign.jobs import Job, JobResult, NativeRun, PolicySpec
from repro.campaign.progress import (
    CallbackSink,
    NullSink,
    ProgressSink,
    TextSink,
)
from repro.campaign.worker import execute_job, simulate_executable
from repro.memo.policies import ReplacementPolicy
from repro.sim.results import SimulationResult
from repro.uarch.params import ProcessorParams
from repro.workloads.suite import WORKLOAD_ORDER, get_workload, load_workload

SIMULATORS = ("fast", "slow", "baseline")

__all__ = ["SIMULATORS", "NativeRun", "SuiteRunner"]


class SuiteError(RuntimeError):
    """A suite measurement failed (surfaced from a campaign job)."""


@dataclass
class SuiteRunner:
    """Runs and caches (workload × simulator) measurements."""

    scale: str = "test"
    params: Optional[ProcessorParams] = None
    verbose: bool = False
    #: Legacy progress callback; adapted onto ``sink`` when given.
    progress: Optional[Callable[[str], None]] = None
    #: Worker processes for batch methods (0 = serial, in-process).
    workers: int = 0
    #: Shared p-action cache directory for warm-started FastSim runs.
    cache_dir: Optional[str] = None
    #: Optional shared (remote-style) cache tier layered under
    #: ``cache_dir`` — see docs/distributed.md.
    shared_cache_dir: Optional[str] = None
    #: Per-job timeout / retry budget for the parallel path.
    timeout: Optional[float] = None
    retries: int = 2
    sink: Optional[ProgressSink] = None
    #: Optional :class:`repro.obs.Observer`; telemetry off when None.
    obs: Optional[object] = None
    #: Executor backend for the parallel path (``fork`` / ``subprocess``
    #: / ``queue``); None keeps the campaign default.
    backend: Optional[str] = None
    _results: Dict[Tuple[str, str], SimulationResult] = field(
        default_factory=dict
    )
    _native: Dict[str, NativeRun] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sink is None:
            if self.progress is not None:
                self.sink = CallbackSink(self.progress)
            elif self.verbose:
                self.sink = TextSink()
            else:
                self.sink = NullSink()
        self._store = make_store(self.cache_dir, self.shared_cache_dir)

    def _log(self, message: str) -> None:
        self.sink.log(message)

    # ------------------------------------------------------------------

    def job(self, name: str, simulator: str,
            policy: Optional[PolicySpec] = None) -> Job:
        """The campaign job for one suite measurement."""
        get_workload(name)  # fail fast on unknown names
        return Job(
            workload=name, simulator=simulator, scale=self.scale,
            params=self.params, policy=policy,
        )

    def _execute(self, job: Job) -> JobResult:
        """Run one job in-process; raise on failure."""
        self._log(f"running {job.workload} [{job.scale}] "
                  f"under {job.simulator}...")
        outcome = execute_job(job, self._store, obs=self.obs)
        if not outcome.ok:
            raise SuiteError(f"{job.key}: {outcome.error}")
        return outcome

    def native(self, name: str) -> NativeRun:
        """Functional-execution timing for workload *name*."""
        if name not in self._native:
            outcome = self._execute(self.job(name, "native"))
            self._native[name] = outcome.native
        return self._native[name]

    def run(self, name: str, simulator: str,
            policy: Optional[object] = None) -> SimulationResult:
        """Simulate workload *name* under *simulator*.

        Runs with a policy are never cached (the policy is part of the
        experiment). *policy* may be a declarative
        :class:`~repro.campaign.jobs.PolicySpec` or, for backwards
        compatibility, a live
        :class:`~repro.memo.policies.ReplacementPolicy` instance (run
        in-process so callers can inspect the instance afterwards).
        """
        if isinstance(policy, ReplacementPolicy):
            self._log(f"running {name} [{self.scale}] "
                      f"under {simulator}...")
            result, _ = simulate_executable(
                load_workload(name, self.scale), simulator,
                params=self.params, policy=policy, obs=self.obs,
            )
            return result
        key = (name, simulator)
        if policy is None and key in self._results:
            return self._results[key]
        outcome = self._execute(self.job(name, simulator, policy))
        if policy is None:
            self._results[key] = outcome.result
        return outcome.result

    # -- batch execution ------------------------------------------------

    def run_batch(self, jobs: Sequence[Job]) -> Dict[str, JobResult]:
        """Execute *jobs* (serially or on the worker pool) and return
        results keyed by job key. Raises on any failed job."""
        jobs = list(jobs)
        if not jobs:
            return {}
        if self.workers >= 1 and len(jobs) > 1:
            runner = CampaignRunner(
                workers=self.workers, cache_dir=self.cache_dir,
                timeout=self.timeout, retries=self.retries,
                sink=self.sink, obs=self.obs, backend=self.backend,
                shared_cache_dir=self.shared_cache_dir,
            )
            outcome = runner.run(Campaign(
                jobs=tuple(jobs), name=f"suite-{self.scale}"
            ))
            failures = outcome.failed
            if failures:
                summary = "; ".join(
                    f"{r.key}: {r.error}" for r in failures[:5]
                )
                raise SuiteError(
                    f"{len(failures)} campaign job(s) failed: {summary}"
                )
            results = list(outcome.results)
        else:
            results = [self._execute(job) for job in jobs]
        return {result.key: result for result in results}

    def prefetch(self, workloads: Optional[Iterable[str]] = None,
                 simulators: Iterable[str] = SIMULATORS,
                 include_native: bool = False) -> None:
        """Ensure measurements exist for every (workload, simulator)
        pair, executing the missing ones as one (possibly parallel)
        campaign."""
        names = (list(workloads) if workloads is not None
                 else list(WORKLOAD_ORDER))
        wanted: List[Job] = []
        for name in names:
            if include_native and name not in self._native:
                wanted.append(self.job(name, "native"))
            for simulator in simulators:
                if (name, simulator) not in self._results:
                    wanted.append(self.job(name, simulator))
        if not wanted:
            return
        for outcome in self.run_batch(wanted).values():
            if outcome.native is not None:
                self._native[outcome.job.workload] = outcome.native
            else:
                self._results[(outcome.job.workload,
                               outcome.job.simulator)] = outcome.result

    def run_all(self, workloads: Optional[Iterable[str]] = None,
                simulators: Iterable[str] = SIMULATORS,
                ) -> Dict[str, Dict[str, SimulationResult]]:
        """Run every (workload, simulator) pair; returns nested dict."""
        names = (list(workloads) if workloads is not None
                 else list(WORKLOAD_ORDER))
        simulators = list(simulators)
        self.prefetch(names, simulators)
        return {
            name: {
                simulator: self._results[(name, simulator)]
                for simulator in simulators
            }
            for name in names
        }

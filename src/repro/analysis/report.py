"""Plain-text rendering of the regenerated tables and figures.

Formats mirror the paper's tables so a side-by-side read is easy:
the same row order (integer benchmarks first, FP after) and the same
headline columns.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.analysis.figures import Figure7Point, PolicyStudyRow, figure7_series
from repro.analysis.tables import Table2Row, Table3Row, Table4Row, Table5Row


def _render(headers: Sequence[str], rows: Iterable[Sequence[str]],
            title: str) -> str:
    """Align columns; first column left-justified, the rest right."""
    body = [list(r) for r in rows]
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(
        h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
        for i, h in enumerate(headers)
    ))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        ))
    return "\n".join(lines)


def render_table2(rows: List[Table2Row]) -> str:
    return _render(
        ["Benchmark", "Program(s)", "SlowSim/Prog", "FastSim/Prog",
         "Slow/Fast"],
        [
            (r.spec_name, f"{r.program_seconds:.3f}",
             f"{r.slow_slowdown:.1f}", f"{r.fast_slowdown:.1f}",
             f"{r.speedup:.1f}")
            for r in rows
        ],
        "Table 2: FastSim vs SlowSim (memoization speedup; paper: 4.9-11.9)",
    )


def render_table3(rows: List[Table3Row]) -> str:
    return _render(
        ["Benchmark", "Cycles", "Insts", "Base Ki/s", "Slow Ki/s",
         "Fast Ki/s", "Slow/Base", "Fast/Base"],
        [
            (r.spec_name, f"{r.cycles}", f"{r.instructions}",
             f"{r.baseline_kinsts:.1f}", f"{r.slow_kinsts:.1f}",
             f"{r.fast_kinsts:.1f}", f"{r.slow_vs_baseline:.2f}",
             f"{r.fast_vs_baseline:.1f}")
            for r in rows
        ],
        "Table 3: FastSim vs integrated baseline "
        "(paper: direct-exec 1.1-2.1x, full FastSim 8.5-14.7x)",
    )


def render_table4(rows: List[Table4Row]) -> str:
    return _render(
        ["Benchmark", "Detailed", "Replay", "Detailed/Total"],
        [
            (r.spec_name, f"{r.detailed_instructions}",
             f"{r.replayed_instructions}",
             f"{100 * r.detailed_fraction:.3f}%")
            for r in rows
        ],
        "Table 4: instructions simulated in detail vs replayed "
        "(paper: <0.311%)",
    )


def render_table5(rows: List[Table5Row]) -> str:
    return _render(
        ["Benchmark", "Cache(KB)", "Configs", "Actions", "Act/Cfg",
         "Cyc/Cfg", "AvgChain", "MaxChain"],
        [
            (r.spec_name, f"{r.cache_bytes / 1024:.1f}",
             f"{r.static_configs}", f"{r.static_actions}",
             f"{r.actions_per_config:.1f}", f"{r.cycles_per_config:.1f}",
             f"{r.avg_chain:.0f}", f"{r.max_chain}")
            for r in rows
        ],
        "Table 5: memoization measurements "
        "(paper: 3.4-4.9 actions/config, 1.0-1.6 cycles/config)",
    )


def render_figure7(points: List[Figure7Point]) -> str:
    """Figure 7 as a grid: one row per benchmark, one column per limit."""
    series = figure7_series(points)
    fractions = sorted({p.limit_fraction for p in points})
    headers = ["Benchmark"] + [f"{int(f * 100)}%" for f in fractions]
    rows = []
    for name, line in series.items():
        by_fraction = {p.limit_fraction: p for p in line}
        rows.append(
            [name] + [
                f"{by_fraction[f].speedup:.1f}" if f in by_fraction else "-"
                for f in fractions
            ]
        )
    return _render(
        headers, rows,
        "Figure 7: memoization speedup vs p-action cache limit "
        "(% of unbounded size, flush-on-full)",
    )


def render_policy_study(rows: List[PolicyStudyRow]) -> str:
    return _render(
        ["Benchmark", "Policy", "Limit(KB)", "Speedup", "Collections",
         "Detail%", "Survival"],
        [
            (r.benchmark, r.policy, f"{r.limit_bytes / 1024:.1f}",
             f"{r.speedup:.1f}", f"{r.collections}",
             f"{100 * r.detailed_fraction:.2f}",
             f"{100 * r.survival_rate:.0f}%" if r.survival_rate is not None
             else "-")
            for r in rows
        ],
        "GC policy study (paper: collectors no better than flush-on-full; "
        "~18% survival)",
    )

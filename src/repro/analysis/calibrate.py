"""Timing-model calibration — recover latencies by measurement.

Runs the :mod:`repro.workloads.micro` kernels at two iteration counts
and differences the cycle counts, so fixed costs (startup, drain,
warm-up) cancel and the per-iteration cost emerges. The recovered
numbers are compared against the configured model parameters — an
end-to-end check that the pipeline actually exhibits its spec, the way
one would validate a real machine with lmbench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.assembler import assemble
from repro.sim.fastsim import FastSim
from repro.uarch.params import ProcessorParams
from repro.workloads import micro


@dataclass(frozen=True)
class Calibration:
    """One measured quantity versus its configured model value."""

    quantity: str
    measured: float  #: cycles per iteration (differenced)
    configured: Optional[float]  #: model parameter, when directly comparable
    note: str = ""


def _cycles_per_iteration(source_fn, n_small: int = 60,
                          n_large: int = 260,
                          params: Optional[ProcessorParams] = None) -> float:
    """Difference two run lengths to isolate the per-iteration cost."""
    small = FastSim(assemble(source_fn(n_small)), params=params).run()
    large = FastSim(assemble(source_fn(n_large)), params=params).run()
    return (large.cycles - small.cycles) / (n_large - n_small)


def calibrate(params: Optional[ProcessorParams] = None) -> List[Calibration]:
    """Measure the core latencies; returns one row per quantity."""
    if params is None:
        params = ProcessorParams.r10k()
    memory = params.memory
    results: List[Calibration] = []

    alu = _cycles_per_iteration(
        lambda n: micro.dependent_chain(n, ops_per_iter=16), params=params
    ) / 16
    results.append(Calibration(
        "dependent ALU op", alu, 1.0,
        "chain of adds; loop overhead amortised over 16 ops",
    ))

    l1 = _cycles_per_iteration(
        lambda n: micro.pointer_chase(n, ring_bytes=4096), params=params
    )
    results.append(Calibration(
        "load-to-use, L1 resident", l1,
        memory.l1_hit_latency + 1,
        "hit latency + 1 agen cycle; ring 4 KB",
    ))

    l2 = _cycles_per_iteration(
        lambda n: micro.pointer_chase(n, ring_bytes=64 * 1024),
        params=params,
    )
    results.append(Calibration(
        "load-to-use, L2 resident", l2,
        memory.l2_hit_latency + 1,
        "hit latency + 1 agen cycle; ring 64 KB (4x the L1)",
    ))

    divide = _cycles_per_iteration(micro.divide_chain, params=params)
    results.append(Calibration(
        "dependent integer divide", divide, 34.0,
        "sdiv latency + issue handshake dominates the iteration",
    ))

    fmul = _cycles_per_iteration(micro.fp_multiply_chain, params=params)
    results.append(Calibration(
        "dependent FP multiply", fmul, 2.0,
        "fmul latency; chain hides everything else",
    ))

    predictable = _cycles_per_iteration(
        lambda n: micro.branch_pattern(n, predictable=True), params=params
    )
    adversarial = _cycles_per_iteration(
        lambda n: micro.branch_pattern(n, predictable=False), params=params
    )
    results.append(Calibration(
        "branch misprediction penalty", adversarial - predictable, None,
        "alternating minus always-not-taken pattern; no single "
        "configured value (refetch + squash + rollback)",
    ))
    return results


def render_calibration(rows: List[Calibration]) -> str:
    lines = [
        "Timing-model calibration (measured by microbenchmark differencing)",
        "",
        f"{'quantity':32s} {'measured':>9s} {'model':>7s}  note",
    ]
    for row in rows:
        configured = f"{row.configured:.1f}" if row.configured is not None \
            else "-"
        lines.append(
            f"{row.quantity:32s} {row.measured:>8.2f} {configured:>7s}  "
            f"{row.note}"
        )
    return "\n".join(lines)

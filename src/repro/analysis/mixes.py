"""Instruction-mix profiling of workloads.

Characterises a program's dynamic instruction stream by functional-unit
class — the quantity that determines which pipeline resources it
stresses and (for this reproduction) whether a synthetic workload
actually has its SPEC95 namesake's signature. Purely functional: runs
the interpreter, no timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.emulator.functional import Interpreter
from repro.isa.opcodes import InstrClass
from repro.isa.program import Executable

#: Classes grouped for the summary columns.
MEMORY_CLASSES = (InstrClass.LOAD, InstrClass.STORE)
FP_CLASSES = (InstrClass.FALU, InstrClass.FMUL, InstrClass.FDIV,
              InstrClass.FSQRT)
CONTROL_CLASSES = (InstrClass.BRANCH, InstrClass.JUMP)


@dataclass
class InstructionMix:
    """Dynamic instruction-class histogram of one run."""

    counts: Dict[InstrClass, int] = field(default_factory=dict)
    total: int = 0

    def fraction(self, *classes: InstrClass) -> float:
        """Combined dynamic fraction of the given classes."""
        if not self.total:
            return 0.0
        return sum(self.counts.get(c, 0) for c in classes) / self.total

    @property
    def memory_fraction(self) -> float:
        return self.fraction(*MEMORY_CLASSES)

    @property
    def fp_fraction(self) -> float:
        return self.fraction(*FP_CLASSES)

    @property
    def control_fraction(self) -> float:
        return self.fraction(*CONTROL_CLASSES)

    @property
    def branch_fraction(self) -> float:
        return self.fraction(InstrClass.BRANCH)

    def summary(self) -> str:
        return (
            f"{self.total} instructions: "
            f"{100 * self.memory_fraction:.1f}% memory, "
            f"{100 * self.fp_fraction:.1f}% fp, "
            f"{100 * self.control_fraction:.1f}% control"
        )


def instruction_mix(executable: Executable,
                    max_instructions: int = 10_000_000) -> InstructionMix:
    """Execute *executable* functionally and histogram its classes."""
    interpreter = Interpreter(executable)
    mix = InstructionMix()
    counts = mix.counts
    executed = 0
    while not interpreter.state.halted and executed < max_instructions:
        instr = interpreter.step()
        iclass = instr.iclass
        counts[iclass] = counts.get(iclass, 0) + 1
        executed += 1
    mix.total = executed
    return mix


def workload_mix(name: str, scale: str = "tiny",
                 max_instructions: int = 10_000_000) -> InstructionMix:
    """Instruction mix of a suite workload."""
    from repro.workloads.suite import load_workload

    return instruction_mix(load_workload(name, scale), max_instructions)


def render_mix_table(scale: str = "tiny",
                     workloads: Optional[list] = None) -> str:
    """Mix table for the whole suite (or a subset)."""
    from repro.workloads.suite import WORKLOAD_ORDER

    names = workloads if workloads is not None else list(WORKLOAD_ORDER)
    lines = [
        "Dynamic instruction mix (functional execution)",
        "",
        f"{'workload':12s} {'insts':>8s} {'mem%':>6s} {'fp%':>6s} "
        f"{'branch%':>8s} {'jump%':>6s}",
    ]
    for name in names:
        mix = workload_mix(name, scale)
        lines.append(
            f"{name:12s} {mix.total:>8d} "
            f"{100 * mix.memory_fraction:>5.1f} "
            f"{100 * mix.fp_fraction:>6.1f} "
            f"{100 * mix.branch_fraction:>8.1f} "
            f"{100 * mix.fraction(InstrClass.JUMP):>6.1f}"
        )
    return "\n".join(lines)

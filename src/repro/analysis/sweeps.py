"""Architecture-study sweeps — the downstream use-case of a fast simulator.

The point of making simulation 10× faster (the paper's motivation:
"Microarchitectural simulation is an essential tool in the research and
design of processors") is to afford *more design points*. This module
sweeps processor-parameter variants over workloads with FastSim and
collates cycles/IPC per design point.

Each variant gets its own p-action cache (recorded actions encode one
pipeline's timing; the engine enforces this), but within a variant the
cache persists across that variant's workloads' repeated runs.

Example::

    from repro.analysis.sweeps import sweep_parameters, render_sweep
    from repro.uarch.params import ProcessorParams

    variants = {
        "1-alu": ProcessorParams(int_alus=1),
        "2-alu (R10K)": ProcessorParams.r10k(),
        "4-alu": ProcessorParams(int_alus=4),
    }
    points = sweep_parameters(variants, workloads=["go", "mgrid"])
    print(render_sweep(points))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.campaign.engine import run_jobs
from repro.campaign.jobs import Job
from repro.campaign.progress import ProgressSink
from repro.uarch.params import ProcessorParams
from repro.workloads.suite import WORKLOAD_ORDER


@dataclass(frozen=True)
class SweepPoint:
    """One (variant, workload) design-space measurement."""

    variant: str
    workload: str
    cycles: int
    instructions: int
    ipc: float
    mispredictions: int
    l1_miss_rate: float
    host_seconds: float


def sweep_parameters(
    variants: Dict[str, ProcessorParams],
    workloads: Optional[Iterable[str]] = None,
    scale: str = "test",
    workers: int = 0,
    cache_dir: Optional[str] = None,
    sink: Optional[ProgressSink] = None,
) -> List[SweepPoint]:
    """Simulate every workload under every parameter variant.

    Design points are independent, so the sweep is one campaign:
    ``workers >= 1`` shards it across a process pool, and ``cache_dir``
    warm-starts each variant's p-action cache from previous sweeps (the
    cache store keys on (binary, parameters), so variants never share
    recorded timing).
    """
    names = list(workloads) if workloads is not None else list(WORKLOAD_ORDER)
    jobs = [
        Job(workload=name, simulator="fast", scale=scale,
            params=params, variant=label)
        for label, params in variants.items()
        for name in names
    ]
    outcome = run_jobs(
        jobs, workers=workers, cache_dir=cache_dir, sink=sink,
        name=f"sweep-{scale}",
    )
    failures = outcome.failed
    if failures:
        raise RuntimeError(
            f"{len(failures)} sweep job(s) failed: "
            + "; ".join(f"{r.key}: {r.error}" for r in failures[:5])
        )
    points: List[SweepPoint] = []
    for job, job_result in zip(jobs, outcome.results):
        result = job_result.result
        cache = result.cache_stats
        accesses = cache.l1_load_hits + cache.l1_load_misses
        miss_rate = cache.l1_load_misses / accesses if accesses else 0.0
        points.append(SweepPoint(
            variant=job.variant,
            workload=job.workload,
            cycles=result.cycles,
            instructions=result.instructions,
            ipc=result.ipc,
            mispredictions=result.sim_stats.mispredictions,
            l1_miss_rate=miss_rate,
            host_seconds=result.host_seconds,
        ))
    return points


def render_sweep(points: List[SweepPoint]) -> str:
    """Render a sweep as workload rows × variant IPC columns."""
    variants: List[str] = []
    workloads: List[str] = []
    for point in points:
        if point.variant not in variants:
            variants.append(point.variant)
        if point.workload not in workloads:
            workloads.append(point.workload)
    by_key = {(p.variant, p.workload): p for p in points}
    header = ["workload"] + [f"{v} IPC" for v in variants]
    widths = [max(len(header[0]), max(len(w) for w in workloads))]
    widths += [max(len(h), 8) for h in header[1:]]
    lines = ["Design-space sweep (IPC per variant)", ""]
    lines.append("  ".join(
        h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
        for i, h in enumerate(header)
    ))
    lines.append("  ".join("-" * w for w in widths))
    for workload in workloads:
        row = [workload.ljust(widths[0])]
        for i, variant in enumerate(variants, start=1):
            point = by_key.get((variant, workload))
            cell = f"{point.ipc:.2f}" if point else "-"
            row.append(cell.rjust(widths[i]))
        lines.append("  ".join(row))
    return "\n".join(lines)


def best_variant(points: List[SweepPoint]) -> Dict[str, str]:
    """Per workload, the variant with the fewest cycles."""
    best: Dict[str, SweepPoint] = {}
    for point in points:
        current = best.get(point.workload)
        if current is None or point.cycles < current.cycles:
            best[point.workload] = point
    return {workload: point.variant for workload, point in best.items()}

"""Branch predictors.

The paper's processor model (Table 1) uses a 2-bit, 512-entry branch
history table; :class:`BimodalPredictor` reproduces it. The static
predictors exist for ablation benchmarks (how does memoization fare as
prediction quality changes?).

The predictor is deliberately *not* part of the memoized
μ-architecture state: FastSim's predictor is consulted by the
direct-execution instrumentation, and its influence reaches the timing
model only through the recorded predicted/actual outcome of each
branch — which is exactly an outcome edge in the p-action cache.
"""

from __future__ import annotations

from typing import List

TAKEN_THRESHOLD = 2  #: 2-bit counter values 2, 3 predict taken


class BranchPredictor:
    """Interface: predict a conditional branch and train on its outcome."""

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Return the predicted direction for the branch at *pc* and
        immediately train the predictor with the evaluated direction.

        The combined operation mirrors FastSim's instrumentation, which
        consults the predictor at execution time (including on wrong
        paths) in a single step.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all history."""

    @property
    def mispredictions(self) -> int:
        return self._mispredictions

    @property
    def predictions(self) -> int:
        return self._predictions

    _mispredictions = 0
    _predictions = 0

    def _tally(self, predicted: bool, taken: bool) -> None:
        self._predictions += 1
        if predicted != taken:
            self._mispredictions += 1


class BimodalPredictor(BranchPredictor):
    """2-bit saturating-counter branch history table (paper Table 1).

    Indexed by branch PC word-address bits; 512 entries by default.
    Counters start at 1 (weakly not-taken).
    """

    def __init__(self, entries: int = 512):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"table size must be a power of two: {entries}")
        self.entries = entries
        self._table: List[int] = [1] * entries
        self._mispredictions = 0
        self._predictions = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        # One call per conditional branch: ``_index``/``_tally`` are
        # inlined here (same arithmetic as the helpers).
        table = self._table
        index = (pc >> 2) & (self.entries - 1)
        counter = table[index]
        predicted = counter >= TAKEN_THRESHOLD
        if taken:
            if counter < 3:
                table[index] = counter + 1
        else:
            if counter > 0:
                table[index] = counter - 1
        self._predictions += 1
        if predicted != taken:
            self._mispredictions += 1
        return predicted

    def reset(self) -> None:
        self._table = [1] * self.entries
        self._mispredictions = 0
        self._predictions = 0


class GsharePredictor(BranchPredictor):
    """Global-history XOR-indexed 2-bit counters (McFarling's gshare).

    Not in the paper's 1998 model — provided as an ablation axis: better
    prediction means fewer rollbacks and fewer distinct control
    outcomes, which shifts both simulation speed and p-action cache
    shape. History length defaults to 8 bits.
    """

    def __init__(self, entries: int = 512, history_bits: int = 8):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"table size must be a power of two: {entries}")
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.entries = entries
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._table: List[int] = [1] * entries
        self._history = 0
        self._mispredictions = 0
        self._predictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & (self.entries - 1)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        index = self._index(pc)
        counter = self._table[index]
        predicted = counter >= TAKEN_THRESHOLD
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        else:
            if counter > 0:
                self._table[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & self._history_mask
        self._tally(predicted, taken)
        return predicted

    def reset(self) -> None:
        self._table = [1] * self.entries
        self._history = 0
        self._mispredictions = 0
        self._predictions = 0


class AlwaysTakenPredictor(BranchPredictor):
    """Predicts every branch taken (ablation baseline)."""

    def __init__(self) -> None:
        self._mispredictions = 0
        self._predictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        self._tally(True, taken)
        return True

    def reset(self) -> None:
        self._mispredictions = 0
        self._predictions = 0


class NotTakenPredictor(BranchPredictor):
    """Predicts every branch not taken (ablation baseline)."""

    def __init__(self) -> None:
        self._mispredictions = 0
        self._predictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        self._tally(False, taken)
        return False

    def reset(self) -> None:
        self._mispredictions = 0
        self._predictions = 0


class StaticBTFNPredictor(BranchPredictor):
    """Backward-taken / forward-not-taken static prediction.

    Needs the branch target to classify direction; the frontend passes
    branch PCs only, so this predictor receives the target through
    :meth:`set_target_resolver` (a callable mapping pc -> target).
    """

    def __init__(self, target_resolver=None):
        self._resolve = target_resolver
        self._mispredictions = 0
        self._predictions = 0

    def set_target_resolver(self, resolver) -> None:
        self._resolve = resolver

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        target = self._resolve(pc) if self._resolve else pc + 4
        predicted = target <= pc
        self._tally(predicted, taken)
        return predicted

    def reset(self) -> None:
        self._mispredictions = 0
        self._predictions = 0


def make_predictor(name: str, **kwargs) -> BranchPredictor:
    """Factory: ``bimodal`` (default), ``taken``, ``not-taken``, ``btfn``."""
    factories = {
        "bimodal": BimodalPredictor,
        "gshare": GsharePredictor,
        "taken": AlwaysTakenPredictor,
        "not-taken": NotTakenPredictor,
        "btfn": StaticBTFNPredictor,
    }
    try:
        return factories[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; choose from {sorted(factories)}"
        ) from None

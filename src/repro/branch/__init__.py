"""Branch predictors used by the speculative frontend and the baseline."""

from repro.branch.predictor import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    GsharePredictor,
    NotTakenPredictor,
    StaticBTFNPredictor,
    make_predictor,
)

__all__ = [
    "BranchPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "AlwaysTakenPredictor",
    "NotTakenPredictor",
    "StaticBTFNPredictor",
    "make_predictor",
]

"""Determinism lint (checker family 1).

FastSim's correctness claim is that replaying memoized p-actions is
**bit-identical** to detailed simulation. That only holds if the
simulator is a pure function of (configuration, outcome sequence) —
any value that differs between two host runs, or between the record
pass and the replay pass, poisons the recorded action chains.

Rules
-----

``det/unseeded-random`` (everywhere)
    Module-level ``random`` functions (``random.random()``,
    ``random.choice(...)``, a bare ``from random import randint``),
    ``random.Random()`` constructed without a seed, and other entropy
    sources (``os.urandom``, ``uuid.uuid4``, ``secrets``). Simulation
    inputs must flow from an explicit ``random.Random(seed)``.

``det/time-dependent`` (record/replay path only)
    Wall/CPU-clock reads (``time.time``, ``perf_counter``,
    ``datetime.now``, …). Host time differs between record and replay.

``det/id-dependent`` (record/replay path only)
    ``id(...)`` — CPython addresses differ run to run, so an ``id``
    must never reach an outcome key, edge table, or statistic.
    Exempt: id() used purely as an identity *key* (set membership,
    dict subscript/key) — both runs see the same partition even
    though the raw addresses differ (:func:`identity_key_uses`).

``det/salted-hash`` (record/replay path only)
    Builtin ``hash(...)`` — string hashing is salted per process
    (``PYTHONHASHSEED``), the classic cross-run nondeterminism.

``det/set-iteration`` (record/replay path only)
    Iterating a set (directly, via a local assigned from a set
    expression, or via ``list``/``tuple`` conversion). Set order is
    arbitrary, so it may differ between the recording run and a replay
    that reconstructed an equal set. ``sorted(...)`` wrapping is the
    sanctioned fix.

``det/dict-value-iteration`` (record/replay path only)
    Iterating ``.values()`` / ``.keys()`` / ``.items()``. Two dicts
    that compare equal (as memoized configurations do) may still have
    different insertion orders, so iteration order is not part of the
    configuration key. ``sorted(...)`` wrapping is the sanctioned fix.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.registry import Checker, LintContext, register

#: ``random`` module functions that consume the shared global RNG.
GLOBAL_RNG_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
})

#: (module, attribute) calls that read a host clock.
CLOCK_CALLS = frozenset({
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "process_time"), ("time", "process_time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
})

#: (module, attribute) calls that read OS entropy.
ENTROPY_CALLS = frozenset({
    ("os", "urandom"), ("uuid", "uuid1"), ("uuid", "uuid4"),
})

# Back-compat aliases (the tables predate the flow session, which
# shares them interprocedurally and needed them public).
_GLOBAL_RNG_FUNCS = GLOBAL_RNG_FUNCS
_CLOCK_CALLS = CLOCK_CALLS
_ENTROPY_CALLS = ENTROPY_CALLS

#: Rules that fire only with strict scoping: on record/replay-path
#: modules in per-file mode, or inside computed replay-reachable
#: functions in ``--flow`` mode. ``det/unseeded-random`` fires
#: everywhere and is deliberately absent.
STRICT_ONLY_RULES = frozenset({
    "det/time-dependent",
    "det/id-dependent",
    "det/salted-hash",
    "det/set-iteration",
    "det/dict-value-iteration",
})

#: Set-method calls that yield a new (unordered) set.
_SET_PRODUCING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


def _is_id_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id")


def identity_key_uses(tree: ast.AST) -> Set[int]:
    """``id(...)`` calls used purely as identity *keys* — membership
    tests, set elements, dict subscripts/keys — returned as AST node
    ids. An id() value that only ever partitions objects by identity
    (and is never ordered, recorded, or arithmetic on) is replay-safe:
    both record and replay see the same partition even though the raw
    addresses differ. ``det/id-dependent`` skips these uses."""
    absolved: Set[int] = set()

    def absolve(candidate: ast.AST) -> None:
        if _is_id_call(candidate):
            absolved.add(id(candidate))

    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("add", "discard", "remove")
                and len(node.args) == 1 and not node.keywords):
            absolve(node.args[0])
        elif isinstance(node, ast.Compare):
            if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
                absolve(node.left)
                for comparator in node.comparators:
                    absolve(comparator)
        elif isinstance(node, ast.Subscript):
            absolve(node.slice)
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    absolve(key)
        elif isinstance(node, (ast.Set, ast.SetComp)):
            for element in (node.elts if isinstance(node, ast.Set)
                            else [node.elt]):
                absolve(element)
        elif isinstance(node, ast.DictComp):
            absolve(node.key)
    return absolved


def _is_set_expr(node: ast.AST, set_locals: Set[str]) -> bool:
    """Heuristic: does *node* evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (isinstance(func, ast.Attribute)
                and func.attr in _SET_PRODUCING_METHODS
                and _is_set_expr(func.value, set_locals)):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_locals)
                or _is_set_expr(node.right, set_locals))
    return False


class _Scope:
    """Tracks local names assigned from set expressions in one scope."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, context: LintContext):
        self.context = context
        self.findings: List[Finding] = []
        #: local name -> module it aliases (``import random as rnd``)
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (module, attr) for ``from x import y``
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        self.scopes: List[_Scope] = [_Scope()]
        #: id() calls used purely as identity keys (never flagged).
        self.absolved_ids = identity_key_uses(context.tree)

    # -- helpers --------------------------------------------------------

    def _emit(self, node: ast.AST, rule: str, severity: Severity,
              message: str) -> None:
        self.findings.append(Finding(
            path=self.context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            severity=severity,
            message=message,
        ))

    def _resolve_call(self, node: ast.Call):
        """Resolve a call target to ('module', 'attr') where possible."""
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                module = self.module_aliases.get(base.id)
                if module is not None:
                    return module, func.attr
                # ``datetime.datetime.now`` style: Name is a from-import.
                origin = self.from_imports.get(base.id)
                if origin is not None and origin == ("datetime", "datetime"):
                    return "datetime", func.attr
            elif (isinstance(base, ast.Attribute)
                  and isinstance(base.value, ast.Name)):
                module = self.module_aliases.get(base.value.id)
                if module == "datetime" and base.attr == "datetime":
                    return "datetime", func.attr
            return None
        if isinstance(func, ast.Name):
            return self.from_imports.get(func.id)
        return None

    @property
    def _set_locals(self) -> Set[str]:
        return self.scopes[-1].set_names

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    node.module, alias.name
                )
        self.generic_visit(node)

    # -- scope management -----------------------------------------------

    def _visit_function(self, node) -> None:
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self._set_locals):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_locals.add(target.id)
        else:
            # A rebind to a non-set value clears the tracking.
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_locals.discard(target.id)
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve_call(node)
        if resolved is not None:
            module, attr = resolved
            if module == "random" and attr in _GLOBAL_RNG_FUNCS:
                self._emit(
                    node, "det/unseeded-random", Severity.ERROR,
                    f"call to the shared global RNG random.{attr}(); "
                    "thread an explicit seeded random.Random through "
                    "instead",
                )
            elif module == "random" and attr == "Random" and not node.args:
                self._emit(
                    node, "det/unseeded-random", Severity.ERROR,
                    "random.Random() constructed without a seed draws "
                    "from OS entropy; pass an explicit seed",
                )
            elif module == "secrets" or resolved in _ENTROPY_CALLS:
                self._emit(
                    node, "det/unseeded-random", Severity.ERROR,
                    f"{module}.{attr}() reads OS entropy and can never "
                    "replay identically",
                )
            elif self.context.strict and resolved in _CLOCK_CALLS:
                self._emit(
                    node, "det/time-dependent", Severity.ERROR,
                    f"{module}.{attr}() reads a host clock inside the "
                    "record/replay path; host time differs between "
                    "record and replay",
                )
        if self.context.strict and isinstance(node.func, ast.Name):
            if node.func.id == "id" and id(node) not in self.absolved_ids:
                self._emit(
                    node, "det/id-dependent", Severity.ERROR,
                    "id() values are CPython addresses and differ "
                    "between runs; never let one reach recorded actions "
                    "or outcome keys",
                )
            elif node.func.id == "hash":
                self._emit(
                    node, "det/salted-hash", Severity.ERROR,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); use hashlib for stable digests",
                )
        self.generic_visit(node)

    # -- iteration ------------------------------------------------------

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if not self.context.strict:
            return
        if _is_set_expr(iter_node, self._set_locals):
            self._emit(
                iter_node, "det/set-iteration", Severity.WARNING,
                "iterating a set in the record/replay path; set order "
                "is arbitrary and may differ between record and "
                "replay — iterate sorted(...) instead",
            )
            return
        if (isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Attribute)
                and iter_node.func.attr in ("values", "keys", "items")
                and not iter_node.args and not iter_node.keywords):
            self._emit(
                iter_node, "det/dict-value-iteration", Severity.WARNING,
                f"iterating .{iter_node.func.attr}() in the record/"
                "replay path; equal dicts can differ in insertion "
                "order — iterate sorted(...) instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Starred(self, node: ast.Starred) -> None:
        if self.context.strict and _is_set_expr(node.value,
                                                self._set_locals):
            self._emit(
                node, "det/set-iteration", Severity.WARNING,
                "unpacking a set in the record/replay path; order is "
                "arbitrary — sort first",
            )
        self.generic_visit(node)


def _flag_conversions(visitor: _DeterminismVisitor,
                      tree: ast.Module) -> None:
    """Flag ``list(<set>)`` / ``tuple(<set>)`` — ordered views of an
    unordered container. (Done in a second pass so the scope tracking
    from the main walk is complete at module level.)"""
    # Handled inline by visit_Call? No: list()/tuple() need set-locals
    # context, so the simple module-level approximation lives here.
    class _Conversions(ast.NodeVisitor):
        def visit_Call(self, node: ast.Call) -> None:
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                    and node.args
                    and _is_set_expr(node.args[0], set())):
                visitor._emit(
                    node, "det/set-iteration", Severity.WARNING,
                    f"{node.func.id}(...) of a set freezes an "
                    "arbitrary order into a sequence — use "
                    "sorted(...) instead",
                )
            self.generic_visit(node)

    if visitor.context.strict:
        _Conversions().visit(tree)


@register
class DeterminismChecker(Checker):
    """Family 1: unseeded randomness, clocks, identity, unordered
    iteration — everything that can differ between record and replay."""

    name = "determinism"
    rules = (
        "det/unseeded-random",
        "det/time-dependent",
        "det/id-dependent",
        "det/salted-hash",
        "det/set-iteration",
        "det/dict-value-iteration",
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        visitor = _DeterminismVisitor(context)
        visitor.visit(context.tree)
        _flag_conversions(visitor, context.tree)
        yield from visitor.findings

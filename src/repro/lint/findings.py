"""Finding and severity model for ``repro.lint``.

A :class:`Finding` is one diagnostic produced by a checker: a stable
rule identifier (``family/rule-name``), a severity, a source position,
and a human-readable message. Findings are plain data — reporters
(:mod:`repro.lint.reporters`) turn them into text or JSON, and the
runner's exit code depends only on whether any findings survived
suppression.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Union


class Severity(enum.IntEnum):
    """How bad a finding is.

    ``ERROR`` findings describe code that can break the bit-identical
    replay invariant (or an assembly program that is wrong); ``WARNING``
    findings describe hazards that are suspicious but may be benign.
    Both fail the lint gate — the distinction exists for reporting and
    for tools that want to triage.
    """

    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, sortable by (path, line, col, rule)."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-serializable form (see docs/lint.md for the schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line ``path:line:col: severity: message [rule]`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.label}: {self.message} [{self.rule}]"
        )

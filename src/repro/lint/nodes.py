"""Action-node discipline checker (checker family 3).

P-action cache nodes (:mod:`repro.memo.actions`) are allocated in the
millions and carry a *modelled* byte-size accounting that Table 5 and
Figure 7 depend on. Three structural rules keep new node kinds honest.
The checker triggers on any module that defines a class named ``Node``
and analyses its in-module subclass hierarchy (so fixtures exercise it
exactly like the real ``memo/actions.py``):

``memo/missing-slots`` (error)
    Every class in the ``Node`` hierarchy declares ``__slots__``.
    Without it each node grows a per-instance ``__dict__`` — real
    memory the size accounting can't see, and an invitation to stash
    undeclared state on nodes.

``memo/unaccounted-container`` (error)
    A node ``__init__`` that assigns a container (``{}``, ``[]``,
    ``set()``, …) must come with a ``size_bytes`` override somewhere
    below the root ``Node`` in its ancestry — a container grows, so
    the root's fixed ``ACTION_BYTES`` model cannot cover it. (This is
    exactly the ``OutcomeNode.edges`` / ``EDGE_BYTES`` pattern.)

``memo/outcome-next-assignment`` (error)
    Outcome-bearing nodes (``is_outcome = True`` or descendants of
    ``OutcomeNode``) must route successors through their edge tables
    only: assigning ``self.next`` on one would smuggle a world
    interaction result past the outcome-keyed edges that replay
    checks, breaking the fall-back-on-unseen-outcome guarantee.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.lint.findings import Finding, Severity
from repro.lint.registry import Checker, LintContext, register

#: Calls whose result is a growable container.
_CONTAINER_CALLS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "deque",
    "Counter", "bytearray",
})


def _is_container_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _CONTAINER_CALLS
    return False


class _Hierarchy:
    """The ``Node`` class hierarchy of one module."""

    def __init__(self, tree: ast.Module):
        self.classes: Dict[str, ast.ClassDef] = {
            node.name: node for node in tree.body
            if isinstance(node, ast.ClassDef)
        }
        self.bases: Dict[str, List[str]] = {
            name: [base.id for base in node.bases
                   if isinstance(base, ast.Name)]
            for name, node in self.classes.items()
        }

    @property
    def rooted(self) -> bool:
        return "Node" in self.classes

    def node_classes(self) -> List[ast.ClassDef]:
        """Classes in the hierarchy rooted at ``Node`` (root included),
        in source order."""
        member: Set[str] = set()

        def descends(name: str) -> bool:
            if name == "Node":
                return True
            if name in member:
                return True
            return any(base in self.classes and descends(base)
                       for base in self.bases.get(name, ()))

        for name in self.classes:
            if descends(name):
                member.add(name)
        return [self.classes[name] for name in self.classes
                if name in member]

    def ancestry(self, name: str) -> List[str]:
        """*name* plus every in-module ancestor up to ``Node``."""
        chain: List[str] = []
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in chain or current not in self.classes:
                continue
            chain.append(current)
            frontier.extend(self.bases.get(current, ()))
        return chain

    def defines(self, name: str, method: str) -> bool:
        node = self.classes.get(name)
        if node is None:
            return False
        return any(
            isinstance(stmt, ast.FunctionDef) and stmt.name == method
            for stmt in node.body
        )

    def sets_outcome_flag(self, name: str) -> bool:
        node = self.classes.get(name)
        if node is None:
            return False
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == "is_outcome"
                            and isinstance(stmt.value, ast.Constant)
                            and stmt.value.value is True):
                        return True
        return False

    def is_outcome_class(self, name: str) -> bool:
        return any(
            ancestor == "OutcomeNode" or self.sets_outcome_flag(ancestor)
            for ancestor in self.ancestry(name)
        )

    def accounts_for_growth(self, name: str) -> bool:
        """True when *name* or a non-root ancestor overrides
        ``size_bytes`` (the root's fixed model never covers growth)."""
        return any(
            ancestor != "Node" and self.defines(ancestor, "size_bytes")
            for ancestor in self.ancestry(name)
        )


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets):
            return True
    return False


def _self_attr_assignments(node: ast.ClassDef):
    """Yield (method_name, attr, value_or_None, node) for every
    ``self.<attr>`` assignment in the class body."""
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets, value = [stmt.target], getattr(stmt, "value", None)
            else:
                continue
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    yield method.name, target.attr, value, target


@register
class ActionNodeChecker(Checker):
    """Family 3: structural discipline for p-action cache node types."""

    name = "action-nodes"
    rules = (
        "memo/missing-slots",
        "memo/unaccounted-container",
        "memo/outcome-next-assignment",
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        hierarchy = _Hierarchy(context.tree)
        if not hierarchy.rooted:
            return
        for class_node in hierarchy.node_classes():
            yield from self._check_class(context, hierarchy, class_node)

    def _check_class(self, context: LintContext, hierarchy: _Hierarchy,
                     class_node: ast.ClassDef) -> Iterator[Finding]:
        if not _declares_slots(class_node):
            yield Finding(
                path=context.path, line=class_node.lineno,
                col=class_node.col_offset + 1,
                rule="memo/missing-slots", severity=Severity.ERROR,
                message=(
                    f"p-action node class {class_node.name} must declare "
                    "__slots__; an instance __dict__ is unaccounted "
                    "memory and an opening for undeclared node state"
                ),
            )
        outcome = hierarchy.is_outcome_class(class_node.name)
        accounted = hierarchy.accounts_for_growth(class_node.name)
        for method, attr, value, where in _self_attr_assignments(class_node):
            if (outcome and attr == "next"
                    and class_node.name != "OutcomeNode"):
                yield Finding(
                    path=context.path,
                    line=where.lineno, col=where.col_offset + 1,
                    rule="memo/outcome-next-assignment",
                    severity=Severity.ERROR,
                    message=(
                        f"{class_node.name} is outcome-bearing: "
                        "successors must go through the edge table "
                        "(self.edges), never self.next — a bare "
                        "successor bypasses the outcome check that "
                        "triggers fall-back on unseen results"
                    ),
                )
            if (value is not None and _is_container_expr(value)
                    and not accounted):
                yield Finding(
                    path=context.path,
                    line=where.lineno, col=where.col_offset + 1,
                    rule="memo/unaccounted-container",
                    severity=Severity.ERROR,
                    message=(
                        f"{class_node.name}.{attr} holds a growable "
                        "container but no size_bytes override exists "
                        "below Node in its ancestry; the fixed "
                        "ACTION_BYTES model cannot cover growth "
                        "(see OutcomeNode.edges / EDGE_BYTES)"
                    ),
                )

"""``python -m repro.lint`` — same behaviour as ``fastsim-lint``."""

import sys

from repro.lint.runner import main

if __name__ == "__main__":
    sys.exit(main())

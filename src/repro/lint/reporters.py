"""Finding reporters: text for humans, JSON and SARIF for CI tooling.

The JSON document shape is stable (see docs/lint.md)::

    {
      "version": 1,
      "findings": [{"path", "line", "col", "rule", "severity",
                    "message"}, ...],
      "counts": {"error": E, "warning": W, "total": N}
    }

The SARIF reporter emits a minimal-but-valid SARIF 2.1.0 log (one run,
one ``results`` array, rules declared in the tool component) so GitHub
code scanning and other SARIF consumers can ingest lint output
directly. :func:`validate_sarif` structurally checks a document
against the parts of the 2.1.0 schema we rely on — CI runs it on the
uploaded artifact, so a reporter regression fails the gate instead of
silently producing an artifact no consumer accepts.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.lint.findings import Finding, Severity

#: Schema version of the JSON report.
JSON_VERSION = 1

#: SARIF constants (2.1.0 is the only published version).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Finding severity -> SARIF result level.
_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def count_by_severity(findings: List[Finding]) -> Dict[str, int]:
    """``{"error": E, "warning": W, "total": N}`` for *findings*."""
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = sum(1 for f in findings if f.severity is Severity.WARNING)
    return {"error": errors, "warning": warnings, "total": len(findings)}


def render_text(findings: List[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    counts = count_by_severity(findings)
    lines = [finding.render() for finding in findings]
    if counts["total"]:
        lines.append(
            f"{counts['total']} finding(s): {counts['error']} error(s), "
            f"{counts['warning']} warning(s)"
        )
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """Machine-readable report (sorted keys, trailing-newline-free)."""
    document = {
        "version": JSON_VERSION,
        "findings": [finding.as_dict() for finding in findings],
        "counts": count_by_severity(findings),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def sarif_document(findings: List[Finding],
                   rule_ids: Optional[Sequence[str]] = None) -> Dict:
    """SARIF 2.1.0 log for *findings* as a plain dict.

    *rule_ids* declares the tool's full rule set in the driver (so
    consumers can show rules that produced no results); it defaults to
    the rules appearing in *findings*.
    """
    if rule_ids is None:
        rule_ids = sorted({finding.rule for finding in findings})
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "fastsim-lint",
                    "informationUri": (
                        "https://example.invalid/fastsim-repro/"
                        "docs/lint.md"
                    ),
                    "rules": [{"id": rule} for rule in rule_ids],
                },
            },
            "results": results,
        }],
    }


def render_sarif(findings: List[Finding],
                 rule_ids: Optional[Sequence[str]] = None) -> str:
    """SARIF 2.1.0 log for *findings*, serialized."""
    return json.dumps(sarif_document(findings, rule_ids), indent=2,
                      sort_keys=True)


def validate_sarif(document: Dict) -> List[str]:
    """Structural SARIF 2.1.0 validation; returns problems (empty =
    valid). Checks the required properties and types the 2.1.0 schema
    mandates for the subset of SARIF this reporter emits."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> bool:
        if not condition:
            problems.append(message)
        return condition

    if not expect(isinstance(document, dict), "document must be an object"):
        return problems
    expect(document.get("version") == SARIF_VERSION,
           f"version must be '{SARIF_VERSION}'")
    runs = document.get("runs")
    if not expect(isinstance(runs, list) and runs,
                  "runs must be a non-empty array"):
        return problems
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not expect(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if expect(isinstance(driver, dict),
                  f"{where}.tool.driver is required"):
            expect(isinstance(driver.get("name"), str) and driver["name"],
                   f"{where}.tool.driver.name must be a non-empty string")
            for j, rule in enumerate(driver.get("rules", [])):
                expect(isinstance(rule, dict)
                       and isinstance(rule.get("id"), str),
                       f"{where}.tool.driver.rules[{j}].id is required")
        results = run.get("results", [])
        if not expect(isinstance(results, list),
                      f"{where}.results must be an array"):
            continue
        for j, result in enumerate(results):
            spot = f"{where}.results[{j}]"
            if not expect(isinstance(result, dict),
                          f"{spot} must be an object"):
                continue
            message = result.get("message")
            expect(isinstance(message, dict)
                   and isinstance(message.get("text"), str),
                   f"{spot}.message.text is required")
            expect(result.get("level") in
                   ("none", "note", "warning", "error"),
                   f"{spot}.level must be a SARIF level")
            for k, location in enumerate(result.get("locations", [])):
                physical = location.get("physicalLocation") \
                    if isinstance(location, dict) else None
                if not expect(isinstance(physical, dict),
                              f"{spot}.locations[{k}].physicalLocation "
                              "is required"):
                    continue
                artifact = physical.get("artifactLocation")
                expect(isinstance(artifact, dict)
                       and isinstance(artifact.get("uri"), str),
                       f"{spot}.locations[{k}]...artifactLocation.uri "
                       "is required")
                region = physical.get("region")
                if isinstance(region, dict):
                    start = region.get("startLine")
                    expect(isinstance(start, int) and start >= 1,
                           f"{spot}.locations[{k}]...region.startLine "
                           "must be a positive integer")
    return problems

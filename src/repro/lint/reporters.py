"""Finding reporters: text for humans, JSON for CI tooling.

The JSON document shape is stable (see docs/lint.md)::

    {
      "version": 1,
      "findings": [{"path", "line", "col", "rule", "severity",
                    "message"}, ...],
      "counts": {"error": E, "warning": W, "total": N}
    }
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.findings import Finding, Severity

#: Schema version of the JSON report.
JSON_VERSION = 1


def count_by_severity(findings: List[Finding]) -> Dict[str, int]:
    """``{"error": E, "warning": W, "total": N}`` for *findings*."""
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = sum(1 for f in findings if f.severity is Severity.WARNING)
    return {"error": errors, "warning": warnings, "total": len(findings)}


def render_text(findings: List[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    counts = count_by_severity(findings)
    lines = [finding.render() for finding in findings]
    if counts["total"]:
        lines.append(
            f"{counts['total']} finding(s): {counts['error']} error(s), "
            f"{counts['warning']} warning(s)"
        )
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """Machine-readable report (sorted keys, trailing-newline-free)."""
    document = {
        "version": JSON_VERSION,
        "findings": [finding.as_dict() for finding in findings],
        "counts": count_by_severity(findings),
    }
    return json.dumps(document, indent=2, sort_keys=True)

"""Static analysis guarding the bit-identical replay invariant.

FastSim's headline claim — memoized fast-forwarding produces exactly
the simulation the detailed model would have produced — only survives
contact with new code if that code stays deterministic and keeps all
pipeline state inside the configuration key. ``repro.lint`` enforces
both properties statically, plus structural discipline on p-action
cache nodes and correctness lint for assembly workloads:

========================  ===========================================
checker family            module
========================  ===========================================
determinism               :mod:`repro.lint.determinism`
memo-safety               :mod:`repro.lint.memosafety`
action-node discipline    :mod:`repro.lint.nodes`
ISA program lint          :mod:`repro.lint.asmlint`
flow session (project)    :mod:`repro.lint.flow` (taint, effects,
                          codegen contracts — ``--flow``)
========================  ===========================================

The per-file families above see one module at a time; the flow session
parses the whole package, computes replay reachability from the call
graph, and layers interprocedural checkers on top (docs/lint.md,
"Two tiers").

Entry points: ``fastsim-repro lint`` / ``fastsim-repro lint-asm``
(CLI), the ``fastsim-lint`` console script, or programmatically::

    from repro.lint import lint_source
    findings = lint_source(code, path="repro/memo/engine.py")

Rule catalogue, suppression syntax, and the JSON report schema are
documented in docs/lint.md.
"""

from repro.lint.findings import Finding, Severity
from repro.lint.registry import (
    CHECKERS,
    PROJECT_CHECKERS,
    REPLAY_PATH_SUFFIXES,
    Checker,
    LintContext,
    ProjectChecker,
    all_rules,
    is_replay_path,
    register,
    register_project,
    run_checkers,
)
from repro.lint.suppress import (
    apply_suppressions,
    file_suppressions_for,
    suppressions_for,
)
from repro.lint.asmlint import ASM_RULES, lint_asm_source
from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    make_baseline,
    save_baseline,
)
from repro.lint.reporters import render_sarif, validate_sarif
from repro.lint.runner import (
    discover,
    exit_code,
    lint_asm_file,
    lint_file,
    lint_flow,
    lint_paths,
    lint_source,
    main,
    report,
)

__all__ = [
    "ASM_RULES",
    "CHECKERS",
    "Checker",
    "Finding",
    "LintContext",
    "PROJECT_CHECKERS",
    "ProjectChecker",
    "REPLAY_PATH_SUFFIXES",
    "Severity",
    "all_rules",
    "apply_baseline",
    "apply_suppressions",
    "discover",
    "exit_code",
    "file_suppressions_for",
    "fingerprint",
    "is_replay_path",
    "lint_asm_file",
    "lint_asm_source",
    "lint_file",
    "lint_flow",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "make_baseline",
    "render_sarif",
    "report",
    "register",
    "register_project",
    "run_checkers",
    "save_baseline",
    "suppressions_for",
    "validate_sarif",
]

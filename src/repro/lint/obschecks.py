"""Observability-safety checker (checker family ``obs/``).

``repro.obs`` guarantees that telemetry never changes simulated
behaviour: with observability off every hook resolves to the
:data:`repro.obs.core.NULL_OBS` null object and does nothing. That
guarantee only holds if instrumented code treats hook calls as
*write-only*: a hook's return value must never flow back into the
simulation (it differs between the live and null observers), and the
expressions passed *to* a hook must not mutate anything (they are pure
reads that could legally be skipped when obs is off).

This family enforces both properties statically over any call that
syntactically targets an observer — ``obs.<hook>(...)``,
``self.obs.<hook>(...)``, ``self._obs.<hook>(...)`` and the like, for
the hook names in :data:`repro.obs.core.HOOK_NAMES`:

``obs/result-used`` (error)
    An obs hook call whose result is consumed — assigned, returned,
    compared, used as a condition, or bound with ``with ... as``.
    Only two shapes are allowed: a bare expression statement, and an
    un-bound ``with`` item (the span form).

``obs/mutating-arg`` (error)
    An argument expression of an obs hook call that can mutate state:
    a walrus assignment (``:=``) or a call to a known mutating method
    (``append``, ``pop``, ``update``, …). Hook arguments must stay
    side-effect-free or the obs-off and obs-on runs diverge.

CI runs this family strict over ``src/repro/obs`` and the instrumented
modules; suppression comments (``# repro-lint: disable=obs/...``) work
as for every other family.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding, Severity
from repro.lint.registry import Checker, LintContext, register
from repro.obs.core import HOOK_NAMES

#: Method names whose call mutates the receiver — forbidden inside obs
#: hook arguments (the canonical accidental-state-change shapes).
MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "pop", "popleft", "popitem", "remove", "reverse",
    "setdefault", "sort", "update", "write", "writelines",
})


def _is_obs_receiver(node: ast.expr) -> bool:
    """True when *node* names an observer: ``obs``, ``x.obs``, ``_obs``."""
    if isinstance(node, ast.Name):
        return node.id == "obs" or node.id.endswith("_obs")
    if isinstance(node, ast.Attribute):
        return node.attr == "obs" or node.attr.endswith("_obs")
    return False


def _is_hook_call(node: ast.AST) -> bool:
    """True for ``<observer>.<hook>(...)`` calls."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in HOOK_NAMES
            and _is_obs_receiver(node.func.value))


@register
class ObsSafetyChecker(Checker):
    """Family ``obs/``: telemetry hooks must be write-only and their
    arguments side-effect-free (zero-overhead-when-off contract)."""

    name = "obs-safety"
    rules = ("obs/result-used", "obs/mutating-arg")

    def check(self, context: LintContext) -> Iterator[Finding]:
        allowed: Set[int] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Expr) and _is_hook_call(node.value):
                allowed.add(id(node.value))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if not _is_hook_call(item.context_expr):
                        continue
                    if item.optional_vars is None:
                        allowed.add(id(item.context_expr))
                    # `with obs.span(...) as x` binds the result and
                    # stays disallowed: x is None on the null path.
        for node in ast.walk(context.tree):
            if not _is_hook_call(node):
                continue
            if id(node) not in allowed:
                yield Finding(
                    path=context.path, line=node.lineno,
                    col=node.col_offset + 1,
                    rule="obs/result-used", severity=Severity.ERROR,
                    message=(
                        f"result of obs hook '{node.func.attr}' is "
                        "consumed: hooks return null-object values "
                        "when telemetry is off, so their results must "
                        "be discarded (bare statement or un-bound "
                        "`with` item)"
                    ),
                )
            yield from self._check_args(context, node)

    def _check_args(self, context: LintContext,
                    call: ast.Call) -> Iterator[Finding]:
        values = list(call.args)
        values.extend(keyword.value for keyword in call.keywords)
        for value in values:
            for inner in ast.walk(value):
                if isinstance(inner, ast.NamedExpr):
                    yield self._mutating(
                        context, call, inner,
                        "walrus assignment inside an obs hook argument"
                    )
                elif (isinstance(inner, ast.Call)
                      and isinstance(inner.func, ast.Attribute)
                      and inner.func.attr in MUTATING_METHODS):
                    yield self._mutating(
                        context, call, inner,
                        f"call to mutating method "
                        f"'.{inner.func.attr}()' inside an obs hook "
                        "argument"
                    )

    @staticmethod
    def _mutating(context: LintContext, call: ast.Call,
                  node: ast.AST, what: str) -> Finding:
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", call.lineno),
            col=getattr(node, "col_offset", call.col_offset) + 1,
            rule="obs/mutating-arg",
            severity=Severity.ERROR,
            message=(
                f"{what}: hook arguments are skipped entirely when "
                "telemetry is off, so they must not change any state "
                f"(hook '{call.func.attr}')"
            ),
        )

"""Checker registry and lint context.

Checkers are small classes with a ``check(context)`` generator; the
:func:`register` decorator adds them to the global registry in import
order, and :func:`run_checkers` drives every registered checker over
one parsed module. New checker families plug in by defining a class and
registering it — the runner, reporters, and suppression machinery need
no changes.
"""

from __future__ import annotations

import ast
import posixpath
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Type

from repro.lint.findings import Finding

#: Module paths forming the record/replay core, where iteration-order
#: and identity hazards would leak into recorded action chains and
#: break bit-identical replay. In **per-file** mode, determinism rules
#: marked *strict-only* fire only here; the ``--flow`` session ignores
#: this list and scopes those rules to the *computed* set of functions
#: reachable from the record/replay entry points instead (see
#: docs/lint.md).
REPLAY_PATH_SUFFIXES = (
    "repro/memo/engine.py",
    "repro/memo/actions.py",
    "repro/uarch/detailed.py",
    "repro/sim/world.py",
)


def is_replay_path(path: str) -> bool:
    """True when *path* is one of the record/replay core modules."""
    normalized = posixpath.normpath(path.replace("\\", "/"))
    return normalized.endswith(REPLAY_PATH_SUFFIXES)


@dataclass
class LintContext:
    """Everything a checker may consult about one module."""

    path: str  #: path as reported in findings
    source: str  #: full source text
    tree: ast.Module  #: parsed AST
    strict: bool  #: True on record/replay-path modules

    @classmethod
    def for_source(cls, source: str, path: str = "<string>",
                   strict: bool = None) -> "LintContext":
        """Parse *source* and build a context.

        *strict* defaults to whether *path* lies on the record/replay
        path; tests and the CLI's ``--strict`` flag can force it.
        """
        if strict is None:
            strict = is_replay_path(path)
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree, strict=strict)


class Checker:
    """Base class for checker families.

    Subclasses set ``name`` (family label), ``rules`` (the rule ids
    they can emit, for documentation and ``--list-rules``), and
    implement :meth:`check` as a generator of findings.
    """

    name: str = "base"
    rules: tuple = ()

    def check(self, context: LintContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


class ProjectChecker:
    """Base class for whole-program checker families.

    Where :class:`Checker` sees one parsed module, a project checker's
    :meth:`check` receives a :class:`repro.lint.flow.FlowSession` —
    module graph, call graph, and replay reachability — and may emit
    findings anywhere in the analyzed package. Registered families run
    once per session, after the per-file families.
    """

    name: str = "project-base"
    rules: tuple = ()

    def check(self, session) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


#: Registered checker classes, in registration order.
CHECKERS: List[Type[Checker]] = []

#: Registered project-wide checker classes (the flow session).
PROJECT_CHECKERS: List[Type[ProjectChecker]] = []


def register(checker_class: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker family to the registry."""
    CHECKERS.append(checker_class)
    return checker_class


def register_project(
        checker_class: Type[ProjectChecker]) -> Type[ProjectChecker]:
    """Class decorator adding a project-wide (flow) checker family."""
    PROJECT_CHECKERS.append(checker_class)
    return checker_class


def all_rules() -> List[str]:
    """Every rule id any registered checker can emit, sorted."""
    names = set()
    for checker_class in CHECKERS:
        names.update(checker_class.rules)
    for checker_class in PROJECT_CHECKERS:
        names.update(checker_class.rules)
    return sorted(names)


def run_checkers(context: LintContext,
                 checkers: Iterable[Type[Checker]] = None) -> List[Finding]:
    """Run checker families over one module; findings come back sorted.

    Suppression comments are **not** applied here — the runner does
    that, so unit tests can see raw checker output.
    """
    findings: List[Finding] = []
    for checker_class in (CHECKERS if checkers is None else checkers):
        findings.extend(checker_class().check(context))
    return sorted(findings)

"""Memo-safety checker (checker family 2): no hidden pipeline state.

The configuration blob produced by
:mod:`repro.uarch.config_codec` is the p-action cache key. The codec
serializes exactly the fields named in
:data:`~repro.uarch.config_codec.CONFIG_FIELD_MANIFEST`; an attribute
of the iQ or the detailed simulator that carries state between cycles
without appearing there would let two *different* pipeline states
collide on one key and replay each other's recorded timing — the
classic stale-memoization bug, and the hardest one to catch
dynamically because the colliding state may only arise deep into a
workload.

This checker cross-checks the simulator sources against the manifest
statically. It triggers on any module defining a class named
``IQEntry``, ``InstructionQueue``, or ``DetailedSimulator`` (so test
fixtures exercise it the same way the real sources do) and emits:

``memo/hidden-state`` (error)
    A ``__slots__`` entry or ``self.<attr>`` assignment that the
    manifest does not account for.

``memo/open-instance-dict`` (error)
    ``IQEntry`` without ``__slots__`` — an open ``__dict__`` means
    arbitrary attributes can be attached at runtime and silently
    bypass the codec.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.lint.findings import Finding, Severity
from repro.lint.registry import Checker, LintContext, register
from repro.uarch.config_codec import CONFIG_FIELD_MANIFEST

#: Class name -> manifest groups whose union is the allowed field set.
_CLASS_GROUPS: Dict[str, tuple] = {
    "IQEntry": ("entry",),
    "InstructionQueue": ("queue",),
    "DetailedSimulator": ("pipeline", "signature"),
}

#: Classes that must declare ``__slots__`` (state containers keyed by
#: the codec; an open instance dict defeats the whole analysis).
_SLOTS_REQUIRED = frozenset({"IQEntry", "InstructionQueue"})


def allowed_fields(class_name: str) -> Optional[FrozenSet[str]]:
    """The manifest-sanctioned attribute set for *class_name*."""
    groups = _CLASS_GROUPS.get(class_name)
    if groups is None:
        return None
    allowed: Set[str] = set()
    for group in groups:
        allowed.update(CONFIG_FIELD_MANIFEST[group])
    return frozenset(allowed)


def _slots_entries(class_node: ast.ClassDef):
    """Yield (name, node) for each ``__slots__`` string in the class."""
    for statement in class_node.body:
        if not isinstance(statement, ast.Assign):
            continue
        targets = [t for t in statement.targets if isinstance(t, ast.Name)]
        if not any(t.id == "__slots__" for t in targets):
            continue
        value = statement.value
        elements = []
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            elements = value.elts
        elif isinstance(value, ast.Constant) and isinstance(value.value, str):
            elements = [value]
        for element in elements:
            if isinstance(element, ast.Constant) and isinstance(
                    element.value, str):
                yield element.value, element


def _has_slots(class_node: ast.ClassDef) -> bool:
    return any(True for _ in _slots_entries(class_node))


def _self_assignments(class_node: ast.ClassDef):
    """Yield (attr_name, node) for every ``self.<attr>`` assignment."""
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    yield target.attr, target
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if (isinstance(element, ast.Attribute)
                                and isinstance(element.value, ast.Name)
                                and element.value.id == "self"):
                            yield element.attr, element


@register
class MemoSafetyChecker(Checker):
    """Family 2: cross-check simulator state against the codec
    manifest so no attribute escapes the configuration key."""

    name = "memo-safety"
    rules = ("memo/hidden-state", "memo/open-instance-dict")

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in context.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            allowed = allowed_fields(node.name)
            if allowed is None:
                continue
            yield from self._check_class(context, node, allowed)

    def _check_class(self, context: LintContext, node: ast.ClassDef,
                     allowed: FrozenSet[str]) -> Iterator[Finding]:
        if node.name in _SLOTS_REQUIRED and not _has_slots(node):
            yield Finding(
                path=context.path, line=node.lineno,
                col=node.col_offset + 1,
                rule="memo/open-instance-dict", severity=Severity.ERROR,
                message=(
                    f"{node.name} must declare __slots__: an open "
                    "instance dict lets hidden state bypass the "
                    "configuration codec"
                ),
            )
        seen: Set[str] = set()
        for name, where in _slots_entries(node):
            if name not in allowed and name not in seen:
                seen.add(name)
                yield self._hidden(context, node.name, name, where)
        for name, where in _self_assignments(node):
            if name.startswith("_"):
                # Private caches still carry state; only dunders pass.
                if name.startswith("__") and name.endswith("__"):
                    continue
            if name not in allowed and name not in seen:
                seen.add(name)
                yield self._hidden(context, node.name, name, where)

    @staticmethod
    def _hidden(context: LintContext, class_name: str, attr: str,
                node: ast.AST) -> Finding:
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule="memo/hidden-state",
            severity=Severity.ERROR,
            message=(
                f"{class_name}.{attr} is not in CONFIG_FIELD_MANIFEST: "
                "state the codec does not serialize lets two distinct "
                "pipeline states collide on one configuration key "
                "(stale memoization)"
            ),
        )

"""Per-line suppression comments.

A finding is suppressed when the physical source line it points at
carries a marker comment naming its rule (or ``all``)::

    tokens = {id(n) for n in nodes}  # repro-lint: disable=det/id-dependent
    risky()                          # repro-lint: disable=all
    chaos(), havoc()                 # repro-lint: disable=rule-a,rule-b

The same syntax works in assembly sources after ``!`` or ``#``::

    ba done     ! repro-lint: disable=asm/delay-slot-hazard

Suppressions are deliberate, reviewable exceptions: the marker sits on
the flagged line, so a reviewer sees the hazard and its waiver together.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

from repro.lint.findings import Finding

_MARKER_RE = re.compile(
    r"repro-lint:\s*disable=([A-Za-z0-9_/,\- ]+)"
)


def suppressions_for(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule names disabled on them."""
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _MARKER_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip() for token in match.group(1).split(",")
            if token.strip()
        )
        if rules:
            table[lineno] = rules
    return table


def apply_suppressions(findings: List[Finding],
                       source: str) -> List[Finding]:
    """Drop findings whose line disables their rule (or ``all``)."""
    table = suppressions_for(source)
    if not table:
        return list(findings)
    kept = []
    for finding in findings:
        disabled = table.get(finding.line, frozenset())
        if finding.rule in disabled or "all" in disabled:
            continue
        kept.append(finding)
    return kept

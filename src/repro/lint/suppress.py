"""Per-line suppression comments.

A finding is suppressed when the physical source line it points at
carries a marker comment naming its rule (or ``all``)::

    tokens = {id(n) for n in nodes}  # repro-lint: disable=det/id-dependent
    risky()                          # repro-lint: disable=all
    chaos(), havoc()                 # repro-lint: disable=rule-a,rule-b

The same syntax works in assembly sources after ``!`` or ``#``::

    ba done     ! repro-lint: disable=asm/delay-slot-hazard

Suppressions are deliberate, reviewable exceptions: the marker sits on
the flagged line, so a reviewer sees the hazard and its waiver together.

**File-level** suppression disables a rule for a whole module when the
marker appears in the first :data:`FILE_MARKER_WINDOW` lines::

    # repro-lint: disable-file=det/dict-value-iteration

Per-line markers compose with findings that point at one statement;
the file form exists for findings that describe a module-level
property and for adopting the flow session on legacy modules without
a baseline. The head-of-file window keeps the waiver where a reader
looking at the module sees it immediately.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

from repro.lint.findings import Finding

_MARKER_RE = re.compile(
    r"repro-lint:\s*disable=([A-Za-z0-9_/,\- ]+)"
)

_FILE_MARKER_RE = re.compile(
    r"repro-lint:\s*disable-file=([A-Za-z0-9_/,\- ]+)"
)

#: A ``disable-file`` marker must sit in the first N physical lines.
FILE_MARKER_WINDOW = 5


def suppressions_for(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule names disabled on them."""
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _MARKER_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip() for token in match.group(1).split(",")
            if token.strip()
        )
        if rules:
            table[lineno] = rules
    return table


def file_suppressions_for(source: str) -> FrozenSet[str]:
    """Rules disabled module-wide by a head-of-file marker."""
    rules: set = set()
    for line in source.splitlines()[:FILE_MARKER_WINDOW]:
        match = _FILE_MARKER_RE.search(line)
        if match is None:
            continue
        rules.update(
            token.strip() for token in match.group(1).split(",")
            if token.strip()
        )
    return frozenset(rules)


def apply_suppressions(findings: List[Finding],
                       source: str) -> List[Finding]:
    """Drop findings whose line — or whole file — disables their rule
    (or ``all``)."""
    table = suppressions_for(source)
    file_rules = file_suppressions_for(source)
    if not table and not file_rules:
        return list(findings)
    kept = []
    for finding in findings:
        if finding.rule in file_rules or "all" in file_rules:
            continue
        disabled = table.get(finding.line, frozenset())
        if finding.rule in disabled or "all" in disabled:
            continue
        kept.append(finding)
    return kept

"""Turbo codegen contracts (flow family 3).

``repro.memo.compile`` generates Python at runtime and ``exec``\\ s it
on the replay hot path. A code generator is the one part of the
simulator a source-level lint cannot see — unless the lint *runs* it.
This family compiles representative action chains (every node kind,
guards, terminals, inlined and table keys), captures the generated
source, parses it, and enforces the contract that keeps compiled
replay bit-identical to interpreted replay:

``flow/codegen-name`` (error)
    Generated code references a name outside the whitelist: the
    segment parameters (``world``/``R``/``K``/``ctl_a``), the world
    binding aliases, and the two reply locals (``r``/``rec``). Any
    other name is smuggled state.

``flow/codegen-attr`` (error)
    Generated code accesses an attribute other than ``world.<m>`` for
    a sanctioned world method, or ``rec.outcome_key``. The attribute
    surface *is* the side-effect surface.

``flow/codegen-shape`` (error)
    A generated statement deviates from the five allowed shapes
    (binding, reply call, effect call, guard, return). New shapes mean
    the emitter grew behavior the contract never reviewed.

``flow/codegen-drift`` (error)
    The emitter's :data:`~repro.memo.compile.WORLD_BINDINGS` table and
    the interpreted replay loop's world-call set have diverged, or a
    :data:`~repro.memo.compile.SEG_TEMPLATES` entry references an
    alias the bindings table does not define. Compiled and interpreted
    replay must perform the same world calls — drift here is how
    "bit-identical with turbo on or off" silently stops being true.

The interpreter side is derived *statically* from the session's module
graph (the ``world.<method>(...)`` calls inside
``FastForwardEngine._replay``), so the cross-check needs no live
engine and works on fixture packages too.
"""

from __future__ import annotations

import ast
import re
import textwrap
from typing import Iterator, List, Set

#: A ``str.format`` replacement field inside a SEG_TEMPLATES entry.
_FORMAT_FIELD_RE = re.compile(r"\{[^{}]*\}")

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProjectChecker, register_project

RULE_NAME = "flow/codegen-name"
RULE_ATTR = "flow/codegen-attr"
RULE_SHAPE = "flow/codegen-shape"
RULE_DRIFT = "flow/codegen-drift"

#: Parameters of every generated segment function.
SEG_PARAMS = ("world", "R", "K", "ctl_a")

#: Locals generated code may bind (world aliases come from
#: WORLD_BINDINGS at check time; these are the reply captures).
REPLY_LOCALS = ("r", "rec")

#: The one non-world method generated code may call on a reply.
REPLY_METHODS = frozenset({"outcome_key"})


def build_audit_chains():
    """Representative action chains covering every emitter path.

    Returns ``[(label, head, node_count)]``. Built from the real node
    classes so the audit compiles exactly what production would.
    """
    from repro.memo.actions import (
        AdvanceNode,
        ConfigNode,
        ControlNode,
        EndNode,
        LoadIssueNode,
        LoadPollNode,
        RetireNode,
        RollbackNode,
        StoreIssueNode,
    )

    chains = []

    # 1. Linear fusion: advances fuse, retire/rollback emit requests.
    a1, a2 = AdvanceNode(3), AdvanceNode(2)
    retire = RetireNode(4, 1, 1, 0, 1)
    rollback = RollbackNode(2, 1, 0, 0)
    end = EndNode(0)
    a1.next, a2.next, retire.next, rollback.next = a2, retire, rollback, end
    chains.append(("linear", a1, 4))

    # 2. Guarded outcomes: one of each kind, single-edge (inlinable
    #    int key, then a non-inlinable tuple-of-list key through K).
    adv = AdvanceNode(1)
    load = LoadIssueNode(0)
    poll = LoadPollNode(0)
    store = StoreIssueNode(1)
    tail = EndNode(0)
    adv.next = load
    load.edges[7] = poll
    poll.edges[(3, (1, 2))] = store
    store.edges[5] = tail
    chains.append(("guards", adv, 4))

    # 3. Control guard + config pass-through + dynamic terminal.
    config = ConfigNode(b"\x01\x02", 2)
    ctl = ControlNode()
    adv2 = AdvanceNode(9)
    terminal = ControlNode()
    head = AdvanceNode(1)
    head.next = config
    config.next = ctl
    ctl.edges[("ctl", 0, True)] = adv2
    adv2.next = terminal
    terminal.edges[("ctl", 1, True)] = EndNode(0)
    terminal.edges[("ctl", 1, False)] = EndNode(1)
    chains.append(("control-terminal", head, 5))

    return chains


def interpreter_world_calls(session) -> Set[str]:
    """World methods the interpreted replay loop calls, derived
    statically from the session's parsed ``engine`` module."""
    methods: Set[str] = set()
    for qualname in session.callgraph.match_suffix(
            "FastForwardEngine._replay"):
        fn = session.callgraph.functions[qualname]
        for statement in fn.cfg.statements():
            for node in ast.walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "world"):
                    methods.add(func.attr)
                elif (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Attribute)
                        and func.value.attr == "world"):
                    methods.add(func.attr)
    return methods


class _GeneratedSourceAuditor:
    """Parses one captured segment source and checks the contract."""

    def __init__(self, path: str, label: str, source: str,
                 world_methods: Set[str], aliases: Set[str]):
        self.path = path
        self.label = label
        self.source = source
        self.world_methods = world_methods
        self.allowed_names = set(SEG_PARAMS) | set(REPLY_LOCALS) | aliases
        self.findings: List[Finding] = []

    def _emit(self, rule: str, message: str, line: int = 1) -> None:
        self.findings.append(Finding(
            path=self.path, line=line, col=1, rule=rule,
            severity=Severity.ERROR,
            message=f"[chain '{self.label}'] {message}",
        ))

    def audit(self) -> List[Finding]:
        try:
            tree = ast.parse(self.source)
        except SyntaxError as exc:
            self._emit(RULE_SHAPE,
                       f"generated source does not parse: {exc.msg}",
                       exc.lineno or 1)
            return self.findings
        if (len(tree.body) != 1
                or not isinstance(tree.body[0], ast.FunctionDef)):
            self._emit(RULE_SHAPE,
                       "generated module must be exactly one function")
            return self.findings
        fn = tree.body[0]
        self._check_names(fn)
        self._check_attrs(fn)
        for statement in fn.body:
            self._check_shape(statement)
        return self.findings

    def _check_names(self, fn: ast.FunctionDef) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Name):
                if node.id not in self.allowed_names:
                    self._emit(
                        RULE_NAME,
                        f"generated code references name "
                        f"'{node.id}' outside the segment whitelist",
                        node.lineno,
                    )

    def _check_attrs(self, fn: ast.FunctionDef) -> None:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            if isinstance(base, ast.Name) and base.id == "world":
                if node.attr not in self.world_methods:
                    self._emit(
                        RULE_ATTR,
                        f"generated code binds world.{node.attr}, "
                        "which interpreted replay never calls",
                        node.lineno,
                    )
            elif isinstance(base, ast.Name) and base.id == "rec":
                if node.attr not in REPLY_METHODS:
                    self._emit(
                        RULE_ATTR,
                        f"generated code accesses rec.{node.attr}; "
                        "only outcome_key() is sanctioned",
                        node.lineno,
                    )
            else:
                self._emit(
                    RULE_ATTR,
                    "generated code contains an attribute access "
                    "outside world.<method> / rec.outcome_key",
                    node.lineno,
                )

    def _check_shape(self, statement: ast.stmt) -> None:
        line = getattr(statement, "lineno", 1)
        if isinstance(statement, ast.Assign):
            if (len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Name)
                    and isinstance(statement.value,
                                   (ast.Attribute, ast.Call))):
                return  # binding or reply-capture call
        elif isinstance(statement, ast.Expr):
            if isinstance(statement.value, ast.Call):
                return  # effect call (w_adv/w_ret/w_rb/ctl_a)
        elif isinstance(statement, ast.If):
            test = statement.test
            if (isinstance(test, ast.Compare)
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.NotEq)
                    and len(statement.body) == 1
                    and not statement.orelse
                    and isinstance(statement.body[0], ast.Return)):
                return  # guard with side-exit return
        elif isinstance(statement, ast.Return):
            return
        self._emit(
            RULE_SHAPE,
            f"generated statement shape {type(statement).__name__} is "
            "outside the segment contract (binding / reply call / "
            "effect call / guard / return)",
            line,
        )


def _template_aliases(template: str) -> Set[str]:
    """Names a SEG_TEMPLATES entry references outside its fields.

    Format fields are substituted with a dummy literal so the template
    parses as the statement it will expand to (``w_ret(R[{index}])``
    becomes ``w_ret(R[0])``); any :class:`ast.Name` left is an alias
    the template hardcodes. Templates whose fields *are* the statement
    structure (the ``bind`` line) do not parse and contribute nothing
    — their aliases come straight from ``WORLD_BINDINGS``.
    """
    names: Set[str] = set()
    rendered = _FORMAT_FIELD_RE.sub("0", template)
    try:
        tree = ast.parse(textwrap.dedent(rendered).strip() or "pass")
    except SyntaxError:
        return names
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


@register_project
class CodegenContractChecker(ProjectChecker):
    """Flow family 3: audit the turbo emitter's generated source and
    cross-check it against the interpreter's side-effect set."""

    name = "flow-codegen"
    rules = (RULE_NAME, RULE_ATTR, RULE_SHAPE, RULE_DRIFT)

    def check(self, session) -> Iterator[Finding]:
        compile_module = session.compile_module()
        if compile_module is None:
            return  # package has no turbo emitter; nothing to audit
        path = compile_module.path
        from repro.memo import compile as compiler

        world_methods = set(
            target.split(".", 1)[1]
            for target in compiler.WORLD_BINDINGS.values()
            if target.startswith("world.")
        )
        yield from self._check_drift(session, path, compiler,
                                     world_methods)
        aliases = set(compiler.WORLD_BINDINGS)
        for label, head, _count in build_audit_chains():
            segment = compiler.compile_segment(head, generation=0,
                                               capture_source=True)
            auditor = _GeneratedSourceAuditor(
                path, label, segment.source, world_methods, aliases)
            yield from auditor.audit()

    def _check_drift(self, session, path: str, compiler,
                     world_methods: Set[str]) -> Iterator[Finding]:
        line = self._bindings_line(session, path)
        interp = interpreter_world_calls(session)
        if interp:
            for method in sorted(world_methods - interp):
                yield Finding(
                    path=path, line=line, col=1, rule=RULE_DRIFT,
                    severity=Severity.ERROR,
                    message=(
                        f"WORLD_BINDINGS exposes world.{method} but "
                        "the interpreted replay loop never calls it; "
                        "compiled and interpreted replay must share "
                        "one side-effect surface"
                    ),
                )
            for method in sorted(interp - world_methods):
                yield Finding(
                    path=path, line=line, col=1, rule=RULE_DRIFT,
                    severity=Severity.ERROR,
                    message=(
                        f"interpreted replay calls world.{method} but "
                        "WORLD_BINDINGS cannot emit it; a chain "
                        "containing that action would compile to a "
                        "segment with different effects"
                    ),
                )
        # Every alias a template mentions must be bindable.
        bindable = set(compiler.WORLD_BINDINGS) | set(SEG_PARAMS) | set(
            REPLY_LOCALS)
        for key in sorted(compiler.SEG_TEMPLATES):
            for name in sorted(
                    _template_aliases(compiler.SEG_TEMPLATES[key])):
                if name not in bindable:
                    yield Finding(
                        path=path, line=line, col=1, rule=RULE_DRIFT,
                        severity=Severity.ERROR,
                        message=(
                            f"SEG_TEMPLATES['{key}'] references "
                            f"'{name}', which WORLD_BINDINGS does not "
                            "define and the segment signature does "
                            "not provide"
                        ),
                    )

    @staticmethod
    def _bindings_line(session, path: str) -> int:
        info = session.modgraph.by_path.get(path)
        if info is None:
            return 1
        for node in info.tree.body:
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name)
                            and t.id == "WORLD_BINDINGS"
                            for t in node.targets)):
                return node.lineno
        return 1

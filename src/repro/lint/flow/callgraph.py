"""Project-wide call graph with type-informed dispatch.

Functions are indexed by dotted qualname
(``repro.memo.engine.FastForwardEngine._replay``). Nested functions and
classes are *not* indexed separately — their bodies belong to the
enclosing function, so a call inside a closure is attributed to the
function that closes over it (which is what reachability needs).

Call targets are resolved best-effort from several evidence sources,
in decreasing order of confidence:

* module bindings (``from repro.memo.compile import compile_segment``),
* ``self``/``cls``/``super()`` method dispatch through the class
  hierarchy — including overrides in known subclasses, so a call
  through a base class reaches every implementation in the repo,
* inferred static types: parameter/return annotations, locals assigned
  from constructor calls, and attribute types gathered from
  ``self.attr = <typed expr>`` assignments,
* parameter types propagated from resolved call sites (so a helper
  that receives ``self`` inherits its class).

Unresolvable calls simply contribute no edge: the analysis
under-approximates reachability rather than guessing, and the
replay-path entry points are checked to resolve (``flow/missing-entry``)
so the approximation cannot silently collapse to nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.flow.cfg import CFG, build_cfg, function_span
from repro.lint.flow.modgraph import ModuleGraph, ModuleInfo

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class ClassInfo:
    """One class of the analyzed package."""

    qualname: str
    name: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> candidate class qualnames.
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One module-level function or method."""

    qualname: str
    name: str
    module: ModuleInfo
    node: ast.AST
    owner: Optional[str] = None  #: owning class qualname
    span: Tuple[int, int] = (0, 0)
    param_types: Dict[str, Set[str]] = field(default_factory=dict)
    return_types: Set[str] = field(default_factory=set)
    #: resolved callee qualnames per call expression (id(Call) keyed).
    call_targets: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    _cfg: Optional[CFG] = None

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg


class CallGraph:
    """Function index + resolved call edges for one module graph."""

    def __init__(self, modgraph: ModuleGraph):
        self.modgraph = modgraph
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.subclasses: Dict[str, Set[str]] = {}
        self.edges: Dict[str, Set[str]] = {}
        self._index()
        self._resolve_hierarchy()
        # Types and edges feed each other (a helper's param type comes
        # from a call site; resolving calls *on* that param needs the
        # type), so resolution runs to a small fixpoint.
        for _ in range(3):
            changed = self._resolve_calls()
            changed |= self._propagate_param_types()
            if not changed:
                break

    # -- indexing ---------------------------------------------------------

    def _index(self) -> None:
        for name in sorted(self.modgraph.modules):
            info = self.modgraph.modules[name]
            for statement in info.tree.body:
                if isinstance(statement, _FUNCTION_NODES):
                    self._add_function(info, statement, owner=None)
                elif isinstance(statement, ast.ClassDef):
                    self._add_class(info, statement)

    def _add_function(self, module: ModuleInfo, node,
                      owner: Optional[str]) -> None:
        parts = [module.name]
        if owner is not None:
            parts.append(owner.rsplit(".", 1)[1])
        parts.append(node.name)
        qualname = ".".join(parts)
        self.functions[qualname] = FunctionInfo(
            qualname=qualname, name=node.name, module=module, node=node,
            owner=owner, span=function_span(node),
        )
        if owner is not None:
            self.classes[owner].methods[node.name] = qualname

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        self.classes[qualname] = ClassInfo(
            qualname=qualname, name=node.name, module=module, node=node,
        )
        for statement in node.body:
            if isinstance(statement, _FUNCTION_NODES):
                self._add_function(module, statement, owner=qualname)

    # -- class hierarchy --------------------------------------------------

    def _resolve_hierarchy(self) -> None:
        for qualname in sorted(self.classes):
            cls = self.classes[qualname]
            for base in cls.node.bases:
                resolved = self._resolve_class_expr(cls.module, base)
                if resolved is not None:
                    cls.bases.append(resolved)
                    self.subclasses.setdefault(resolved, set()).add(
                        qualname
                    )

    def _resolve_class_expr(self, module: ModuleInfo,
                            node: ast.expr) -> Optional[str]:
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        return self._resolve_dotted_class(module, dotted)

    def _resolve_dotted_class(self, module: ModuleInfo,
                              dotted: str) -> Optional[str]:
        target = self._resolve_name(module, dotted)
        if target is not None and target in self.classes:
            return target
        return None

    def _resolve_name(self, module: ModuleInfo,
                      dotted: str) -> Optional[str]:
        """Resolve a (possibly dotted) name used in *module* to a
        package-level qualname, via the module's import bindings or the
        module's own top-level definitions."""
        head, _, rest = dotted.partition(".")
        target = module.bindings.get(head)
        if target is None:
            # Same-module definition?
            candidate = f"{module.name}.{dotted}"
            if (candidate in self.classes
                    or candidate in self.functions):
                return candidate
            if f"{module.name}.{head}" in self.classes and rest:
                return None  # Class.attr — not a package-level name
            return None
        resolved = target + ("." + rest if rest else "")
        # Normalize through the module table: ``repro.memo`` bound via
        # ``import repro`` style chains.
        module_name, remainder = self.modgraph.split(resolved)
        if module_name is None:
            return None
        return resolved

    def mro(self, class_qualname: str) -> List[str]:
        """Linearized repo-internal ancestry (BFS, class first)."""
        order: List[str] = []
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in order or current not in self.classes:
                continue
            order.append(current)
            queue.extend(self.classes[current].bases)
        return order

    def lookup_method(self, class_qualname: str,
                      method: str) -> Optional[str]:
        for ancestor in self.mro(class_qualname):
            hit = self.classes[ancestor].methods.get(method)
            if hit is not None:
                return hit
        return None

    def _dispatch_targets(self, class_qualname: str,
                          method: str) -> List[str]:
        """The method on *class_qualname* plus every override in known
        subclasses (virtual-dispatch approximation)."""
        targets: List[str] = []
        base_hit = self.lookup_method(class_qualname, method)
        if base_hit is not None:
            targets.append(base_hit)
        stack = [class_qualname]
        seen = {class_qualname}
        while stack:
            for sub in sorted(self.subclasses.get(stack.pop(), ())):
                if sub in seen:
                    continue
                seen.add(sub)
                stack.append(sub)
                hit = self.classes[sub].methods.get(method)
                if hit is not None and hit not in targets:
                    targets.append(hit)
        return targets

    # -- annotations ------------------------------------------------------

    def resolve_annotation(self, module: ModuleInfo,
                           node: Optional[ast.expr]) -> Set[str]:
        """Class qualnames named by an annotation expression."""
        if node is None:
            return set()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return set()
        if isinstance(node, ast.Subscript):
            # Optional[X] / Union[X, Y] / List[X]: collect every named
            # class inside — an over-approximation that is fine for
            # dispatch (extra candidates add edges, never drop them).
            found: Set[str] = set()
            for inner in ast.walk(node.slice):
                if isinstance(inner, (ast.Name, ast.Attribute)):
                    found |= self.resolve_annotation(module, inner)
            return found
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return (self.resolve_annotation(module, node.left)
                    | self.resolve_annotation(module, node.right))
        dotted = _dotted_name(node)
        if dotted is None:
            return set()
        resolved = self._resolve_dotted_class(module, dotted)
        return {resolved} if resolved is not None else set()

    # -- type environments ------------------------------------------------

    def function_env(self, fn: FunctionInfo) -> Dict[str, Set[str]]:
        """Static types of names visible in *fn* (params + locals)."""
        env: Dict[str, Set[str]] = {}
        args = fn.node.args
        all_args = (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs))
        if fn.owner is not None and all_args:
            first = all_args[0].arg
            if first in ("self", "cls"):
                env[first] = {fn.owner}
                all_args = all_args[1:]
        for arg in all_args:
            types = self.resolve_annotation(fn.module, arg.annotation)
            types |= fn.param_types.get(arg.arg, set())
            if types:
                env[arg.arg] = types
        # One deterministic pass over the statements: locals assigned
        # from constructors or annotated-return calls.
        for statement in fn.cfg.statements():
            for node in ast.walk(statement):
                if isinstance(node, ast.Assign):
                    types = self.expr_types(fn, env, node.value)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            if types:
                                env.setdefault(target.id, set()).update(
                                    types)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                        node.target, ast.Name):
                    types = self.resolve_annotation(fn.module,
                                                    node.annotation)
                    if types:
                        env.setdefault(node.target.id, set()).update(
                            types)
        return env

    def expr_types(self, fn: FunctionInfo, env: Dict[str, Set[str]],
                    node: ast.expr) -> Set[str]:
        """Candidate class qualnames of *node*'s value."""
        if isinstance(node, ast.Name):
            return set(env.get(node.id, ()))
        if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name):
            base_types = env.get(node.value.id, set())
            found: Set[str] = set()
            for class_qualname in base_types:
                for ancestor in self.mro(class_qualname):
                    found |= self.classes[ancestor].attr_types.get(
                        node.attr, set())
            return found
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is not None:
                target = self._resolve_name(fn.module, dotted)
                if target in self.classes:
                    return {target}
                if target in self.functions:
                    return set(self.functions[target].return_types)
            # Method call with an annotated return type.
            for callee in fn.call_targets.get(id(node), ()):
                info = self.functions.get(callee)
                if info is not None and info.return_types:
                    return set(info.return_types)
        if isinstance(node, (ast.IfExp,)):
            return (self.expr_types(fn, env, node.body)
                    | self.expr_types(fn, env, node.orelse))
        return set()

    def _collect_attr_types(self) -> bool:
        """Gather ``self.attr`` types from every method; True when the
        tables grew (used by the resolution fixpoint)."""
        changed = False
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            if fn.owner is None:
                continue
            cls = self.classes[fn.owner]
            env = self.function_env(fn)
            for statement in fn.cfg.statements():
                for node in ast.walk(statement):
                    value = None
                    target = None
                    if isinstance(node, ast.Assign):
                        value = node.value
                        targets = node.targets
                    elif isinstance(node, ast.AnnAssign):
                        value = node.value
                        targets = [node.target]
                    else:
                        continue
                    for target in targets:
                        if not (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            continue
                        types: Set[str] = set()
                        if isinstance(node, ast.AnnAssign):
                            types |= self.resolve_annotation(
                                fn.module, node.annotation)
                        if value is not None:
                            types |= self.expr_types(fn, env, value)
                        if types:
                            slot = cls.attr_types.setdefault(
                                target.attr, set())
                            if not types <= slot:
                                slot.update(types)
                                changed = True
        return changed

    # -- call resolution --------------------------------------------------

    def _resolve_calls(self) -> bool:
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            types = self.resolve_annotation(fn.module, fn.node.returns)
            if types and not types <= fn.return_types:
                fn.return_types.update(types)
        changed = self._collect_attr_types()
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            env = self.function_env(fn)
            edges = self.edges.setdefault(qualname, set())
            for statement in fn.cfg.statements():
                for node in ast.walk(statement):
                    if not isinstance(node, ast.Call):
                        continue
                    targets = self._resolve_call(fn, env, node)
                    if targets:
                        recorded = fn.call_targets.get(id(node), ())
                        if tuple(targets) != recorded:
                            fn.call_targets[id(node)] = tuple(targets)
                            changed = True
                        before = len(edges)
                        edges.update(targets)
                        changed |= len(edges) != before
        return changed

    def _resolve_call(self, fn: FunctionInfo, env: Dict[str, Set[str]],
                      node: ast.Call) -> List[str]:
        func = node.func
        # super().method(...)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and fn.owner is not None):
            for ancestor in self.mro(fn.owner)[1:]:
                hit = self.classes[ancestor].methods.get(func.attr)
                if hit is not None:
                    return [hit]
            return []
        dotted = _dotted_name(func)
        if dotted is not None:
            target = self._resolve_name(fn.module, dotted)
            if target is not None:
                if target in self.functions:
                    return [target]
                if target in self.classes:
                    init = self.lookup_method(target, "__init__")
                    return [init] if init is not None else []
                # ``module.func`` where the binding names the module.
                module_name, remainder = self.modgraph.split(target)
                if module_name is not None and remainder:
                    candidate = f"{module_name}.{remainder}"
                    if candidate in self.functions:
                        return [candidate]
        if isinstance(func, ast.Attribute):
            receiver_types = self.expr_types(fn, env, func.value)
            targets: List[str] = []
            for class_qualname in sorted(receiver_types):
                for hit in self._dispatch_targets(class_qualname,
                                                  func.attr):
                    if hit not in targets:
                        targets.append(hit)
            return targets
        return []

    def _propagate_param_types(self) -> bool:
        """Push argument types from resolved call sites into callee
        parameter tables (how a helper that receives ``self`` or a
        constructed instance learns its class)."""
        changed = False
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            env = self.function_env(fn)
            for statement in fn.cfg.statements():
                for node in ast.walk(statement):
                    if not isinstance(node, ast.Call):
                        continue
                    for callee_name in fn.call_targets.get(id(node), ()):
                        callee = self.functions.get(callee_name)
                        if callee is None:
                            continue
                        changed |= self._bind_arguments(fn, env, node,
                                                        callee)
        return changed

    def _bind_arguments(self, fn: FunctionInfo, env, node: ast.Call,
                        callee: FunctionInfo) -> bool:
        params = [a.arg for a in (list(callee.node.args.posonlyargs)
                                  + list(callee.node.args.args))]
        if callee.owner is not None and params and params[0] in (
                "self", "cls"):
            params = params[1:]
        changed = False
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred) or position >= len(params):
                break
            types = self.expr_types(fn, env, arg)
            if types:
                slot = callee.param_types.setdefault(params[position],
                                                     set())
                if not types <= slot:
                    slot.update(types)
                    changed = True
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            types = self.expr_types(fn, env, keyword.value)
            if types:
                slot = callee.param_types.setdefault(keyword.arg, set())
                if not types <= slot:
                    slot.update(types)
                    changed = True
        return changed

    # -- reachability -----------------------------------------------------

    def reachable_from(self,
                       entries: Sequence[str]) -> FrozenSet[str]:
        """Transitive closure of call edges from *entries*."""
        seen: Set[str] = set()
        stack = [e for e in entries if e in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return frozenset(seen)

    def match_suffix(self, suffix: str) -> List[str]:
        """Function qualnames ending in *suffix* at a dot boundary."""
        hits = []
        for qualname in sorted(self.functions):
            if qualname == suffix or qualname.endswith("." + suffix):
                hits.append(qualname)
        return hits


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None

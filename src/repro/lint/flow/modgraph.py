"""Module graph — the whole package parsed once, imports resolved.

The flow session's foundation: every ``.py`` file under one package
root is parsed into a :class:`ModuleInfo`, and each module's import
statements are resolved into a *binding map* from local names to the
dotted path of the thing they name (module, class, or function).
Bindings into the analyzed package feed the call graph; stdlib and
third-party bindings stay as plain dotted names, which is exactly what
the determinism source tables key on (``time``, ``random``, …).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".pytest_cache", ".hypothesis",
    ".benchmarks",
})


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed package."""

    name: str       #: dotted module name (``repro.memo.engine``)
    path: str       #: filesystem path (as reported in findings)
    source: str     #: full source text
    tree: ast.Module
    #: local name -> dotted target. ``from repro.memo.compile import
    #: compile_segment as cs`` binds ``cs`` to
    #: ``repro.memo.compile.compile_segment``; ``import repro.memo``
    #: binds ``repro`` to ``repro``.
    bindings: Dict[str, str] = field(default_factory=dict)


class ModuleGraph:
    """Every module of one package, with import bindings resolved."""

    def __init__(self, package: str, modules: Dict[str, ModuleInfo]):
        self.package = package
        self.modules = modules
        #: path -> ModuleInfo for finding attribution.
        self.by_path = {info.path: info for info in modules.values()}

    @classmethod
    def build(cls, root: str, package: Optional[str] = None,
              paths: Optional[List[str]] = None) -> "ModuleGraph":
        """Parse the package rooted at directory *root*.

        *package* defaults to the root directory's basename. *paths*
        restricts parsing to an explicit file list (the runner passes
        its discovered files so the session and the per-file lint see
        the same tree); otherwise the root is walked.
        """
        root = os.path.abspath(root)
        if package is None:
            package = os.path.basename(root.rstrip(os.sep))
        modules: Dict[str, ModuleInfo] = {}
        if paths is None:
            paths = []
            for dirpath, dirs, files in os.walk(root):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                for name in sorted(files):
                    if name.endswith(".py"):
                        paths.append(os.path.join(dirpath, name))
        for path in paths:
            relative = os.path.relpath(os.path.abspath(path), root)
            if relative.startswith(".."):
                continue  # outside the package root
            parts = relative[:-3].replace(os.sep, "/").split("/")
            if parts[-1] == "__init__":
                parts = parts[:-1]
            name = ".".join([package] + parts) if parts else package
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=path)
            except (OSError, SyntaxError):
                continue  # per-file lint reports these; skip here
            modules[name] = ModuleInfo(name=name, path=path,
                                       source=source, tree=tree)
        graph = cls(package, modules)
        for info in modules.values():
            graph._resolve_imports(info)
        return graph

    # -- import resolution ------------------------------------------------

    def _resolve_imports(self, info: ModuleInfo) -> None:
        # Bindings outside the analyzed package stay as plain dotted
        # names (``perf_counter`` -> ``time.perf_counter``): the call
        # graph ignores them, but taint-source detection keys on the
        # stdlib module they root in.
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    info.bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                module = self._from_module(info, node)
                if module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.bindings[local] = f"{module}.{alias.name}"
    def _from_module(self, info: ModuleInfo,
                     node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: resolve against the importing module.
        base = info.name.split(".")
        if not self._is_package_module(info):
            base = base[:-1]
        cut = node.level - 1
        if cut:
            base = base[:-cut] if cut < len(base) else []
        if not base:
            return None
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def _is_package_module(self, info: ModuleInfo) -> bool:
        return os.path.basename(info.path) == "__init__.py"

    # -- lookups ----------------------------------------------------------

    def resolve(self, dotted: str) -> Optional[str]:
        """Normalize *dotted* to ``module.qualname`` if it names
        something in the package: longest module-name prefix wins."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.modules:
                return dotted
        return None

    def split(self, dotted: str):
        """Split *dotted* into ``(module_name, remainder)`` using the
        longest module-name prefix, or ``(None, dotted)``."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.modules:
                return candidate, ".".join(parts[i:])
        return None, dotted

"""Effect inference for memo-safety (flow family 2).

The per-file memo-safety checker cross-checks ``self.<attr>``
assignments *inside* the manifest classes (``IQEntry``,
``InstructionQueue``, ``DetailedSimulator``) against
:data:`~repro.uarch.config_codec.CONFIG_FIELD_MANIFEST`. What it
cannot see is a write performed from the *outside*: a pipeline helper
that receives an entry and stamps a scratch attribute on it, or a
replay-path function that pokes at ``self.iq`` from another module.
Such a write is exactly as dangerous — state carried between cycles
that the configuration codec does not serialize lets two distinct
pipeline states collide on one cache key.

This family infers attribute **effects** interprocedurally: for every
function, the attribute reads and writes performed on any expression
whose inferred static type is a manifest class (parameter annotations,
constructor assignments, typed ``self`` attributes — see
:mod:`repro.lint.flow.callgraph`), closed transitively over call
edges.

``flow/unmanifested-write`` (error)
    A replay-reachable function writes an attribute of a manifest
    class that the manifest does not account for. Writes via ``self``
    inside the class's own methods are skipped — the per-file
    ``memo/hidden-state`` rule owns those, so the two layers partition
    the work. Dunder attributes pass (they are protocol, not state).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import CallGraph, FunctionInfo
from repro.lint.memosafety import allowed_fields
from repro.lint.registry import ProjectChecker, register_project

RULE_UNMANIFESTED_WRITE = "flow/unmanifested-write"

#: One observed effect: (attr, receiver class bare name, AST node).
Effect = Tuple[str, str, ast.AST]


def _write_targets(statement: ast.stmt) -> List[ast.expr]:
    if isinstance(statement, ast.Assign):
        targets = list(statement.targets)
    elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
        targets = [statement.target]
    else:
        return []
    flat: List[ast.expr] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            flat.extend(target.elts)
        else:
            flat.append(target)
    return flat


class EffectTable:
    """Per-function attribute read/write sets on manifest classes."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: qualname -> {class bare name -> attr set}
        self.reads: Dict[str, Dict[str, Set[str]]] = {}
        self.writes: Dict[str, Dict[str, Set[str]]] = {}
        #: qualname -> write effects with their AST nodes (for findings)
        self.write_sites: Dict[str, List[Effect]] = {}
        for qualname in sorted(graph.functions):
            self._collect(graph.functions[qualname])

    def _manifest_classes(self, fn: FunctionInfo, env,
                          receiver: ast.expr) -> List[str]:
        """Bare names of manifest classes *receiver* may be typed as."""
        names = []
        for qualname in sorted(self.graph.expr_types(fn, env, receiver)):
            bare = qualname.rsplit(".", 1)[-1]
            if allowed_fields(bare) is not None and bare not in names:
                names.append(bare)
        return names

    def _collect(self, fn: FunctionInfo) -> None:
        env = self.graph.function_env(fn)
        reads: Dict[str, Set[str]] = {}
        writes: Dict[str, Set[str]] = {}
        sites: List[Effect] = []
        for statement in fn.cfg.statements():
            written = set()
            for target in _write_targets(statement):
                if not isinstance(target, ast.Attribute):
                    continue
                written.add(id(target))
                for bare in self._manifest_classes(fn, env, target.value):
                    writes.setdefault(bare, set()).add(target.attr)
                    sites.append((target.attr, bare, target))
            for node in ast.walk(statement):
                if (isinstance(node, ast.Attribute)
                        and id(node) not in written):
                    for bare in self._manifest_classes(fn, env,
                                                       node.value):
                        reads.setdefault(bare, set()).add(node.attr)
        self.reads[fn.qualname] = reads
        self.writes[fn.qualname] = writes
        self.write_sites[fn.qualname] = sites

    def transitive_writes(self, qualname: str) -> Dict[str, Set[str]]:
        """Write sets of *qualname* including everything it calls."""
        merged: Dict[str, Set[str]] = {}
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for bare, attrs in self.writes.get(current, {}).items():
                merged.setdefault(bare, set()).update(attrs)
            stack.extend(self.graph.edges.get(current, ()))
        return merged


def _is_dunder(attr: str) -> bool:
    return attr.startswith("__") and attr.endswith("__")


@register_project
class EffectChecker(ProjectChecker):
    """Flow family 2: state written onto manifest classes from outside
    the classes themselves, cross-checked against the codec manifest."""

    name = "flow-effects"
    rules = (RULE_UNMANIFESTED_WRITE,)

    def check(self, session) -> Iterator[Finding]:
        graph = session.callgraph
        table = session.effects()
        for qualname in sorted(session.reachable()):
            fn = graph.functions[qualname]
            owner_bare = (fn.owner.rsplit(".", 1)[-1]
                          if fn.owner is not None else None)
            for attr, bare, node in table.write_sites.get(qualname, ()):
                if _is_dunder(attr):
                    continue
                if bare == owner_bare and _is_self_write(node):
                    continue  # per-file memo/hidden-state owns these
                allowed = allowed_fields(bare)
                if allowed is None or attr in allowed:
                    continue
                yield Finding(
                    path=fn.module.path,
                    line=getattr(node, "lineno", fn.span[0]),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule=RULE_UNMANIFESTED_WRITE,
                    severity=Severity.ERROR,
                    message=(
                        f"replay-reachable function {fn.name}() writes "
                        f"{bare}.{attr}, which is not in "
                        "CONFIG_FIELD_MANIFEST: state the codec does "
                        "not serialize lets two distinct pipeline "
                        "states collide on one configuration key"
                    ),
                )


def _is_self_write(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")

"""Flow session: whole-program orchestration.

One :class:`FlowSession` = one analyzed package. It builds the module
graph and call graph once, computes the set of functions reachable
from the record/replay entry points, and then

1. runs the **per-file** checker families over every module with
   strict scoping *computed* from reachability: rules in
   :data:`~repro.lint.determinism.STRICT_ONLY_RULES` keep only the
   findings that fall inside a replay-reachable function's line span.
   This replaces the hardcoded ``REPLAY_PATH_SUFFIXES`` allowlist —
   a helper module three imports away from the engine gets exactly
   the same strict treatment as the engine itself, and module-level
   code that never runs during replay gets none;
2. runs every registered **project** checker family
   (:data:`~repro.lint.registry.PROJECT_CHECKERS`: taint, effects,
   codegen contracts) over the session.

Findings come back unsuppressed — the runner owns suppression, so
tests can see raw checker output (same contract as ``run_checkers``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lint.determinism import STRICT_ONLY_RULES
from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.effects import EffectTable
from repro.lint.flow.modgraph import ModuleGraph, ModuleInfo
from repro.lint.registry import (
    PROJECT_CHECKERS,
    LintContext,
    run_checkers,
)

#: Qualname suffixes of the record/replay entry points. Everything
#: transitively callable from these is "the replay path"; strict
#: determinism rules and the flow families scope to that set. The
#: suffixes are class-qualified but package-agnostic so fixture
#: packages exercise the session the same way ``src/repro`` does.
REPLAY_ENTRY_SUFFIXES = (
    "FastSim.run",                 # the public simulation driver
    "FastForwardEngine.run",       # memo engine mode dispatch
    "FastForwardEngine._record",   # record pass
    "FastForwardEngine._replay",   # replay pass (turbo dispatch too)
    "FastForwardEngine._resync",   # divergence recovery
    "compile_segment",             # turbo segment compilation
)


class FlowSession:
    """Whole-program analysis state for one package."""

    def __init__(self, root: str, package: Optional[str] = None,
                 paths: Optional[List[str]] = None,
                 entries: Sequence[str] = REPLAY_ENTRY_SUFFIXES):
        self.root = root
        self.entries = tuple(entries)
        self.modgraph = ModuleGraph.build(root, package=package,
                                          paths=paths)
        self.callgraph = CallGraph(self.modgraph)
        self._reachable: Optional[FrozenSet[str]] = None
        self._effects: Optional[EffectTable] = None

    # -- derived state ----------------------------------------------------

    @property
    def anchor_path(self) -> str:
        """Path findings without a better anchor point at (the package
        ``__init__``, or the first module, or the root)."""
        init_name = self.modgraph.package
        info = self.modgraph.modules.get(init_name)
        if info is not None:
            return info.path
        for name in sorted(self.modgraph.modules):
            return self.modgraph.modules[name].path
        return self.root

    def entry_functions(self) -> List[str]:
        """Qualnames the entry suffixes matched, sorted."""
        matched: List[str] = []
        for suffix in self.entries:
            for qualname in self.callgraph.match_suffix(suffix):
                if qualname not in matched:
                    matched.append(qualname)
        return sorted(matched)

    def reachable(self) -> FrozenSet[str]:
        """Function qualnames reachable from the replay entry points."""
        if self._reachable is None:
            self._reachable = self.callgraph.reachable_from(
                self.entry_functions())
        return self._reachable

    def reachable_spans(self) -> Dict[str, List[Tuple[int, int]]]:
        """Per-path, sorted line spans of replay-reachable functions."""
        spans: Dict[str, List[Tuple[int, int]]] = {}
        for qualname in sorted(self.reachable()):
            fn = self.callgraph.functions[qualname]
            spans.setdefault(fn.module.path, []).append(fn.span)
        for path in spans:
            spans[path].sort()
        return spans

    def effects(self) -> EffectTable:
        """Lazily-built attribute effect table (shared by checkers)."""
        if self._effects is None:
            self._effects = EffectTable(self.callgraph)
        return self._effects

    def compile_module(self) -> Optional[ModuleInfo]:
        """The package's turbo emitter module, if it has one."""
        for name in sorted(self.modgraph.modules):
            if name.endswith("memo.compile"):
                return self.modgraph.modules[name]
        return None

    # -- running checkers -------------------------------------------------

    def per_file_findings(self) -> List[Finding]:
        """Per-file families over every module, with strict-only rules
        scoped to replay-reachable function spans (unsuppressed)."""
        spans = self.reachable_spans()
        findings: List[Finding] = []
        for name in sorted(self.modgraph.modules):
            info = self.modgraph.modules[name]
            context = LintContext(path=info.path, source=info.source,
                                  tree=info.tree, strict=True)
            module_spans = spans.get(info.path, [])
            for finding in run_checkers(context):
                if finding.rule in STRICT_ONLY_RULES and not _in_spans(
                        finding.line, module_spans):
                    continue
                findings.append(finding)
        return findings

    def project_findings(self) -> List[Finding]:
        """Registered project (flow) checker families (unsuppressed)."""
        findings: List[Finding] = []
        for checker_class in PROJECT_CHECKERS:
            findings.extend(checker_class().check(self))
        return sorted(findings)

    def run(self, per_file: bool = True) -> List[Finding]:
        """The full session: per-file (strict-scoped) + project
        families, sorted, unsuppressed."""
        findings = self.per_file_findings() if per_file else []
        findings.extend(self.project_findings())
        return sorted(findings)


def _in_spans(line: int, spans: List[Tuple[int, int]]) -> bool:
    return any(start <= line <= end for start, end in spans)


def run_flow_checkers(root: str, package: Optional[str] = None,
                      paths: Optional[List[str]] = None,
                      entries: Sequence[str] = REPLAY_ENTRY_SUFFIXES,
                      per_file: bool = True) -> List[Finding]:
    """Convenience wrapper: build a session and run it."""
    session = FlowSession(root, package=package, paths=paths,
                          entries=entries)
    return session.run(per_file=per_file)

"""Per-function control-flow graphs.

A deliberately small CFG: basic blocks of statements linked by
successor edges, built from the structured control flow Python offers
(``if``/``for``/``while``/``try``/``with``, ``return``/``raise``/
``break``/``continue``). The interprocedural analyses walk statements
in block order — today they are flow-insensitive within a function,
but call-site extraction, reachable-statement iteration, and the
function span table all come from here, so the graph is the one place
that knows a function's shape.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

FunctionNode = ast.AST  # FunctionDef | AsyncFunctionDef


class Block:
    """One basic block: statements executed without branching."""

    __slots__ = ("index", "statements", "successors")

    def __init__(self, index: int):
        self.index = index
        self.statements: List[ast.stmt] = []
        self.successors: List["Block"] = []

    def link(self, other: Optional["Block"]) -> None:
        if other is not None and other not in self.successors:
            self.successors.append(other)

    def __repr__(self) -> str:
        return (f"<Block {self.index}: {len(self.statements)} stmts "
                f"-> {[b.index for b in self.successors]}>")


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    entry: Block
    blocks: List[Block] = field(default_factory=list)

    def statements(self):
        """Iterate every statement, block order (deterministic)."""
        for block in self.blocks:
            yield from block.statements


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def build(self, body: List[ast.stmt]) -> CFG:
        entry = self.new_block()
        exit_block = self.new_block()
        last = self._body(body, entry, exit_block, None, None)
        if last is not None:
            last.link(exit_block)
        return CFG(entry=entry, blocks=self.blocks)

    def _body(self, statements: List[ast.stmt], current: Block,
              fn_exit: Block, loop_head: Optional[Block],
              loop_exit: Optional[Block]) -> Optional[Block]:
        """Append *statements* starting in *current*; return the block
        control falls out of, or None if every path left."""
        for statement in statements:
            if current is None:
                current = self.new_block()  # unreachable tail; keep it
            kind = type(statement)
            if kind in (ast.If,):
                current.statements.append(statement)
                after = self.new_block()
                for branch in (statement.body, statement.orelse):
                    if branch:
                        head = self.new_block()
                        current.link(head)
                        last = self._body(branch, head, fn_exit,
                                          loop_head, loop_exit)
                        if last is not None:
                            last.link(after)
                    else:
                        current.link(after)
                current = after
            elif kind in (ast.For, ast.AsyncFor, ast.While):
                current.statements.append(statement)
                head = self.new_block()
                after = self.new_block()
                current.link(head)
                current.link(after)  # zero-iteration / false condition
                last = self._body(statement.body, head, fn_exit,
                                  head, after)
                if last is not None:
                    last.link(head)
                if statement.orelse:
                    else_head = self.new_block()
                    head.link(else_head)
                    last = self._body(statement.orelse, else_head,
                                      fn_exit, loop_head, loop_exit)
                    if last is not None:
                        last.link(after)
                current = after
            elif kind in (ast.Try, getattr(ast, "TryStar", ast.Try)):
                current.statements.append(statement)
                after = self.new_block()
                body_head = self.new_block()
                current.link(body_head)
                last = self._body(statement.body, body_head, fn_exit,
                                  loop_head, loop_exit)
                for handler in statement.handlers:
                    handler_head = self.new_block()
                    body_head.link(handler_head)  # approximation
                    handler_last = self._body(handler.body, handler_head,
                                              fn_exit, loop_head,
                                              loop_exit)
                    if handler_last is not None:
                        handler_last.link(after)
                if statement.orelse and last is not None:
                    else_head = self.new_block()
                    last.link(else_head)
                    last = self._body(statement.orelse, else_head,
                                      fn_exit, loop_head, loop_exit)
                if statement.finalbody:
                    final_head = self.new_block()
                    if last is not None:
                        last.link(final_head)
                    body_head.link(final_head)
                    last = self._body(statement.finalbody, final_head,
                                      fn_exit, loop_head, loop_exit)
                if last is not None:
                    last.link(after)
                current = after
            elif kind in (ast.With, ast.AsyncWith):
                current.statements.append(statement)
                inner = self.new_block()
                current.link(inner)
                current = self._body(statement.body, inner, fn_exit,
                                     loop_head, loop_exit)
            elif kind in (ast.Return, ast.Raise):
                current.statements.append(statement)
                current.link(fn_exit)
                current = None
            elif kind is ast.Break:
                current.statements.append(statement)
                current.link(loop_exit)
                current = None
            elif kind is ast.Continue:
                current.statements.append(statement)
                current.link(loop_head)
                current = None
            else:
                current.statements.append(statement)
        return current


def build_cfg(function: FunctionNode) -> CFG:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    return _Builder().build(list(function.body))


def function_span(function: FunctionNode) -> Tuple[int, int]:
    """Inclusive (first, last) source line of *function*."""
    end = getattr(function, "end_lineno", None)
    if end is None:  # pragma: no cover - pre-3.8 safety net
        end = max((getattr(n, "lineno", function.lineno)
                   for n in ast.walk(function)), default=function.lineno)
    first = function.lineno
    if function.decorator_list:
        first = min(first, function.decorator_list[0].lineno)
    return first, end

"""Replay-reachability nondeterminism taint (flow family 1).

The per-file determinism checker flags nondeterminism *sources* at
their call sites, but only inside modules on the hardcoded
record/replay allowlist — it cannot see a clock read hiding two calls
away in a helper module. This family closes that hole
interprocedurally:

``flow/tainted-call`` (error)
    A replay-reachable function calls a function whose **return
    value** derives (transitively) from a nondeterminism source —
    time, entropy, the global RNG, ``id()`` or salted ``hash()``. The
    source itself may live in a module the per-file checker would
    never scope strictly; what matters is that its value flows back
    into the record/replay path. The finding points at the call site
    and names the originating source.

``flow/missing-entry`` (error)
    A configured replay entry point (see
    :data:`repro.lint.flow.session.REPLAY_ENTRY_SUFFIXES`) matched no
    function in the call graph. Reachability under-approximates by
    design, so a silently-vanished entry point would turn the whole
    analysis into a no-op — this rule makes that loud.

Taint here is *return-value* taint: a function is tainted when some
``return`` expression contains a source call, a name assigned from
one, or a call to an already-tainted function. Source uses whose value
never escapes the function (e.g. a timestamp only logged) are the
per-file checker's business — in ``--flow`` runs the strict
determinism rules fire inside exactly the reachable functions, so the
two layers partition the work instead of double-reporting it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.determinism import (
    CLOCK_CALLS,
    ENTROPY_CALLS,
    GLOBAL_RNG_FUNCS,
    identity_key_uses,
)
from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import CallGraph, FunctionInfo
from repro.lint.flow.modgraph import ModuleInfo
from repro.lint.registry import ProjectChecker, register_project

RULE_TAINTED_CALL = "flow/tainted-call"
RULE_MISSING_ENTRY = "flow/missing-entry"


def resolve_external_call(module: ModuleInfo,
                          node: ast.Call) -> Optional[Tuple[str, str]]:
    """Resolve a call to ``(root_module, attr)`` for source matching.

    ``time.perf_counter()`` -> ``("time", "perf_counter")`` whether it
    was reached via ``import time``, ``import time as t``, or ``from
    time import perf_counter``. Dotted chains collapse to (root, last):
    ``datetime.datetime.now()`` -> ``("datetime", "now")``.
    """
    parts = []
    func = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    target = module.bindings.get(func.id)
    if target is None:
        return None
    dotted = ".".join([target] + list(reversed(parts)))
    pieces = dotted.split(".")
    if len(pieces) < 2:
        return None
    return pieces[0], pieces[-1]


def source_label(module: ModuleInfo, node: ast.Call) -> Optional[str]:
    """Human label of the nondeterminism source *node* calls, if any."""
    if isinstance(node.func, ast.Name) and node.func.id in ("id", "hash"):
        return f"builtin {node.func.id}()"
    resolved = resolve_external_call(module, node)
    if resolved is None:
        return None
    root, attr = resolved
    if root == "random" and attr in GLOBAL_RNG_FUNCS:
        return f"random.{attr}()"
    if root == "secrets":
        return f"secrets.{attr}()"
    if resolved in CLOCK_CALLS or resolved in ENTROPY_CALLS:
        return f"{root}.{attr}()"
    if root == "datetime" and ("datetime", attr) in CLOCK_CALLS:
        return f"datetime.{attr}()"
    return None


class _ReturnTaint:
    """Per-function: does the return value derive from a source?"""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: qualname -> source label that taints its return value.
        self.tainted: Dict[str, str] = {}
        self._absolved: Dict[str, Set[int]] = {}
        self._fixpoint()

    def _absolved_for(self, fn: FunctionInfo) -> Set[int]:
        cached = self._absolved.get(fn.module.name)
        if cached is None:
            cached = identity_key_uses(fn.module.tree)
            self._absolved[fn.module.name] = cached
        return cached

    def _expr_taint(self, fn: FunctionInfo, local_taint: Dict[str, str],
                    node: ast.expr) -> Optional[str]:
        """Source label if *node*'s value derives from a source."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in local_taint:
                return local_taint[sub.id]
            if not isinstance(sub, ast.Call):
                continue
            label = source_label(fn.module, sub)
            if label is not None:
                if (label == "builtin id()"
                        and id(sub) in self._absolved_for(fn)):
                    continue
                return label
            for callee in fn.call_targets.get(id(sub), ()):
                if callee in self.tainted:
                    short = callee.rsplit(".", 1)[-1]
                    return f"{short}() <- {self.tainted[callee]}"
        return None

    def _scan(self, fn: FunctionInfo) -> Optional[str]:
        local_taint: Dict[str, str] = {}
        for statement in fn.cfg.statements():
            if isinstance(statement, ast.Assign):
                label = self._expr_taint(fn, local_taint, statement.value)
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        if label is not None:
                            local_taint[target.id] = label
                        else:
                            local_taint.pop(target.id, None)
            elif (isinstance(statement, ast.AnnAssign)
                    and statement.value is not None
                    and isinstance(statement.target, ast.Name)):
                label = self._expr_taint(fn, local_taint, statement.value)
                if label is not None:
                    local_taint[statement.target.id] = label
            elif (isinstance(statement, ast.Return)
                    and statement.value is not None):
                label = self._expr_taint(fn, local_taint, statement.value)
                if label is not None:
                    return label
        return None

    def _fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.graph.functions):
                if qualname in self.tainted:
                    continue
                label = self._scan(self.graph.functions[qualname])
                if label is not None:
                    self.tainted[qualname] = label
                    changed = True


@register_project
class ReplayTaintChecker(ProjectChecker):
    """Flow family 1: nondeterministic values flowing into the
    record/replay path through function returns."""

    name = "flow-taint"
    rules = (RULE_TAINTED_CALL, RULE_MISSING_ENTRY)

    def check(self, session) -> Iterator[Finding]:
        graph = session.callgraph
        yield from self._missing_entries(session)
        taint = _ReturnTaint(graph)
        for qualname in sorted(session.reachable()):
            fn = graph.functions[qualname]
            yield from self._check_function(fn, taint)

    def _missing_entries(self, session) -> Iterator[Finding]:
        for suffix in session.entries:
            if not session.callgraph.match_suffix(suffix):
                yield Finding(
                    path=session.anchor_path, line=1, col=1,
                    rule=RULE_MISSING_ENTRY, severity=Severity.ERROR,
                    message=(
                        f"replay entry point '{suffix}' matches no "
                        "function in the call graph; reachability "
                        "analysis would silently skip that path — fix "
                        "the entry list or restore the function"
                    ),
                )

    def _check_function(self, fn: FunctionInfo,
                        taint: _ReturnTaint) -> Iterator[Finding]:
        for statement in fn.cfg.statements():
            for node in ast.walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                for callee in fn.call_targets.get(id(node), ()):
                    label = taint.tainted.get(callee)
                    if label is None:
                        continue
                    short = callee.rsplit(".", 1)[-1]
                    yield Finding(
                        path=fn.module.path,
                        line=getattr(node, "lineno", fn.span[0]),
                        col=getattr(node, "col_offset", 0) + 1,
                        rule=RULE_TAINTED_CALL,
                        severity=Severity.ERROR,
                        message=(
                            f"replay-reachable function {fn.name}() "
                            f"calls {short}(), whose return value "
                            f"derives from {label}; a value that "
                            "differs between record and replay poisons "
                            "recorded action chains"
                        ),
                    )
                    break

"""Whole-program dataflow analysis (the flow session).

The per-file checker families (:mod:`repro.lint.determinism`,
:mod:`repro.lint.memosafety`, …) see one module at a time, so they can
only guard the record/replay invariant where a hazard and its
consequence sit in the same file. The flow session parses the whole
package once and layers interprocedural analyses on top:

==============  ======================================================
module          builds
==============  ======================================================
``modgraph``    parsed module set + ``repro.*`` import resolution
``cfg``         per-function control-flow graphs
``callgraph``   project-wide call graph (type-informed dispatch)
``taint``       replay reachability + nondeterminism taint
``effects``     transitive attribute read/write sets vs the manifest
``codegen``     turbo emitter contract audit (generated-source lint)
``session``     orchestration: :class:`FlowSession`
==============  ======================================================

The session's replay-reachability computation replaces the hardcoded
``REPLAY_PATH_SUFFIXES`` allowlist: in ``--flow`` runs, strict
determinism rules apply to exactly the functions reachable from the
record/replay entry points, repo-wide (see docs/lint.md).
"""

# Importing the checker modules registers the project families.
from repro.lint.flow import codegen, effects, taint  # noqa: F401
from repro.lint.flow.session import (
    FlowSession,
    REPLAY_ENTRY_SUFFIXES,
    run_flow_checkers,
)

__all__ = ["FlowSession", "REPLAY_ENTRY_SUFFIXES", "run_flow_checkers"]

"""Lint driver: file discovery, suppression, reporting, exit codes.

This is both the engine behind ``fastsim-repro lint`` / ``lint-asm``
and a standalone console script (``fastsim-lint``). Exit codes follow
CI convention:

====  ============================================================
code  meaning
====  ============================================================
0     no findings survived suppression
1     at least one finding (any severity — see docs/lint.md)
2     usage or I/O error (unreadable path, no inputs)
====  ============================================================
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

# Importing the checker modules registers their families.
from repro.lint import (  # noqa: F401
    asmlint,
    determinism,
    memosafety,
    nodes,
    obschecks,
)
from repro.lint.asmlint import ASM_RULES, lint_asm_source
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, all_rules, run_checkers
from repro.lint.reporters import render_json, render_text
from repro.lint.suppress import apply_suppressions

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".pytest_cache", ".hypothesis",
    ".benchmarks", "repro.egg-info",
})


def lint_source(source: str, path: str = "<string>",
                strict: Optional[bool] = None) -> List[Finding]:
    """Lint Python *source*; suppression comments are honoured."""
    try:
        context = LintContext.for_source(source, path=path, strict=strict)
    except SyntaxError as exc:
        return [Finding(
            path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            rule="lint/syntax-error", severity=Severity.ERROR,
            message=f"cannot parse file: {exc.msg}",
        )]
    return apply_suppressions(run_checkers(context), source)


def lint_file(path: str, strict: Optional[bool] = None) -> List[Finding]:
    """Lint one Python file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, strict=strict)


def lint_asm_file(path: str) -> List[Finding]:
    """Lint one ``.s`` assembly file; suppressions are honoured."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return apply_suppressions(lint_asm_source(source, path=path), source)


def discover(paths: Sequence[str]) -> Tuple[List[str], List[str]]:
    """Split *paths* into (python_files, asm_files), walking directories.

    Raises :class:`FileNotFoundError` for a path that does not exist.
    """
    python_files: List[str] = []
    asm_files: List[str] = []

    def classify(file_path: str) -> None:
        if file_path.endswith(".py"):
            python_files.append(file_path)
        elif file_path.endswith(".s"):
            asm_files.append(file_path)

    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in _SKIP_DIRS and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    classify(os.path.join(root, name))
        elif os.path.isfile(path):
            classify(path)
        else:
            raise FileNotFoundError(path)
    return python_files, asm_files


def lint_paths(paths: Sequence[str],
               strict: Optional[bool] = None) -> List[Finding]:
    """Lint every ``.py`` and ``.s`` file under *paths*."""
    python_files, asm_files = discover(paths)
    findings: List[Finding] = []
    for file_path in python_files:
        findings.extend(lint_file(file_path, strict=strict))
    for file_path in asm_files:
        findings.extend(lint_asm_file(file_path))
    return sorted(findings)


def report(findings: List[Finding], fmt: str = "text") -> str:
    """Render findings in ``text`` or ``json`` format."""
    if fmt == "json":
        return render_json(findings)
    return render_text(findings)


def exit_code(findings: List[Finding]) -> int:
    """CI exit code for a finished run (any finding fails the gate)."""
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point (``fastsim-lint``)."""
    parser = argparse.ArgumentParser(
        prog="fastsim-lint",
        description=(
            "Determinism & memo-safety lint for the FastSim "
            "reproduction (see docs/lint.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="apply record/replay-path-only rules to every module",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id and exit",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in sorted(set(all_rules()) | set(ASM_RULES)):
            print(rule)
        return 0

    try:
        findings = lint_paths(
            options.paths, strict=True if options.strict else None
        )
    except FileNotFoundError as exc:
        print(f"fastsim-lint: no such path: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"fastsim-lint: {exc}", file=sys.stderr)
        return 2
    print(report(findings, options.format))
    return exit_code(findings)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

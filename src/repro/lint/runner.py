"""Lint driver: file discovery, suppression, reporting, exit codes.

This is both the engine behind ``fastsim-repro lint`` / ``lint-asm``
and a standalone console script (``fastsim-lint``). Exit codes follow
CI convention:

====  ============================================================
code  meaning
====  ============================================================
0     no findings survived suppression (and the baseline, if any)
1     at least one finding (any severity — see docs/lint.md)
2     usage or I/O error (unreadable path, no inputs, bad baseline)
====  ============================================================

Two analysis modes share this driver:

**per-file** (default)
    Every registered :class:`~repro.lint.registry.Checker` family runs
    over each file independently; strict-only rules scope to the
    ``REPLAY_PATH_SUFFIXES`` allowlist (or everywhere with
    ``--strict``). ``--jobs N`` fans the files out over a process
    pool — results are merged in deterministic sorted order, so the
    report is byte-identical at any job count.

**flow** (``--flow``)
    Directory arguments become whole-program
    :class:`~repro.lint.flow.FlowSession`\\ s: the package is parsed
    once, replay reachability is *computed* from the call graph, and
    the project checker families (taint, effects, codegen contracts)
    run on top of reachability-scoped per-file findings. The flow
    session is single-process by design — it is one analysis, not a
    file loop.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

# Importing the checker modules registers their families.
from repro.lint import (  # noqa: F401
    asmlint,
    determinism,
    memosafety,
    nodes,
    obschecks,
)
from repro.lint.asmlint import ASM_RULES, lint_asm_source
from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, all_rules, run_checkers
from repro.lint.reporters import (
    render_json,
    render_sarif,
    render_text,
)
from repro.lint.suppress import apply_suppressions

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".pytest_cache", ".hypothesis",
    ".benchmarks", "repro.egg-info",
})


def lint_source(source: str, path: str = "<string>",
                strict: Optional[bool] = None) -> List[Finding]:
    """Lint Python *source*; suppression comments are honoured."""
    try:
        context = LintContext.for_source(source, path=path, strict=strict)
    except SyntaxError as exc:
        return [Finding(
            path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            rule="lint/syntax-error", severity=Severity.ERROR,
            message=f"cannot parse file: {exc.msg}",
        )]
    return apply_suppressions(run_checkers(context), source)


def lint_file(path: str, strict: Optional[bool] = None) -> List[Finding]:
    """Lint one Python file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, strict=strict)


def lint_asm_file(path: str) -> List[Finding]:
    """Lint one ``.s`` assembly file; suppressions are honoured."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return apply_suppressions(lint_asm_source(source, path=path), source)


def discover(paths: Sequence[str]) -> Tuple[List[str], List[str]]:
    """Split *paths* into (python_files, asm_files), walking directories.

    Inputs are deduplicated: passing a file plus a directory containing
    it (or the same path twice) lints the file once — each result list
    keeps the first occurrence order. Raises
    :class:`FileNotFoundError` for a path that does not exist.
    """
    python_files: List[str] = []
    asm_files: List[str] = []
    seen: set = set()

    def classify(file_path: str) -> None:
        key = os.path.realpath(file_path)
        if key in seen:
            return
        if file_path.endswith(".py"):
            seen.add(key)
            python_files.append(file_path)
        elif file_path.endswith(".s"):
            seen.add(key)
            asm_files.append(file_path)

    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in _SKIP_DIRS and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    classify(os.path.join(root, name))
        elif os.path.isfile(path):
            classify(path)
        else:
            raise FileNotFoundError(path)
    return python_files, asm_files


def _python_job(args: Tuple[str, Optional[bool]]) -> List[Finding]:
    """Process-pool worker: lint one Python file."""
    path, strict = args
    return lint_file(path, strict=strict)


def _asm_job(path: str) -> List[Finding]:
    """Process-pool worker: lint one assembly file."""
    return lint_asm_file(path)


def lint_paths(paths: Sequence[str], strict: Optional[bool] = None,
               jobs: int = 1) -> List[Finding]:
    """Lint every ``.py`` and ``.s`` file under *paths*.

    *jobs* > 1 distributes files over a process pool. Findings are
    sorted before returning, so the merged report is deterministic and
    identical at any job count.
    """
    python_files, asm_files = discover(paths)
    findings: List[Finding] = []
    if jobs > 1 and len(python_files) + len(asm_files) > 1:
        with multiprocessing.Pool(processes=jobs) as pool:
            for result in pool.map(
                    _python_job,
                    [(path, strict) for path in python_files]):
                findings.extend(result)
            for result in pool.map(_asm_job, asm_files):
                findings.extend(result)
    else:
        for file_path in python_files:
            findings.extend(lint_file(file_path, strict=strict))
        for file_path in asm_files:
            findings.extend(lint_asm_file(file_path))
    return sorted(findings)


def lint_flow(paths: Sequence[str], jobs: int = 1) -> List[Finding]:
    """Whole-program flow analysis over *paths*.

    Each directory argument becomes one
    :class:`~repro.lint.flow.FlowSession` (package root = the
    directory). Loose ``.py`` file arguments fall back to per-file
    lint; ``.s`` files run the assembly checker as usual. Suppression
    comments are honoured everywhere. *jobs* accelerates the non-flow
    remainder; the session itself is single-process.
    """
    from repro.lint.flow import FlowSession

    findings: List[Finding] = []
    loose: List[str] = []
    for path in paths:
        if not os.path.isdir(path):
            loose.append(path)
            continue
        session = FlowSession(path)
        by_path: Dict[str, List[Finding]] = {}
        for finding in session.run():
            by_path.setdefault(finding.path, []).append(finding)
        for finding_path in sorted(by_path):
            info = session.modgraph.by_path.get(finding_path)
            if info is not None:
                findings.extend(apply_suppressions(
                    by_path[finding_path], info.source))
            else:
                findings.extend(by_path[finding_path])
        # The session covers ``.py`` only; assembly under the same
        # tree still goes through the per-file assembly family.
        _, asm_files = discover([path])
        for file_path in asm_files:
            findings.extend(lint_asm_file(file_path))
    if loose:
        findings.extend(lint_paths(loose, jobs=jobs))
    return sorted(findings)


def report(findings: List[Finding], fmt: str = "text") -> str:
    """Render findings in ``text``, ``json`` or ``sarif`` format."""
    if fmt == "json":
        return render_json(findings)
    if fmt == "sarif":
        return render_sarif(
            findings, rule_ids=sorted(set(all_rules()) | set(ASM_RULES)))
    return render_text(findings)


def exit_code(findings: List[Finding]) -> int:
    """CI exit code for a finished run (any finding fails the gate)."""
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point (``fastsim-lint``)."""
    parser = argparse.ArgumentParser(
        prog="fastsim-lint",
        description=(
            "Determinism & memo-safety lint for the FastSim "
            "reproduction (see docs/lint.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="apply record/replay-path-only rules to every module",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help=(
            "whole-program analysis: build a flow session per "
            "directory (call-graph reachability scopes the strict "
            "rules; taint/effects/codegen families run on top)"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="lint files on N worker processes (per-file mode)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="subtract findings accepted by this baseline file",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="accept the current findings into FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id and exit",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        # Project (flow) families register on import.
        import repro.lint.flow  # noqa: F401
        for rule in sorted(set(all_rules()) | set(ASM_RULES)):
            print(rule)
        return 0
    if options.jobs < 1:
        print("fastsim-lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        if options.flow:
            findings = lint_flow(options.paths, jobs=options.jobs)
        else:
            findings = lint_paths(
                options.paths, strict=True if options.strict else None,
                jobs=options.jobs,
            )
    except FileNotFoundError as exc:
        print(f"fastsim-lint: no such path: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"fastsim-lint: {exc}", file=sys.stderr)
        return 2

    if options.write_baseline:
        save_baseline(options.write_baseline, findings)
        print(f"baseline: accepted {len(findings)} finding(s) into "
              f"{options.write_baseline}")
        return 0
    if options.baseline:
        try:
            baseline = load_baseline(options.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"fastsim-lint: {exc}", file=sys.stderr)
            return 2
        findings, absorbed = apply_baseline(findings, baseline)
        if absorbed:
            print(f"baseline: {absorbed} accepted finding(s) hidden",
                  file=sys.stderr)

    print(report(findings, options.format))
    return exit_code(findings)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Baseline ratchet — adopt deeper rules without a flag day.

A baseline file records the *accepted* findings of one lint run as
stable fingerprints. Subsequent runs subtract the baseline, so only
**new** findings fail the gate — and because a fingerprint disappears
from the comparison the moment its finding is fixed, the baseline can
only shrink in effect: a ratchet, not a blanket waiver.

Fingerprints are ``sha256(path|rule|message)`` — deliberately **not**
including the line number, so reflowing a file does not resurrect an
accepted finding, while any change to what the checker actually says
(different rule, different message, different file) counts as new.
Identical findings in one file share a fingerprint; the baseline
stores a count per fingerprint, so *adding* a second identical hazard
still fails.

File format (JSON, sorted, diff-friendly)::

    {
      "version": 1,
      "fingerprints": {"<hex>": {"count": N, "note": "path: message"}}
    }

Workflow: ``fastsim-lint --write-baseline lint-baseline.json`` accepts
the current findings; ``fastsim-lint --baseline lint-baseline.json``
gates on anything the baseline does not cover.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

#: Schema version of the baseline file.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable identity of *finding* (line-number independent)."""
    payload = f"{finding.path}|{finding.rule}|{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def make_baseline(findings: List[Finding]) -> Dict:
    """Baseline document accepting exactly *findings*."""
    fingerprints: Dict[str, Dict] = {}
    for finding in findings:
        key = fingerprint(finding)
        entry = fingerprints.setdefault(key, {
            "count": 0,
            "note": f"{finding.path}: {finding.message} [{finding.rule}]",
        })
        entry["count"] += 1
    return {"version": BASELINE_VERSION, "fingerprints": fingerprints}


def save_baseline(path: str, findings: List[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(make_baseline(findings), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "fingerprints" not in document:
        raise ValueError(f"{path}: not a lint baseline file")
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {version!r} is not supported "
            f"(expected {BASELINE_VERSION})"
        )
    return document


def apply_baseline(findings: List[Finding],
                   baseline: Dict) -> Tuple[List[Finding], int]:
    """Subtract baselined findings.

    Returns ``(new_findings, suppressed_count)``. Per fingerprint, up
    to the baselined *count* findings are absorbed (sorted order, so
    the survivors are deterministic); any excess — a second identical
    hazard added later — stays on the gate.
    """
    budgets = {
        key: int(entry.get("count", 0))
        for key, entry in baseline.get("fingerprints", {}).items()
    }
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(findings):
        key = fingerprint(finding)
        if budgets.get(key, 0) > 0:
            budgets[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed

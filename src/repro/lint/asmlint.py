"""ISA program lint (checker family 4).

Static checks over ``.s`` sources for the toy SPARC-like ISA — applied
to the hand-written workloads and to :mod:`repro.workloads.builder`
output before a simulator ever fetches an instruction. The analyses
reuse the assembler's own parse/layout passes (so line numbers match
``AssemblerError`` positions exactly) and then run a small CFG/dataflow
pass over the decoded :class:`~repro.isa.instruction.Instruction`
stream.

Rules
-----

``asm/undefined-label`` (error)
    A symbol referenced by an instruction or data directive that no
    label or ``.equ`` defines. Reported *before* assembly, so every
    undefined symbol is listed (``assemble()`` stops at the first).

``asm/parse-error`` (error)
    The assembler rejected the program (bad mnemonic, operand count,
    range). One finding at the assembler's own error position.

``asm/read-before-write`` (error)
    A register (integer, FP, or a condition code) read on some path
    before anything writes it. Forward dataflow over the CFG with
    meet = intersection of definitely-written registers; the entry
    point starts with only ``%g0``/``%sp``/``%fp`` defined (the
    loader's guarantee), while address-taken labels (jump-table
    targets referenced from ``.word`` data) conservatively assume an
    unknown caller defined everything.

``asm/delay-slot-hazard`` (error)
    An unlabeled instruction immediately after an unconditional
    non-returning transfer (``ba``, ``halt``, ``ret``/``jmpl`` to
    ``%g0``). This ISA has **no** branch delay slots (DESIGN.md), so
    such an instruction never executes on that path — the classic
    artifact of porting real SPARC code that filled its delay slot.

``asm/unreachable-block`` (warning)
    A labeled block no control path reaches from the entry point or
    any address-taken label.

``asm/misaligned-memory`` (warning)
    A load/store whose immediate displacement is not a multiple of
    the access width — with an aligned base (the universal convention
    here) the access faults or straddles.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import AssemblerError, ReproError
from repro.isa.assembler import Assembler
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import (
    FP_REG,
    INT_REG_NAMES,
    NUM_FP_REGS,
    NUM_INT_REGS,
    SP_REG,
    ZERO_REG,
    fp_reg_name,
    int_reg_name,
)
from repro.lint.findings import Finding, Severity

#: Rule ids this module can emit (the asm counterpart of a registry
#: checker's ``rules`` tuple; the CLI merges both lists).
ASM_RULES = (
    "asm/undefined-label",
    "asm/parse-error",
    "asm/read-before-write",
    "asm/delay-slot-hazard",
    "asm/unreachable-block",
    "asm/misaligned-memory",
)

_IDENT_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")

#: Directives whose operands never reference code symbols.
_SKIP_OPERAND_DIRECTIVES = frozenset({
    ".ascii", ".asciz", ".float", ".double", ".space", ".align",
    ".global", ".text", ".data",
})

# Dataflow register tokens: integers index the integer file, ("f", n)
# the FP file, and two sentinels stand for the condition-code words.
_ICC = "icc"
_FCC = "fcc"

_ALL_REGS: FrozenSet[object] = frozenset(
    list(range(NUM_INT_REGS))
    + [("f", i) for i in range(NUM_FP_REGS)]
    + [_ICC, _FCC]
)

#: What the loader guarantees at the entry point: the zero register,
#: a valid stack, and a frame pointer.
_ENTRY_REGS: FrozenSet[object] = frozenset({ZERO_REG, SP_REG, FP_REG})


def _reg_label(token: object) -> str:
    if token == _ICC:
        return "%icc"
    if token == _FCC:
        return "%fcc"
    if isinstance(token, tuple):
        return fp_reg_name(token[1])
    return int_reg_name(token)


def _is_zeroing_idiom(instr: Instruction) -> bool:
    """``sub %r,%r,%r`` / ``xor %r,%r,%r`` / ``fsub %f,%f,%f`` — the
    conventional way to zero a register (the ISA has no ``fclr``).
    The result is defined whatever the register held, so it counts as
    a write, not a read."""
    if instr.opcode in (Opcode.SUB, Opcode.XOR):
        return (instr.rd is not None and instr.rs1 == instr.rs2 == instr.rd)
    if instr.opcode is Opcode.FSUB:
        return (instr.fd is not None and instr.fs1 == instr.fs2 == instr.fd)
    return False


def _reads(instr: Instruction) -> List[object]:
    if _is_zeroing_idiom(instr):
        return []
    reads: List[object] = list(instr.int_sources())
    reads.extend(("f", f) for f in instr.fp_sources())
    if instr.info.reads_icc:
        reads.append(_ICC)
    if instr.info.reads_fcc:
        reads.append(_FCC)
    return reads


def _writes(instr: Instruction) -> List[object]:
    writes: List[object] = []
    dest = instr.int_dest()
    if dest is not None:
        writes.append(dest)
    fdest = instr.fp_dest()
    if fdest is not None:
        writes.append(("f", fdest))
    if instr.info.sets_icc:
        writes.append(_ICC)
    if instr.info.sets_fcc:
        writes.append(_FCC)
    return writes


def _is_nonreturning(instr: Instruction) -> bool:
    """Unconditional transfers with no fall-through path."""
    if instr.opcode in (Opcode.BA, Opcode.HALT):
        return True
    if instr.opcode is Opcode.JMPL:
        return instr.rd is None or instr.rd == ZERO_REG
    return False


def _referenced_symbols(operand: str) -> Iterable[str]:
    """Symbol names an operand expression references."""
    text = re.sub(r"%(hi|lo)\(", " ", operand)
    text = re.sub(r"%[\w]+", " ", text)  # registers (%hi/%lo already gone)
    for separator in "[]()+-,":
        text = text.replace(separator, " ")
    for token in text.split():
        try:
            int(token, 0)
            continue
        except ValueError:
            pass
        if _IDENT_RE.match(token) and not token.startswith("."):
            yield token


class _Program:
    """Parsed + assembled view of one ``.s`` source."""

    def __init__(self, source: str, path: str):
        assembler = Assembler()
        self.items = assembler._parse(source, path)
        symbols, text_stmts, data_stmts, _ = assembler._layout(
            self.items, path
        )
        self.symbols = symbols
        self.executable = assembler.assemble(source, path)
        #: address of every emitted instruction -> source line
        self.line_of: Dict[int, int] = {}
        for stmt in text_stmts:
            count = assembler._instruction_count(stmt, path)
            for k in range(count):
                self.line_of[stmt.address + 4 * k] = stmt.line
        #: label name -> source line
        self.label_lines: Dict[str, int] = {
            payload: lineno for lineno, kind, payload in self.items
            if kind == "label"
        }
        #: text-segment label name -> address
        executable = self.executable
        self.text_labels: Dict[str, int] = {
            label: addr for label, addr in symbols.items()
            if executable.contains_text(addr) and label in self.label_lines
        }
        #: addresses of text labels referenced from data directives
        #: (jump tables): extra reachability/dataflow roots.
        self.address_taken: Set[int] = set()
        for stmt in data_stmts:
            if stmt.mnemonic not in (".word", ".half"):
                continue
            for operand in stmt.operands:
                for symbol in _referenced_symbols(operand):
                    addr = symbols.get(symbol)
                    if addr is not None and executable.contains_text(addr):
                        self.address_taken.add(addr)

    def line(self, address: int) -> int:
        return self.line_of.get(address, 1)


def _scan_undefined(source: str, path: str) -> List[Finding]:
    """Pre-assembly pass listing every undefined symbol reference."""
    assembler = Assembler()
    items = assembler._parse(source, path)
    defined: Set[str] = set()
    for _lineno, kind, payload in items:
        if kind == "label":
            defined.add(payload)
        else:
            parts = payload.split(None, 1)
            if parts and parts[0].lower() == ".equ":
                operands = assembler._split_operands(
                    parts[1] if len(parts) > 1 else ""
                )
                if operands:
                    defined.add(operands[0])
    findings: List[Finding] = []
    reported: Set[Tuple[int, str]] = set()
    for lineno, kind, payload in items:
        if kind == "label":
            continue
        parts = payload.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic in _SKIP_OPERAND_DIRECTIVES:
            continue
        operands = assembler._split_operands(parts[1] if len(parts) > 1 else "")
        if mnemonic == ".equ":
            operands = operands[1:]  # the name being defined
        for operand in operands:
            for symbol in _referenced_symbols(operand):
                if symbol in defined or (lineno, symbol) in reported:
                    continue
                reported.add((lineno, symbol))
                findings.append(Finding(
                    path=path, line=lineno, col=1,
                    rule="asm/undefined-label", severity=Severity.ERROR,
                    message=(
                        f"reference to undefined label {symbol!r}; "
                        "no label or .equ defines it"
                    ),
                ))
    return findings


def _successors(instr: Instruction,
                program: _Program) -> List[Tuple[int, bool]]:
    """``(address, callee_returns)`` successor edges of one instruction.

    ``callee_returns`` marks fall-through edges of calls, where the
    dataflow must assume the callee defined everything.
    """
    executable = program.executable
    edges: List[Tuple[int, bool]] = []

    def fall_through(call_return: bool = False) -> None:
        if executable.contains_text(instr.fall_through):
            edges.append((instr.fall_through, call_return))

    if instr.opcode is Opcode.HALT:
        return edges
    if instr.opcode is Opcode.BA:
        return [(instr.target, False)]
    if instr.opcode is Opcode.BN:
        fall_through()
        return edges
    if instr.is_conditional_branch:
        edges.append((instr.target, False))
        fall_through()
        return edges
    if instr.opcode is Opcode.CALL:
        edges.append((instr.target, False))
        fall_through(call_return=True)
        return edges
    if instr.opcode is Opcode.JMPL:
        # Indirect: static targets unknown (address-taken labels are
        # roots). A linking jmpl behaves like a call and returns.
        if instr.rd is not None and instr.rd != ZERO_REG:
            fall_through(call_return=True)
        return edges
    fall_through()
    return edges


def _analyze(program: _Program, path: str) -> List[Finding]:
    findings: List[Finding] = []
    instructions = program.executable.instructions()
    by_address = {instr.address: instr for instr in instructions}
    label_addresses = set(program.text_labels.values())
    entry = program.executable.entry
    roots = {entry} | program.address_taken

    # -- misaligned memory operands (purely local) ----------------------
    for instr in instructions:
        if (instr.is_mem and instr.rs2 is None and instr.imm
                and instr.imm % instr.access_width != 0):
            findings.append(Finding(
                path=path, line=program.line(instr.address), col=1,
                rule="asm/misaligned-memory", severity=Severity.WARNING,
                message=(
                    f"displacement {instr.imm} is not a multiple of the "
                    f"{instr.access_width}-byte access width; with an "
                    "aligned base this access faults"
                ),
            ))

    # -- delay-slot hazards ---------------------------------------------
    for instr in instructions:
        if not _is_nonreturning(instr):
            continue
        orphan = instr.fall_through
        if (orphan in by_address and orphan not in label_addresses):
            findings.append(Finding(
                path=path, line=program.line(orphan), col=1,
                rule="asm/delay-slot-hazard", severity=Severity.ERROR,
                message=(
                    "unlabeled instruction after an unconditional "
                    "transfer never executes — this ISA has no branch "
                    "delay slots (likely a ported SPARC delay slot)"
                ),
            ))

    # -- reachability + definite-assignment dataflow --------------------
    # Forward analysis, meet = intersection of definitely-written
    # registers over predecessor edges. Call-return edges assume the
    # callee wrote everything.
    in_state: Dict[int, Set[object]] = {}
    worklist: List[int] = []

    # Function entries (call targets and address-taken labels) are
    # analysed under an unknown-caller assumption — everything defined
    # on entry — like any intraprocedural definite-assignment check;
    # otherwise callee-save spills of the caller's dead registers
    # would be flagged. Their in-state is pinned: edges never narrow
    # it. The program entry point is pinned too, to the loader's
    # actual guarantee, so it is checked for real.
    pinned: Dict[int, FrozenSet[object]] = {
        root: _ALL_REGS for root in roots
    }
    for instr in instructions:
        if instr.opcode is Opcode.CALL and instr.target in by_address:
            pinned[instr.target] = _ALL_REGS
    pinned[entry] = _ENTRY_REGS

    def join(address: int, state: FrozenSet[object]) -> None:
        if address not in by_address:
            return
        current = in_state.get(address)
        if current is None:
            in_state[address] = set(pinned.get(address, state))
            worklist.append(address)
        elif address not in pinned:
            narrowed = current & state
            if narrowed != current:
                in_state[address] = narrowed
                worklist.append(address)

    for root in sorted(roots):
        join(root, pinned[root])

    while worklist:
        address = worklist.pop()
        instr = by_address[address]
        out_state = frozenset(in_state[address]) | frozenset(_writes(instr))
        for successor, callee_returns in _successors(instr, program):
            join(successor, _ALL_REGS if callee_returns else out_state)

    reported_reads: Set[Tuple[int, object]] = set()
    for instr in instructions:
        state = in_state.get(instr.address)
        if state is None:
            continue  # unreachable; reported separately
        for reg in _reads(instr):
            if reg not in state and (instr.address, reg) not in reported_reads:
                reported_reads.add((instr.address, reg))
                findings.append(Finding(
                    path=path, line=program.line(instr.address), col=1,
                    rule="asm/read-before-write", severity=Severity.ERROR,
                    message=(
                        f"{_reg_label(reg)} is read here but no path "
                        "from the entry point writes it first"
                    ),
                ))

    # -- unreachable labeled blocks -------------------------------------
    reachable = set(in_state)
    for label, address in sorted(program.text_labels.items()):
        if address not in reachable and address in by_address:
            findings.append(Finding(
                path=path, line=program.label_lines.get(label, 1), col=1,
                rule="asm/unreachable-block", severity=Severity.WARNING,
                message=(
                    f"label {label!r} is unreachable from the entry "
                    "point and is never address-taken"
                ),
            ))
    return findings


def lint_asm_source(source: str, path: str = "<asm>") -> List[Finding]:
    """Lint one assembly source; findings come back sorted.

    Suppression comments are **not** applied here (the runner does
    that), matching :func:`repro.lint.registry.run_checkers`.
    """
    findings = _scan_undefined(source, path)
    if findings:
        # Assembly would stop at the first undefined symbol anyway;
        # report them all and skip the deeper analyses.
        return sorted(findings)
    try:
        program = _Program(source, path)
    except AssemblerError as exc:
        return [Finding(
            path=path, line=exc.line or 1, col=1,
            rule="asm/parse-error", severity=Severity.ERROR,
            message=f"assembler rejected the program: {exc}",
        )]
    except ReproError as exc:
        return [Finding(
            path=path, line=1, col=1,
            rule="asm/parse-error", severity=Severity.ERROR,
            message=f"assembler rejected the program: {exc}",
        )]
    return sorted(_analyze(program, path))

"""The ``bQ`` — register checkpoints for speculative direct execution.

FastSim saves all register values (integer, floating point, and control
registers) into the ``bQ`` when — and only when — a conditional branch
is *mispredicted*: correctly predicted branches never roll back, so no
state is saved for them (paper §3.2). The bQ holds up to four
outstanding checkpoints, matching the processor model's limit of four
unresolved speculative branches.

Checkpoints are keyed by the control-record index of the mispredicted
branch. Restoring checkpoint *c* also discards every younger
checkpoint, because a rollback squashes everything after the branch.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SimulationError
from repro.emulator.state import ArchState

#: The processor model speculates through at most this many branches.
BQ_CAPACITY = 4


class BranchCheckpointQueue:
    """Register checkpoints for outstanding mispredicted branches."""

    def __init__(self, capacity: int = BQ_CAPACITY):
        self.capacity = capacity
        self._checkpoints: Dict[int, tuple] = {}
        #: High-water mark, reported in simulation statistics.
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._checkpoints)

    def save(self, control_index: int, state: ArchState,
             corrected_pc: int) -> None:
        """Checkpoint *state* with the PC forced to the corrected target."""
        if len(self._checkpoints) >= self.capacity:
            raise SimulationError(
                f"bQ overflow: more than {self.capacity} outstanding "
                "mispredicted branches"
            )
        snapshot = state.snapshot_registers()
        # Replace the snapshot PC with the corrected branch target so a
        # restore resumes on the right path.
        snapshot = snapshot[:4] + (corrected_pc,) + snapshot[5:]
        self._checkpoints[control_index] = snapshot
        self.max_occupancy = max(self.max_occupancy, len(self._checkpoints))

    def restore(self, control_index: int, state: ArchState) -> None:
        """Restore checkpoint *control_index* and drop younger ones."""
        try:
            snapshot = self._checkpoints.pop(control_index)
        except KeyError:
            raise SimulationError(
                f"no bQ checkpoint for control record {control_index}"
            ) from None
        state.restore_registers(snapshot)
        state.halted = False  # a wrong path may have executed halt
        for index in self._younger(control_index):
            del self._checkpoints[index]

    def discard(self, control_index: int) -> None:
        """Drop the checkpoint for a resolved, *confirmed* misprediction.

        Not used in the normal flow (mispredictions always restore), but
        exposed for pipeline-drain cleanup at simulation end.
        """
        self._checkpoints.pop(control_index, None)

    def discard_younger(self, control_index: int) -> None:
        """Drop checkpoints strictly younger than *control_index*."""
        for index in self._younger(control_index):
            del self._checkpoints[index]

    def _younger(self, control_index: int) -> List[int]:
        return [i for i in self._checkpoints if i > control_index]

    def outstanding(self) -> List[int]:
        """Control-record indices with live checkpoints, oldest first."""
        return sorted(self._checkpoints)

"""Sparse paged memory for functional execution.

Memory is a dictionary of 4 KiB pages allocated on first touch, which
lets the 32-bit address space hold a small text segment, a data segment,
a heap, and a high stack without reserving gigabytes. All multi-byte
accesses are big-endian (SPARC byte order).

Alignment is enforced (word accesses on 4-byte boundaries and so on),
as on SPARC; the simulators rely on this to keep cache-line arithmetic
simple. Accesses that straddle a page boundary are legal as long as
they are aligned — an aligned access never crosses a page.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, Tuple

from repro.errors import MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

_PACK_FLOAT = struct.Struct(">f")
_PACK_DOUBLE = struct.Struct(">d")


class Memory:
    """Byte-addressable sparse memory with big-endian accessors."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    # -- page management ------------------------------------------------

    def _page(self, address: int) -> bytearray:
        index = address >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def pages(self) -> Iterator[Tuple[int, bytearray]]:
        """Iterate over (base_address, page) pairs of touched pages."""
        for index, page in sorted(self._pages.items()):
            yield index << PAGE_SHIFT, page

    @property
    def touched_bytes(self) -> int:
        """Total bytes in allocated pages (footprint measure)."""
        return len(self._pages) * PAGE_SIZE

    def _check(self, address: int, width: int) -> None:
        if address < 0 or address + width > (1 << 32):
            raise MemoryFault(address, "access outside 32-bit address space")
        if address % width != 0:
            raise MemoryFault(address, f"misaligned {width}-byte access")

    # -- raw byte access ------------------------------------------------

    def load_bytes(self, address: int, data: bytes) -> None:
        """Bulk-load *data* at *address* (used by the program loader)."""
        offset = 0
        remaining = len(data)
        while remaining:
            page = self._page(address + offset)
            page_offset = (address + offset) & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - page_offset)
            page[page_offset:page_offset + chunk] = data[offset:offset + chunk]
            offset += chunk
            remaining -= chunk

    def read_bytes(self, address: int, length: int) -> bytes:
        """Read *length* raw bytes starting at *address*."""
        out = bytearray()
        offset = 0
        while offset < length:
            page = self._page(address + offset)
            page_offset = (address + offset) & PAGE_MASK
            chunk = min(length - offset, PAGE_SIZE - page_offset)
            out += page[page_offset:page_offset + chunk]
            offset += chunk
        return bytes(out)

    # -- integer accessors ----------------------------------------------

    def read_word(self, address: int) -> int:
        """Read an unsigned 32-bit big-endian word."""
        self._check(address, 4)
        page = self._page(address)
        offset = address & PAGE_MASK
        return int.from_bytes(page[offset:offset + 4], "big")

    def write_word(self, address: int, value: int) -> None:
        self._check(address, 4)
        page = self._page(address)
        offset = address & PAGE_MASK
        page[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "big")

    def read_half(self, address: int) -> int:
        self._check(address, 2)
        page = self._page(address)
        offset = address & PAGE_MASK
        return int.from_bytes(page[offset:offset + 2], "big")

    def write_half(self, address: int, value: int) -> None:
        self._check(address, 2)
        page = self._page(address)
        offset = address & PAGE_MASK
        page[offset:offset + 2] = (value & 0xFFFF).to_bytes(2, "big")

    def read_byte(self, address: int) -> int:
        self._check(address, 1)
        return self._page(address)[address & PAGE_MASK]

    def write_byte(self, address: int, value: int) -> None:
        self._check(address, 1)
        self._page(address)[address & PAGE_MASK] = value & 0xFF

    def read_width(self, address: int, width: int) -> int:
        """Read an unsigned value of 1, 2, 4, or 8 bytes."""
        if width == 4:
            return self.read_word(address)
        if width == 1:
            return self.read_byte(address)
        if width == 2:
            return self.read_half(address)
        if width == 8:
            self._check(address, 8)
            return int.from_bytes(self.read_bytes(address, 8), "big")
        raise MemoryFault(address, f"unsupported access width {width}")

    def write_width(self, address: int, value: int, width: int) -> None:
        """Write an unsigned value of 1, 2, 4, or 8 bytes."""
        if width == 4:
            self.write_word(address, value)
        elif width == 1:
            self.write_byte(address, value)
        elif width == 2:
            self.write_half(address, value)
        elif width == 8:
            self._check(address, 8)
            self.load_bytes(address, (value & (1 << 64) - 1).to_bytes(8, "big"))
        else:
            raise MemoryFault(address, f"unsupported access width {width}")

    # -- floating point accessors ----------------------------------------

    def read_float(self, address: int) -> float:
        self._check(address, 4)
        return _PACK_FLOAT.unpack(self.read_bytes(address, 4))[0]

    def write_float(self, address: int, value: float) -> None:
        self._check(address, 4)
        self.load_bytes(address, _PACK_FLOAT.pack(value))

    def read_double(self, address: int) -> float:
        self._check(address, 8)
        return _PACK_DOUBLE.unpack(self.read_bytes(address, 8))[0]

    def write_double(self, address: int, value: float) -> None:
        self._check(address, 8)
        self.load_bytes(address, _PACK_DOUBLE.pack(value))

"""Architectural state: register files, condition codes, PC, output.

:class:`ArchState` is the complete user-visible machine state operated
on by functional execution. Integer registers hold unsigned 32-bit
values (two's complement views are computed where needed); FP registers
hold Python floats (our stand-in for the R10000's 32×64-bit FP file —
``ldf``/``stf`` convert through IEEE binary32 so single-precision
workloads still round correctly).

Condition codes follow SPARC: ``icc`` packs N/Z/V/C, set only by the
``…cc`` opcodes; ``fcc`` holds the result of ``fcmp`` (equal / less /
greater / unordered).
"""

from __future__ import annotations

from typing import List, Optional

from repro.emulator.memory import Memory
from repro.isa.program import STACK_TOP, Executable
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, SP_REG

# icc bit positions.
ICC_N = 8
ICC_Z = 4
ICC_V = 2
ICC_C = 1

# fcc values.
FCC_EQ = 0
FCC_LT = 1
FCC_GT = 2
FCC_UO = 3


def to_signed(value: int) -> int:
    """Interpret an unsigned 32-bit value as two's complement."""
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def to_unsigned(value: int) -> int:
    """Truncate a Python int to an unsigned 32-bit value."""
    return value & 0xFFFF_FFFF


class ArchState:
    """Complete architectural state of the simulated machine."""

    __slots__ = ("regs", "fregs", "icc", "fcc", "pc", "memory", "output",
                 "halted", "instret")

    def __init__(self, memory: Optional[Memory] = None):
        self.regs: List[int] = [0] * NUM_INT_REGS
        self.fregs: List[float] = [0.0] * NUM_FP_REGS
        self.icc = 0
        self.fcc = FCC_EQ
        self.pc = 0
        self.memory = memory if memory is not None else Memory()
        #: Values emitted by ``out`` instructions, in program order.
        self.output: List[int] = []
        self.halted = False
        #: Committed (architectural) instruction count.
        self.instret = 0

    @classmethod
    def boot(cls, executable: Executable) -> "ArchState":
        """Create state with *executable* loaded and PC at its entry."""
        state = cls()
        state.memory.load_bytes(executable.text_base, executable.text)
        if executable.data:
            state.memory.load_bytes(executable.data_base, executable.data)
        state.pc = executable.entry
        state.regs[SP_REG] = STACK_TOP
        return state

    # -- register access -------------------------------------------------

    def read_reg(self, index: int) -> int:
        """Read integer register (``%g0`` always reads 0)."""
        return self.regs[index] if index else 0

    def write_reg(self, index: int, value: int) -> None:
        """Write integer register (writes to ``%g0`` are discarded)."""
        if index:
            self.regs[index] = value & 0xFFFF_FFFF

    # -- condition codes --------------------------------------------------

    def set_icc_logical(self, result: int) -> None:
        """Set N/Z from a logical result; V and C are cleared."""
        icc = 0
        if result & 0x8000_0000:
            icc |= ICC_N
        if result == 0:
            icc |= ICC_Z
        self.icc = icc

    def set_icc_add(self, a: int, b: int, result: int) -> None:
        """Set all four codes from ``a + b`` (unsigned 32-bit views)."""
        icc = 0
        if result & 0x8000_0000:
            icc |= ICC_N
        if result == 0:
            icc |= ICC_Z
        if (~(a ^ b) & (a ^ result)) & 0x8000_0000:
            icc |= ICC_V
        if a + b > 0xFFFF_FFFF:
            icc |= ICC_C
        self.icc = icc

    def set_icc_sub(self, a: int, b: int, result: int) -> None:
        """Set all four codes from ``a - b`` (C means borrow)."""
        icc = 0
        if result & 0x8000_0000:
            icc |= ICC_N
        if result == 0:
            icc |= ICC_Z
        if ((a ^ b) & (a ^ result)) & 0x8000_0000:
            icc |= ICC_V
        if a < b:
            icc |= ICC_C
        self.icc = icc

    # -- snapshots for speculation ---------------------------------------

    def snapshot_registers(self):
        """Capture registers + codes + pc for misprediction rollback.

        Memory is *not* captured; pre-store values are logged separately
        (see :mod:`repro.emulator.checkpoint`), exactly as FastSim's
        ``bQ`` saves only register state.
        """
        return (
            list(self.regs),
            list(self.fregs),
            self.icc,
            self.fcc,
            self.pc,
            len(self.output),
            self.instret,
        )

    def restore_registers(self, snapshot) -> None:
        """Restore a :meth:`snapshot_registers` capture."""
        regs, fregs, icc, fcc, pc, output_len, instret = snapshot
        self.regs[:] = regs
        self.fregs[:] = fregs
        self.icc = icc
        self.fcc = fcc
        self.pc = pc
        del self.output[output_len:]
        self.instret = instret

"""Arithmetic, logic, and condition-evaluation semantics.

Pure functions shared by the functional interpreter and the integrated
baseline simulator, so both execute identical semantics (a differential
test relies on this single source of truth).
"""

from __future__ import annotations

from repro.errors import EmulationError
from repro.emulator.state import (
    FCC_EQ,
    FCC_GT,
    FCC_LT,
    FCC_UO,
    ICC_C,
    ICC_N,
    ICC_V,
    ICC_Z,
    to_signed,
)
from repro.isa.opcodes import Opcode

_MASK32 = 0xFFFF_FFFF


def int_add(a: int, b: int) -> int:
    return (a + b) & _MASK32


def int_sub(a: int, b: int) -> int:
    return (a - b) & _MASK32


def int_and(a: int, b: int) -> int:
    return a & b & _MASK32


def int_or(a: int, b: int) -> int:
    return (a | b) & _MASK32


def int_xor(a: int, b: int) -> int:
    return (a ^ b) & _MASK32


def int_sll(a: int, b: int) -> int:
    return (a << (b & 31)) & _MASK32


def int_srl(a: int, b: int) -> int:
    return (a & _MASK32) >> (b & 31)


def int_sra(a: int, b: int) -> int:
    return (to_signed(a) >> (b & 31)) & _MASK32


def int_smul(a: int, b: int) -> int:
    """Signed multiply, low 32 bits of the product."""
    return (to_signed(a) * to_signed(b)) & _MASK32


def int_sdiv(a: int, b: int) -> int:
    """Signed divide with C-style truncation toward zero."""
    divisor = to_signed(b)
    if divisor == 0:
        raise EmulationError("integer division by zero")
    dividend = to_signed(a)
    quotient = abs(dividend) // abs(divisor)
    if (dividend < 0) != (divisor < 0):
        quotient = -quotient
    return quotient & _MASK32


def fp_compare(a: float, b: float) -> int:
    """Return the fcc value for ``fcmp a, b``."""
    if a != a or b != b:  # NaN
        return FCC_UO
    if a == b:
        return FCC_EQ
    return FCC_LT if a < b else FCC_GT


_ICC_CONDITIONS = {
    Opcode.BE: lambda icc: bool(icc & ICC_Z),
    Opcode.BNE: lambda icc: not icc & ICC_Z,
    Opcode.BG: lambda icc: not (bool(icc & ICC_Z)
                                or (bool(icc & ICC_N) ^ bool(icc & ICC_V))),
    Opcode.BLE: lambda icc: bool(icc & ICC_Z) or (bool(icc & ICC_N)
                                                  ^ bool(icc & ICC_V)),
    Opcode.BGE: lambda icc: not (bool(icc & ICC_N) ^ bool(icc & ICC_V)),
    Opcode.BL: lambda icc: bool(icc & ICC_N) ^ bool(icc & ICC_V),
    Opcode.BGU: lambda icc: not (bool(icc & ICC_C) or bool(icc & ICC_Z)),
    Opcode.BLEU: lambda icc: bool(icc & ICC_C) or bool(icc & ICC_Z),
}

_FCC_CONDITIONS = {
    Opcode.FBE: lambda fcc: fcc == FCC_EQ,
    Opcode.FBNE: lambda fcc: fcc != FCC_EQ,
    Opcode.FBL: lambda fcc: fcc == FCC_LT,
    Opcode.FBLE: lambda fcc: fcc in (FCC_EQ, FCC_LT),
    Opcode.FBG: lambda fcc: fcc == FCC_GT,
    Opcode.FBGE: lambda fcc: fcc in (FCC_EQ, FCC_GT),
}


def branch_condition(opcode: Opcode):
    """Return ``(condition_fn, uses_fcc)`` for a conditional branch.

    The threaded front-end binds the condition function at decode time
    so a fused branch terminator evaluates exactly the predicate
    :func:`branch_taken` would. Returns None for non-conditional
    opcodes (``ba``/``bn`` and non-branches).
    """
    condition = _ICC_CONDITIONS.get(opcode)
    if condition is not None:
        return condition, False
    condition = _FCC_CONDITIONS.get(opcode)
    if condition is not None:
        return condition, True
    return None


def branch_taken(opcode: Opcode, icc: int, fcc: int) -> bool:
    """Evaluate a conditional branch against the condition codes."""
    condition = _ICC_CONDITIONS.get(opcode)
    if condition is not None:
        return condition(icc)
    condition = _FCC_CONDITIONS.get(opcode)
    if condition is not None:
        return condition(fcc)
    if opcode is Opcode.BA:
        return True
    if opcode is Opcode.BN:
        return False
    raise EmulationError(f"not a branch: {opcode!r}")

"""Functional execution substrate — this reproduction's "direct execution".

* :class:`Memory` / :class:`ArchState` — machine state
* :class:`Interpreter` / :func:`run_program` — plain functional execution
* :class:`SpeculativeFrontend` — runs ahead of the timing model down
  predicted paths with checkpoint/rollback, recording the ``lQ``/``sQ``/
  control-flow queues that drive the μ-architecture simulator
"""

from repro.emulator.checkpoint import BQ_CAPACITY, BranchCheckpointQueue
from repro.emulator.frontend import SpeculativeFrontend
from repro.emulator.functional import Interpreter, run_program
from repro.emulator.memory import Memory
from repro.emulator.queues import (
    ControlKind,
    ControlRecord,
    LoadRecord,
    RecordQueues,
    StoreRecord,
)
from repro.emulator.state import ArchState

__all__ = [
    "ArchState",
    "Memory",
    "Interpreter",
    "run_program",
    "SpeculativeFrontend",
    "BranchCheckpointQueue",
    "BQ_CAPACITY",
    "ControlKind",
    "ControlRecord",
    "LoadRecord",
    "StoreRecord",
    "RecordQueues",
]

"""The functional interpreter — this reproduction's "direct execution".

FastSim runs target instructions natively on the host after binary
rewriting. Without a SPARC host, the closest equivalent that preserves
the paper's structure is a fast interpreter over pre-decoded
instructions: it performs *functional* execution only (register/memory
values, program order) and exposes exactly the observation points that
FastSim's instrumentation provides — effective addresses of loads and
stores, branch conditions, and jump targets.

:class:`Interpreter.step` executes one instruction and leaves the
observation fields (``last_mem_addr``, ``last_taken``, …) describing
what happened, which the speculative frontend turns into ``lQ``/``sQ``/
control-flow records.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, Optional

from repro.errors import EmulationError
from repro.emulator import alu
from repro.emulator.state import ArchState, to_signed
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Executable

_MASK32 = 0xFFFF_FFFF
_PACK_FLOAT = struct.Struct(">f")


class Interpreter:
    """Executes decoded instructions against an :class:`ArchState`.

    Observation fields (valid after each :meth:`step`):

    ``last_mem_addr`` / ``last_mem_width``
        Effective address and width if the instruction was a load/store.
    ``last_store_old``
        For stores, the raw pre-store bytes (for speculative rollback).
    ``last_taken``
        For conditional branches, whether the branch was taken.
    ``last_target``
        For taken control transfers, the destination address.
    """

    def __init__(self, executable: Executable, state: Optional[ArchState] = None):
        self.executable = executable
        self.state = state if state is not None else ArchState.boot(executable)
        self.last_mem_addr: Optional[int] = None
        self.last_mem_width = 0
        self.last_store_old: Optional[bytes] = None
        self.last_taken = False
        self.last_target: Optional[int] = None
        self._dispatch = self._build_dispatch()

    # ------------------------------------------------------------------

    def _build_dispatch(self) -> Dict[Opcode, Callable[[Instruction], None]]:
        dispatch: Dict[Opcode, Callable[[Instruction], None]] = {}
        simple_alu = {
            Opcode.ADD: alu.int_add,
            Opcode.SUB: alu.int_sub,
            Opcode.AND: alu.int_and,
            Opcode.OR: alu.int_or,
            Opcode.XOR: alu.int_xor,
            Opcode.SLL: alu.int_sll,
            Opcode.SRL: alu.int_srl,
            Opcode.SRA: alu.int_sra,
            Opcode.SMUL: alu.int_smul,
            Opcode.SDIV: alu.int_sdiv,
        }
        for opcode, fn in simple_alu.items():
            dispatch[opcode] = self._make_alu(fn)
        dispatch[Opcode.ADDCC] = self._exec_addcc
        dispatch[Opcode.SUBCC] = self._exec_subcc
        dispatch[Opcode.ANDCC] = self._make_logical_cc(alu.int_and)
        dispatch[Opcode.ORCC] = self._make_logical_cc(alu.int_or)
        dispatch[Opcode.XORCC] = self._make_logical_cc(alu.int_xor)
        dispatch[Opcode.SETHI] = self._exec_sethi
        for opcode in (Opcode.LD, Opcode.LDB, Opcode.LDUB, Opcode.LDH,
                       Opcode.LDUH, Opcode.LDF, Opcode.LDDF):
            dispatch[opcode] = self._exec_load
        for opcode in (Opcode.ST, Opcode.STB, Opcode.STH, Opcode.STF,
                       Opcode.STDF):
            dispatch[opcode] = self._exec_store
        fp_binary = {
            Opcode.FADD: lambda a, b: a + b,
            Opcode.FSUB: lambda a, b: a - b,
            Opcode.FMUL: lambda a, b: a * b,
            Opcode.FDIV: self._fp_div,
        }
        for opcode, fn in fp_binary.items():
            dispatch[opcode] = self._make_fp_binary(fn)
        dispatch[Opcode.FSQRT] = self._exec_fsqrt
        dispatch[Opcode.FNEG] = self._make_fp_unary(lambda a: -a)
        dispatch[Opcode.FABS] = self._make_fp_unary(abs)
        dispatch[Opcode.FMOV] = self._make_fp_unary(lambda a: a)
        dispatch[Opcode.FCMP] = self._exec_fcmp
        dispatch[Opcode.FITOD] = self._exec_fitod
        dispatch[Opcode.FDTOI] = self._exec_fdtoi
        for opcode in (Opcode.BA, Opcode.BN, Opcode.BE, Opcode.BNE,
                       Opcode.BG, Opcode.BLE, Opcode.BGE, Opcode.BL,
                       Opcode.BGU, Opcode.BLEU, Opcode.FBE, Opcode.FBNE,
                       Opcode.FBL, Opcode.FBLE, Opcode.FBG, Opcode.FBGE):
            dispatch[opcode] = self._exec_branch
        dispatch[Opcode.CALL] = self._exec_call
        dispatch[Opcode.JMPL] = self._exec_jmpl
        dispatch[Opcode.NOP] = self._exec_nop
        dispatch[Opcode.OUT] = self._exec_out
        dispatch[Opcode.HALT] = self._exec_halt
        return dispatch

    # ------------------------------------------------------------------

    def fetch(self) -> Instruction:
        """Decode the instruction at the current PC."""
        return self.executable.instruction_at(self.state.pc)

    def step(self) -> Instruction:
        """Execute one instruction; returns the instruction executed."""
        state = self.state
        if state.halted:
            raise EmulationError("machine is halted")
        instr = self.executable.instruction_at(state.pc)
        self.last_mem_addr = None
        self.last_mem_width = 0
        self.last_store_old = None
        self.last_taken = False
        self.last_target = None
        self._dispatch[instr.opcode](instr)
        state.instret += 1
        return instr

    def run(self, max_instructions: int = 100_000_000) -> int:
        """Run until ``halt``; returns the number of instructions executed."""
        executed = 0
        while not self.state.halted:
            if executed >= max_instructions:
                raise EmulationError(
                    f"exceeded instruction limit ({max_instructions})"
                )
            self.step()
            executed += 1
        return executed

    # -- operand helpers --------------------------------------------------

    def _op2(self, instr: Instruction) -> int:
        if instr.imm is not None:
            return instr.imm & _MASK32
        return self.state.read_reg(instr.rs2)

    def _effective_address(self, instr: Instruction) -> int:
        state = self.state
        base = state.read_reg(instr.rs1)
        if instr.imm is not None:
            return (base + instr.imm) & _MASK32
        return (base + state.read_reg(instr.rs2)) & _MASK32

    # -- integer execution -------------------------------------------------

    def _make_alu(self, fn):
        def execute(instr: Instruction) -> None:
            state = self.state
            result = fn(state.read_reg(instr.rs1), self._op2(instr))
            state.write_reg(instr.rd, result)
            state.pc += 4
        return execute

    def _exec_addcc(self, instr: Instruction) -> None:
        state = self.state
        a = state.read_reg(instr.rs1)
        b = self._op2(instr)
        result = (a + b) & _MASK32
        state.write_reg(instr.rd, result)
        state.set_icc_add(a, b, result)
        state.pc += 4

    def _exec_subcc(self, instr: Instruction) -> None:
        state = self.state
        a = state.read_reg(instr.rs1)
        b = self._op2(instr)
        result = (a - b) & _MASK32
        state.write_reg(instr.rd, result)
        state.set_icc_sub(a, b, result)
        state.pc += 4

    def _make_logical_cc(self, fn):
        def execute(instr: Instruction) -> None:
            state = self.state
            result = fn(state.read_reg(instr.rs1), self._op2(instr))
            state.write_reg(instr.rd, result)
            state.set_icc_logical(result)
            state.pc += 4
        return execute

    def _exec_sethi(self, instr: Instruction) -> None:
        state = self.state
        state.write_reg(instr.rd, (instr.imm << 13) & _MASK32)
        state.pc += 4

    # -- memory execution ---------------------------------------------------

    def _exec_load(self, instr: Instruction) -> None:
        state = self.state
        address = self._effective_address(instr)
        memory = state.memory
        opcode = instr.opcode
        if opcode is Opcode.LD:
            state.write_reg(instr.rd, memory.read_word(address))
            width = 4
        elif opcode is Opcode.LDB:
            value = memory.read_byte(address)
            if value & 0x80:
                value |= 0xFFFFFF00
            state.write_reg(instr.rd, value)
            width = 1
        elif opcode is Opcode.LDUB:
            state.write_reg(instr.rd, memory.read_byte(address))
            width = 1
        elif opcode is Opcode.LDH:
            value = memory.read_half(address)
            if value & 0x8000:
                value |= 0xFFFF0000
            state.write_reg(instr.rd, value)
            width = 2
        elif opcode is Opcode.LDUH:
            state.write_reg(instr.rd, memory.read_half(address))
            width = 2
        elif opcode is Opcode.LDF:
            state.fregs[instr.fd] = memory.read_float(address)
            width = 4
        else:  # LDDF
            state.fregs[instr.fd] = memory.read_double(address)
            width = 8
        self.last_mem_addr = address
        self.last_mem_width = width
        state.pc += 4

    def _exec_store(self, instr: Instruction) -> None:
        state = self.state
        address = self._effective_address(instr)
        memory = state.memory
        opcode = instr.opcode
        width = instr.access_width
        # Capture the pre-store bytes first: FastSim's instrumentation
        # records them in the sQ entry for misprediction rollback.
        self.last_store_old = memory.read_bytes(address, width)
        if opcode is Opcode.ST:
            memory.write_word(address, state.read_reg(instr.rd))
        elif opcode is Opcode.STB:
            memory.write_byte(address, state.read_reg(instr.rd))
        elif opcode is Opcode.STH:
            memory.write_half(address, state.read_reg(instr.rd))
        elif opcode is Opcode.STF:
            memory.write_float(address, _clamp_float32(state.fregs[instr.fd]))
        else:  # STDF
            memory.write_double(address, state.fregs[instr.fd])
        self.last_mem_addr = address
        self.last_mem_width = width
        state.pc += 4

    # -- floating point -----------------------------------------------------

    @staticmethod
    def _fp_div(a: float, b: float) -> float:
        if b == 0.0:
            return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
        return a / b

    def _make_fp_binary(self, fn):
        def execute(instr: Instruction) -> None:
            state = self.state
            state.fregs[instr.fd] = fn(state.fregs[instr.fs1],
                                       state.fregs[instr.fs2])
            state.pc += 4
        return execute

    def _make_fp_unary(self, fn):
        def execute(instr: Instruction) -> None:
            state = self.state
            state.fregs[instr.fd] = fn(state.fregs[instr.fs1])
            state.pc += 4
        return execute

    def _exec_fsqrt(self, instr: Instruction) -> None:
        state = self.state
        value = state.fregs[instr.fs1]
        state.fregs[instr.fd] = math.sqrt(value) if value >= 0 else math.nan
        state.pc += 4

    def _exec_fcmp(self, instr: Instruction) -> None:
        state = self.state
        state.fcc = alu.fp_compare(state.fregs[instr.fs1], state.fregs[instr.fs2])
        state.pc += 4

    def _exec_fitod(self, instr: Instruction) -> None:
        state = self.state
        state.fregs[instr.fd] = float(to_signed(state.read_reg(instr.rs1)))
        state.pc += 4

    def _exec_fdtoi(self, instr: Instruction) -> None:
        state = self.state
        value = state.fregs[instr.fs1]
        if value != value or value in (math.inf, -math.inf):
            truncated = 0
        else:
            truncated = int(value)
        state.write_reg(instr.rd, truncated & _MASK32)
        state.pc += 4

    # -- control transfer -----------------------------------------------------

    def _exec_branch(self, instr: Instruction) -> None:
        state = self.state
        taken = alu.branch_taken(instr.opcode, state.icc, state.fcc)
        self.last_taken = taken
        if taken:
            self.last_target = instr.target
            state.pc = instr.target
        else:
            state.pc += 4

    def _exec_call(self, instr: Instruction) -> None:
        # With no delay slots the link register holds the return address
        # directly (pc + 4), unlike SPARC's "address of the call" + 8.
        state = self.state
        state.write_reg(instr.rd, state.pc + 4)
        self.last_taken = True
        self.last_target = instr.target
        state.pc = instr.target

    def _exec_jmpl(self, instr: Instruction) -> None:
        state = self.state
        target = self._effective_address(instr)
        if target % 4:
            raise EmulationError(f"misaligned jump target 0x{target:x}")
        state.write_reg(instr.rd, state.pc + 4)
        self.last_taken = True
        self.last_target = target
        state.pc = target

    # -- miscellaneous ----------------------------------------------------------

    def _exec_nop(self, instr: Instruction) -> None:
        self.state.pc += 4

    def _exec_out(self, instr: Instruction) -> None:
        state = self.state
        state.output.append(state.read_reg(instr.rs1))
        state.pc += 4

    def _exec_halt(self, instr: Instruction) -> None:
        self.state.halted = True
        # PC intentionally left at the halt instruction.


def _clamp_float32(value: float) -> float:
    """Round a double to the nearest representable binary32 value."""
    try:
        return _PACK_FLOAT.unpack(_PACK_FLOAT.pack(value))[0]
    except OverflowError:
        return math.inf if value > 0 else -math.inf


def run_program(executable: Executable,
                max_instructions: int = 100_000_000) -> ArchState:
    """Convenience: functionally execute *executable* to completion."""
    interpreter = Interpreter(executable)
    interpreter.run(max_instructions)
    return interpreter.state

"""Threaded-code front-end: superblock decode into pre-bound closures.

FastSim's front-end is EEL-rewritten *direct execution*: straight-line
target code runs at native speed and only control transfers return to
the simulator. The interpreter in :mod:`repro.emulator.functional` pays
a dictionary dispatch, an observation-field reset, and a bounds check
per instruction instead. This module is the closest host-portable
analogue of the rewriting step: maximal straight-line blocks are
decoded **once** into a list of argument-free closures ("threaded
code") with every operand — register indices, immediates, bound memory
accessors, the record queues — resolved at decode time. Running a block
is then just ``for op in ops: op()`` plus one batched PC/instret
update.

Equivalence contract (what makes this invisible to everything above):

* Blocks contain no control *events* — conditional branches, ``jmpl``,
  and ``halt`` terminate decoding; ``halt`` executes through the
  ordinary :meth:`Interpreter.step` path. A conditional branch becomes
  a **fused terminator**: its condition function (from
  :func:`repro.emulator.alu.branch_condition` — the same predicate
  ``branch_taken`` evaluates) plus target/fall-through are bound at
  decode time, and the frontend runs the identical predictor call,
  control record, and checkpoint logic it always did, just without
  the generic dispatch. ``jmpl`` fuses the same way (dynamic target,
  decode-time-constant link, INDIRECT record); a misaligned runtime
  target falls back to the step path so the canonical error is raised
  from unchanged state. Statically-resolved transfers are **folded
  through**: ``ba`` and
  ``call`` continue decoding at their (compile-time) target and ``bn``
  at its fall-through, because none of them records a control event —
  the frontend's step path would simply loop past them. A folded
  ``call`` writes its link register from a decode-time constant
  (``address + 4``), never from the live PC.
* Thunks append the same :class:`LoadRecord`/:class:`StoreRecord`
  entries (pre-store bytes captured before the write) the step path
  would.
* Nothing inside a block reads PC or instret at runtime (folded
  ``call`` links a decode-time constant), so both advance in one batch
  at block end; checkpoints are only taken at control events, which
  sit outside blocks.
* A block only runs when it fits the caller's remaining instruction
  budget; otherwise the caller falls back to per-instruction stepping
  so budget exhaustion raises at exactly the same instruction.

The closure environment is sound across rollbacks because every
container it binds is mutated in place: ``ArchState.restore_registers``
assigns ``regs[:]``/``fregs[:]`` and ``RecordQueues.truncate`` uses
``del list[n:]`` — list identities never change.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.emulator import alu
from repro.emulator.functional import Interpreter, _clamp_float32
from repro.emulator.queues import LoadRecord, StoreRecord
from repro.emulator.state import to_signed
from repro.errors import EmulationError
from repro.isa.opcodes import Format, Opcode

_MASK32 = 0xFFFF_FFFF

#: Upper bound on block length — keeps decode cost and the budget
#: fall-back window small. Because ``ba``/``call`` fold through, a
#: straight-line loop closed by ``ba`` unrolls up to this cap (it
#: still commits PC/instret once per run, at block end).
MAX_BLOCK = 256

#: Control *events* end a block: conditional branches and ``jmpl``
#: become fused terminator descriptors, ``halt`` stays on the step
#: path — see ``_decode``.

_Thunk = Callable[[], None]
#: ``(ops, n_instructions, end_pc, terminator)`` — *terminator* is None
#: or a fused control-event descriptor the frontend evaluates in place
#: of a generic ``step()``:
#: ``(TERM_COND, condition_fn, uses_fcc, address, target, fall_through)``
#: for a conditional branch,
#: ``(TERM_JMPL, address, rs1, rs2, imm, rd, link)`` for an indirect
#: jump (*link* is the decode-time constant ``address + 4``).
_Block = Tuple[Tuple[_Thunk, ...], int, int, Optional[tuple]]

TERM_COND = 0
TERM_JMPL = 1

_SIMPLE_ALU = {
    Opcode.ADD: alu.int_add,
    Opcode.SUB: alu.int_sub,
    Opcode.AND: alu.int_and,
    Opcode.OR: alu.int_or,
    Opcode.XOR: alu.int_xor,
    Opcode.SLL: alu.int_sll,
    Opcode.SRL: alu.int_srl,
    Opcode.SRA: alu.int_sra,
    Opcode.SMUL: alu.int_smul,
    Opcode.SDIV: alu.int_sdiv,
}

_LOGICAL_CC = {
    Opcode.ANDCC: alu.int_and,
    Opcode.ORCC: alu.int_or,
    Opcode.XORCC: alu.int_xor,
}

_FP_BINARY = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: Interpreter._fp_div,
}

_FP_UNARY = {
    Opcode.FNEG: lambda a: -a,
    Opcode.FABS: abs,
    Opcode.FMOV: lambda a: a,
}


class BlockCache:
    """Decoded-block cache + executor for one interpreter instance."""

    def __init__(self, interpreter: Interpreter, queues):
        self._interpreter = interpreter
        self._executable = interpreter.executable
        self._state = interpreter.state
        # The queues outlive every rollback — ``truncate`` deletes in
        # place — so the bound append methods stay valid forever.
        self._loads_append = queues.loads.append
        self._stores_append = queues.stores.append
        self._blocks: Dict[int, _Block] = {}
        self.blocks_decoded = 0
        self.block_runs = 0
        self.threaded_instructions = 0
        self.fused_branches = 0

    # ------------------------------------------------------------------

    def block_at(self, pc: int) -> _Block:
        """Return (decoding on first sight) the block starting at *pc*."""
        block = self._blocks.get(pc)
        if block is None:
            block = self._decode(pc)
            self._blocks[pc] = block
            self.blocks_decoded += 1
        return block

    def run_from(self, pc: int, budget: int) -> int:
        """Run the block starting at *pc* if one exists and fits *budget*.

        Returns the number of instructions executed (0 when the next
        instruction is a control transfer, undecodable, or the block
        would overrun the budget — the caller steps instead). The
        fused-branch terminator, if any, is *not* executed here.
        """
        ops, count, end_pc, _term = self.block_at(pc)
        if not count or count > budget:
            return 0
        for op in ops:
            op()
        state = self._state
        state.pc = end_pc
        state.instret += count
        self.block_runs += 1
        self.threaded_instructions += count
        return count

    def stats(self) -> Dict[str, int]:
        """Host-side effectiveness counters (never canonical)."""
        return {
            "blocks_decoded": self.blocks_decoded,
            "block_runs": self.block_runs,
            "threaded_instructions": self.threaded_instructions,
            "fused_branches": self.fused_branches,
        }

    # ------------------------------------------------------------------

    def _decode(self, start_pc: int) -> _Block:
        """Decode the maximal straight-line block starting at *start_pc*."""
        executable = self._executable
        ops: List[_Thunk] = []
        count = 0
        term = None
        pc = start_pc
        while count < MAX_BLOCK and executable.contains_text(pc):
            try:
                instr = executable.instruction_at(pc)
            except EmulationError:
                break
            opcode = instr.opcode
            if instr.info.fmt is Format.BRANCH:
                # ``ba``/``bn`` are statically resolved (no record, no
                # predictor): fold through. A conditional branch ends
                # the block; its condition function is bound here so
                # the frontend can evaluate it as a *fused terminator*
                # (same predicate, predictor call, record, and
                # checkpoint as the step path — minus the generic
                # dispatch).
                if opcode is Opcode.BA:
                    count += 1
                    pc = instr.target
                    continue
                if opcode is Opcode.BN:
                    count += 1
                    pc += 4
                    continue
                condition = alu.branch_condition(opcode)
                if condition is not None:
                    term = (TERM_COND, condition[0], condition[1],
                            instr.address, instr.target,
                            instr.fall_through)
                break
            if opcode is Opcode.CALL:
                # Direct call: the link value is the decode-time
                # constant ``address + 4``; decoding continues in the
                # callee. (``jmpl`` returns stay control events.)
                ops.append(self._call_thunk(instr))
                count += 1
                pc = instr.target
                continue
            if opcode is Opcode.JMPL:
                # Indirect jump: a control event, but with no predictor
                # or checkpoint involvement — the frontend can fuse it
                # too. The link value is the decode-time constant
                # ``address + 4`` (what ``state.pc + 4`` evaluates to
                # when the step path reaches it). A misaligned runtime
                # target falls back to the step path for the canonical
                # error.
                term = (TERM_JMPL, instr.address, instr.rs1, instr.rs2,
                        instr.imm, instr.rd,
                        (instr.address + 4) & _MASK32)
                break
            if opcode is Opcode.HALT:
                break
            thunk = self._thunk(instr)
            if thunk is _UNSUPPORTED:
                break
            if thunk is not None:
                ops.append(thunk)
            count += 1
            pc += 4
        return tuple(ops), count, pc, term

    def _call_thunk(self, instr) -> _Thunk:
        regs = self._state.regs
        rd = instr.rd
        link = (instr.address + 4) & _MASK32

        def run() -> None:
            if rd:
                regs[rd] = link
        return run

    def _thunk(self, instr) -> Optional[_Thunk]:
        """Build the pre-bound closure for one straight-line instruction.

        Returns None for instructions with no state effect beyond
        PC/instret (``nop``), and :data:`_UNSUPPORTED` for opcodes the
        threaded path does not model (the block ends before them).
        """
        state = self._state
        regs = state.regs
        fregs = state.fregs
        opcode = instr.opcode
        rs1 = instr.rs1
        rs2 = instr.rs2
        rd = instr.rd
        imm = instr.imm

        if opcode is Opcode.NOP:
            return None

        fn = _SIMPLE_ALU.get(opcode)
        if fn is not None:
            if imm is not None:
                k = imm & _MASK32

                def run() -> None:
                    result = fn(regs[rs1] if rs1 else 0, k)
                    if rd:
                        regs[rd] = result & _MASK32
            else:

                def run() -> None:
                    result = fn(regs[rs1] if rs1 else 0,
                                regs[rs2] if rs2 else 0)
                    if rd:
                        regs[rd] = result & _MASK32
            return run

        if opcode is Opcode.ADDCC or opcode is Opcode.SUBCC:
            subtract = opcode is Opcode.SUBCC
            set_icc = state.set_icc_sub if subtract else state.set_icc_add
            k = imm & _MASK32 if imm is not None else None

            def run() -> None:
                a = regs[rs1] if rs1 else 0
                b = k if k is not None else (regs[rs2] if rs2 else 0)
                result = ((a - b) if subtract else (a + b)) & _MASK32
                if rd:
                    regs[rd] = result
                set_icc(a, b, result)
            return run

        fn = _LOGICAL_CC.get(opcode)
        if fn is not None:
            set_icc = state.set_icc_logical
            k = imm & _MASK32 if imm is not None else None

            def run() -> None:
                result = fn(regs[rs1] if rs1 else 0,
                            k if k is not None else (regs[rs2] if rs2 else 0))
                if rd:
                    regs[rd] = result & _MASK32
                set_icc(result)
            return run

        if opcode is Opcode.SETHI:
            value = (imm << 13) & _MASK32

            def run() -> None:
                if rd:
                    regs[rd] = value
            return run

        if instr.is_load:
            return self._load_thunk(instr)
        if instr.is_store:
            return self._store_thunk(instr)

        fn = _FP_BINARY.get(opcode)
        if fn is not None:
            fs1, fs2, fd = instr.fs1, instr.fs2, instr.fd

            def run() -> None:
                fregs[fd] = fn(fregs[fs1], fregs[fs2])
            return run

        fn = _FP_UNARY.get(opcode)
        if fn is not None:
            fs1, fd = instr.fs1, instr.fd

            def run() -> None:
                fregs[fd] = fn(fregs[fs1])
            return run

        if opcode is Opcode.FSQRT:
            fs1, fd = instr.fs1, instr.fd

            def run() -> None:
                value = fregs[fs1]
                fregs[fd] = math.sqrt(value) if value >= 0 else math.nan
            return run

        if opcode is Opcode.FCMP:
            fs1, fs2 = instr.fs1, instr.fs2
            fp_compare = alu.fp_compare

            def run() -> None:
                state.fcc = fp_compare(fregs[fs1], fregs[fs2])
            return run

        if opcode is Opcode.FITOD:
            fd = instr.fd

            def run() -> None:
                fregs[fd] = float(to_signed(regs[rs1] if rs1 else 0))
            return run

        if opcode is Opcode.FDTOI:
            fs1 = instr.fs1

            def run() -> None:
                value = fregs[fs1]
                if value != value or value in (math.inf, -math.inf):
                    truncated = 0
                else:
                    truncated = int(value)
                if rd:
                    regs[rd] = truncated & _MASK32
            return run

        if opcode is Opcode.OUT:
            output_append = state.output.append

            def run() -> None:
                output_append(regs[rs1] if rs1 else 0)
            return run

        return _UNSUPPORTED

    def _load_thunk(self, instr) -> _Thunk:
        state = self._state
        regs = state.regs
        fregs = state.fregs
        memory = state.memory
        loads_append = self._loads_append
        opcode = instr.opcode
        rs1, rs2, rd, fd = instr.rs1, instr.rs2, instr.rd, instr.fd
        imm = instr.imm

        # The *signed* immediate is added before masking, exactly like
        # ``Interpreter._effective_address``.
        def ea() -> int:
            base = regs[rs1] if rs1 else 0
            if imm is not None:
                return (base + imm) & _MASK32
            return (base + (regs[rs2] if rs2 else 0)) & _MASK32

        if opcode is Opcode.LD:
            read_word = memory.read_word

            def run() -> None:
                address = ea()
                if rd:
                    regs[rd] = read_word(address) & _MASK32
                loads_append(LoadRecord(address, 4))
        elif opcode is Opcode.LDB:
            read_byte = memory.read_byte

            def run() -> None:
                address = ea()
                value = read_byte(address)
                if value & 0x80:
                    value |= 0xFFFFFF00
                if rd:
                    regs[rd] = value & _MASK32
                loads_append(LoadRecord(address, 1))
        elif opcode is Opcode.LDUB:
            read_byte = memory.read_byte

            def run() -> None:
                address = ea()
                if rd:
                    regs[rd] = read_byte(address) & _MASK32
                loads_append(LoadRecord(address, 1))
        elif opcode is Opcode.LDH:
            read_half = memory.read_half

            def run() -> None:
                address = ea()
                value = read_half(address)
                if value & 0x8000:
                    value |= 0xFFFF0000
                if rd:
                    regs[rd] = value & _MASK32
                loads_append(LoadRecord(address, 2))
        elif opcode is Opcode.LDUH:
            read_half = memory.read_half

            def run() -> None:
                address = ea()
                if rd:
                    regs[rd] = read_half(address) & _MASK32
                loads_append(LoadRecord(address, 2))
        elif opcode is Opcode.LDF:
            read_float = memory.read_float

            def run() -> None:
                address = ea()
                fregs[fd] = read_float(address)
                loads_append(LoadRecord(address, 4))
        else:  # LDDF
            read_double = memory.read_double

            def run() -> None:
                address = ea()
                fregs[fd] = read_double(address)
                loads_append(LoadRecord(address, 8))
        return run

    def _store_thunk(self, instr) -> _Thunk:
        state = self._state
        regs = state.regs
        fregs = state.fregs
        memory = state.memory
        stores_append = self._stores_append
        read_bytes = memory.read_bytes
        opcode = instr.opcode
        rs1, rs2, rd, fd = instr.rs1, instr.rs2, instr.rd, instr.fd
        imm = instr.imm
        width = instr.access_width

        def ea() -> int:
            base = regs[rs1] if rs1 else 0
            if imm is not None:
                return (base + imm) & _MASK32
            return (base + (regs[rs2] if rs2 else 0)) & _MASK32

        if opcode is Opcode.ST:
            write_word = memory.write_word

            def run() -> None:
                address = ea()
                old = read_bytes(address, 4)
                write_word(address, regs[rd] if rd else 0)
                stores_append(StoreRecord(address, 4, old))
        elif opcode is Opcode.STB:
            write_byte = memory.write_byte

            def run() -> None:
                address = ea()
                old = read_bytes(address, 1)
                write_byte(address, regs[rd] if rd else 0)
                stores_append(StoreRecord(address, 1, old))
        elif opcode is Opcode.STH:
            write_half = memory.write_half

            def run() -> None:
                address = ea()
                old = read_bytes(address, 2)
                write_half(address, regs[rd] if rd else 0)
                stores_append(StoreRecord(address, 2, old))
        elif opcode is Opcode.STF:
            write_float = memory.write_float

            def run() -> None:
                address = ea()
                old = read_bytes(address, 4)
                write_float(address, _clamp_float32(fregs[fd]))
                stores_append(StoreRecord(address, 4, old))
        else:  # STDF
            write_double = memory.write_double

            def run() -> None:
                address = ea()
                old = read_bytes(address, 8)
                write_double(address, fregs[fd])
                stores_append(StoreRecord(address, 8, old))
        return run


#: Sentinel: opcode the threaded path does not model — end the block.
_UNSUPPORTED = object()

"""Speculative direct-execution — the frontend that runs ahead of timing.

This is the reproduction of FastSim §3.2. The frontend functionally
executes the target program **in the direction the branch predictor
chooses**, not the direction the program actually computes: when the
predictor disagrees with the evaluated branch condition, the frontend
saves a register checkpoint (the ``bQ``), then continues down the
*predicted* — wrong — path, logging pre-store values so memory can be
restored. The μ-architecture simulator later detects the misprediction
when the branch executes in the pipeline and calls :meth:`rollback_to`,
which restores registers and memory and resumes execution on the
correct path.

Along the way the frontend records everything the timing models need:
load/store effective addresses (``lQ``/``sQ``) and one control record
per conditional branch / indirect jump / halt.

The frontend advances one *control event* at a time
(:meth:`run_one_event`): the caller — the μ-architecture simulator's
"return to direct execution" action — asks for the next event exactly
when fetch needs a control record that does not exist yet.
"""

from __future__ import annotations

from typing import Optional

from repro.branch.predictor import BranchPredictor
from repro.emulator.checkpoint import BQ_CAPACITY, BranchCheckpointQueue
from repro.emulator.functional import Interpreter
from repro.emulator.queues import (
    ControlKind,
    ControlRecord,
    LoadRecord,
    RecordQueues,
    StoreRecord,
)
from repro.errors import SimulationError
from repro.isa.program import Executable


class SpeculativeFrontend:
    """Runs the program ahead of the timing model, speculatively."""

    def __init__(
        self,
        executable: Executable,
        predictor: BranchPredictor,
        max_instructions: int = 500_000_000,
        bq_capacity: int = BQ_CAPACITY,
        state=None,
    ):
        """*state* (optional) lets the frontend pick up mid-program from
        an existing :class:`~repro.emulator.state.ArchState` — used by
        the sampling simulator to alternate functional skipping with
        detailed measurement windows."""
        self.executable = executable
        self.predictor = predictor
        self.interpreter = Interpreter(executable, state)
        self.queues = RecordQueues()
        self.bq = BranchCheckpointQueue(bq_capacity)
        self.max_instructions = max_instructions
        #: Total instructions functionally executed, wrong paths included.
        self.executed_instructions = 0
        #: Instructions undone by misprediction rollbacks.
        self.squashed_instructions = 0
        #: Number of rollbacks performed.
        self.rollbacks = 0

    @property
    def state(self):
        """The (speculative) architectural state."""
        return self.interpreter.state

    @property
    def committed_instructions(self) -> int:
        """Instructions executed minus those later squashed."""
        return self.executed_instructions - self.squashed_instructions

    # ------------------------------------------------------------------

    def run_one_event(self) -> ControlRecord:
        """Execute up to (and including) the next control event.

        Appends load/store records for every memory instruction passed,
        appends and returns the new control record. At a mispredicted
        conditional branch, checkpoints state and diverts execution down
        the predicted path before returning.
        """
        interpreter = self.interpreter
        state = interpreter.state
        queues = self.queues
        if state.halted:
            # The program halted at the previous event; every further
            # request sees a HALT record (fetch will stop consuming).
            record = ControlRecord(
                ControlKind.HALT, state.pc,
                lq_len=len(queues.loads), sq_len=len(queues.stores),
            )
            queues.controls.append(record)
            return record

        while True:
            if self.executed_instructions >= self.max_instructions:
                raise SimulationError(
                    f"frontend exceeded {self.max_instructions} instructions"
                )
            instr = interpreter.step()
            self.executed_instructions += 1

            if instr.is_load:
                queues.loads.append(
                    LoadRecord(interpreter.last_mem_addr, interpreter.last_mem_width)
                )
            elif instr.is_store:
                queues.stores.append(
                    StoreRecord(
                        interpreter.last_mem_addr,
                        interpreter.last_mem_width,
                        interpreter.last_store_old,
                    )
                )

            if instr.is_conditional_branch:
                return self._record_conditional(instr)
            if instr.is_indirect_jump:
                record = ControlRecord(
                    ControlKind.INDIRECT,
                    instr.address,
                    taken=True,
                    target=interpreter.last_target,
                    lq_len=len(queues.loads),
                    sq_len=len(queues.stores),
                )
                queues.controls.append(record)
                return record
            if state.halted:
                record = ControlRecord(
                    ControlKind.HALT,
                    instr.address,
                    lq_len=len(queues.loads),
                    sq_len=len(queues.stores),
                )
                queues.controls.append(record)
                return record

    def _record_conditional(self, instr) -> ControlRecord:
        """Handle a just-executed conditional branch."""
        interpreter = self.interpreter
        state = interpreter.state
        queues = self.queues
        actual_taken = interpreter.last_taken
        predicted_taken = self.predictor.predict_and_update(
            instr.address, actual_taken
        )
        record = ControlRecord(
            ControlKind.COND,
            instr.address,
            taken=actual_taken,
            predicted_taken=predicted_taken,
            lq_len=len(queues.loads),
            sq_len=len(queues.stores),
        )
        control_index = len(queues.controls)
        queues.controls.append(record)
        if predicted_taken != actual_taken:
            # Checkpoint with PC at the *correct* destination, then divert
            # execution down the predicted (wrong) path.
            corrected_pc = state.pc
            self.bq.save(control_index, state, corrected_pc)
            state.pc = instr.target if predicted_taken else instr.fall_through
        return record

    # ------------------------------------------------------------------

    def rollback_to(self, control_index: int) -> None:
        """Undo execution past mispredicted branch *control_index*.

        Restores pre-store memory values in reverse order, restores the
        ``bQ`` register checkpoint (leaving PC at the corrected target),
        and truncates the wrong-path queue entries.
        """
        queues = self.queues
        if control_index >= len(queues.controls):
            raise SimulationError(
                f"rollback to unknown control record {control_index}"
            )
        record = queues.controls[control_index]
        if not record.mispredicted:
            raise SimulationError(
                f"control record {control_index} was not mispredicted"
            )
        memory = self.interpreter.state.memory
        for store in reversed(queues.stores[record.sq_len:]):
            memory.load_bytes(store.address, store.old_bytes)
        instret_before = self.interpreter.state.instret
        self.bq.restore(control_index, self.interpreter.state)
        self.squashed_instructions += (
            instret_before - self.interpreter.state.instret
        )
        queues.truncate(control_index + 1, record.lq_len, record.sq_len)
        self.rollbacks += 1

    # ------------------------------------------------------------------

    def control(self, index: int) -> Optional[ControlRecord]:
        """Return control record *index* if recorded, else None."""
        return self.queues.control(index)

    def load(self, index: int) -> LoadRecord:
        return self.queues.loads[index]

    def store(self, index: int) -> StoreRecord:
        return self.queues.stores[index]

"""Speculative direct-execution — the frontend that runs ahead of timing.

This is the reproduction of FastSim §3.2. The frontend functionally
executes the target program **in the direction the branch predictor
chooses**, not the direction the program actually computes: when the
predictor disagrees with the evaluated branch condition, the frontend
saves a register checkpoint (the ``bQ``), then continues down the
*predicted* — wrong — path, logging pre-store values so memory can be
restored. The μ-architecture simulator later detects the misprediction
when the branch executes in the pipeline and calls :meth:`rollback_to`,
which restores registers and memory and resumes execution on the
correct path.

Along the way the frontend records everything the timing models need:
load/store effective addresses (``lQ``/``sQ``) and one control record
per conditional branch / indirect jump / halt.

The frontend advances one *control event* at a time
(:meth:`run_one_event`): the caller — the μ-architecture simulator's
"return to direct execution" action — asks for the next event exactly
when fetch needs a control record that does not exist yet.
"""

from __future__ import annotations

from typing import Optional

from repro.branch.predictor import BranchPredictor
from repro.emulator.checkpoint import BQ_CAPACITY, BranchCheckpointQueue
from repro.emulator.functional import Interpreter
from repro.emulator.threaded import TERM_COND, BlockCache
from repro.emulator.queues import (
    ControlKind,
    ControlRecord,
    LoadRecord,
    RecordQueues,
    StoreRecord,
)
from repro.errors import SimulationError
from repro.isa.program import Executable


class SpeculativeFrontend:
    """Runs the program ahead of the timing model, speculatively."""

    def __init__(
        self,
        executable: Executable,
        predictor: BranchPredictor,
        max_instructions: int = 500_000_000,
        bq_capacity: int = BQ_CAPACITY,
        state=None,
        threaded: bool = True,
    ):
        """*state* (optional) lets the frontend pick up mid-program from
        an existing :class:`~repro.emulator.state.ArchState` — used by
        the sampling simulator to alternate functional skipping with
        detailed measurement windows.

        *threaded* (default on) runs straight-line code through the
        threaded-code block dispatcher (:mod:`repro.emulator.threaded`)
        instead of per-instruction ``step()`` dispatch. Control events,
        records, and every canonical result are byte-identical either
        way — the knob exists for ablation benchmarks."""
        self.executable = executable
        self.predictor = predictor
        self.interpreter = Interpreter(executable, state)
        self.queues = RecordQueues()
        self.bq = BranchCheckpointQueue(bq_capacity)
        self.max_instructions = max_instructions
        self.threaded = bool(threaded)
        self._blocks = (BlockCache(self.interpreter, self.queues)
                        if self.threaded else None)
        # Pre-bound hot-path references: every object here is
        # identity-stable for the lifetime of the frontend (queues are
        # truncated in place, state/predictor/bq never replaced), so
        # run_one_event — called once per control event — skips the
        # attribute chase and bound-method allocation per call.
        self._block_at = (self._blocks.block_at
                          if self._blocks is not None else None)
        self._step = self.interpreter.step
        self._loads = self.queues.loads
        self._stores = self.queues.stores
        self._controls = self.queues.controls
        self._controls_append = self.queues.controls.append
        self._bq_save = self.bq.save
        #: Total instructions functionally executed, wrong paths included.
        self.executed_instructions = 0
        #: Instructions undone by misprediction rollbacks.
        self.squashed_instructions = 0
        #: Number of rollbacks performed.
        self.rollbacks = 0

    @property
    def state(self):
        """The (speculative) architectural state."""
        return self.interpreter.state

    @property
    def committed_instructions(self) -> int:
        """Instructions executed minus those later squashed."""
        return self.executed_instructions - self.squashed_instructions

    # ------------------------------------------------------------------

    def run_one_event(self) -> ControlRecord:
        """Execute up to (and including) the next control event.

        Appends load/store records for every memory instruction passed,
        appends and returns the new control record. At a mispredicted
        conditional branch, checkpoints state and diverts execution down
        the predicted path before returning.
        """
        interpreter = self.interpreter
        state = interpreter.state
        queues = self.queues
        if state.halted:
            # The program halted at the previous event; every further
            # request sees a HALT record (fetch will stop consuming).
            record = ControlRecord(
                ControlKind.HALT, state.pc,
                lq_len=len(queues.loads), sq_len=len(queues.stores),
            )
            queues.controls.append(record)
            return record

        # Hot loop: every attribute consulted per iteration is hoisted
        # into a local; the executed-instruction counter lives in a
        # local and is written back at every exit (including the budget
        # raise), so observers always see it current.
        blocks = self._blocks
        block_at = self._block_at
        step = self._step
        loads = self._loads
        stores = self._stores
        controls = self._controls
        controls_append = self._controls_append
        # ``predict_and_update`` stays a direct attribute call at its
        # two call sites (not pre-bound like the rest): the flow lint's
        # replay-reachability resolves the predictor layer through
        # those call edges.
        predictor = self.predictor
        bq_save = self._bq_save
        executed = self.executed_instructions
        limit = self.max_instructions
        try:
            while True:
                if block_at is not None:
                    # Threaded fast path: run the straight-line block at
                    # the current PC in one shot. Blocks never contain
                    # control events and only run when they fit the
                    # remaining budget, so the step path below sees
                    # exactly the state (and raises exactly the errors)
                    # it always did.
                    ops, count, end_pc, term = block_at(state.pc)
                    if count:
                        if count <= limit - executed:
                            for op in ops:
                                op()
                            state.pc = end_pc
                            state.instret += count
                            executed += count
                            blocks.block_runs += 1
                            blocks.threaded_instructions += count
                        else:
                            # Over budget: the step path re-executes the
                            # block one instruction at a time so the
                            # budget raise lands on the exact
                            # instruction. We are not at the branch, so
                            # the terminator must not run.
                            term = None
                    if term is not None and executed < limit:
                        if term[0] == TERM_COND:
                            # Fused conditional branch: evaluate the
                            # decode-time-bound condition and run the
                            # same predictor/record/checkpoint sequence
                            # as the step path below — without the
                            # generic dispatch. PC lands on the
                            # *correct* target first (that is what the
                            # checkpoint saves), then diverts down the
                            # predicted path on a mispredict.
                            _, cond, uses_fcc, address, target, fall = term
                            actual_taken = (cond(state.fcc) if uses_fcc
                                            else cond(state.icc))
                            state.pc = target if actual_taken else fall
                            state.instret += 1
                            executed += 1
                            blocks.fused_branches += 1
                            predicted_taken = predictor.predict_and_update(
                                address, actual_taken)
                            record = ControlRecord(
                                ControlKind.COND, address, actual_taken,
                                predicted_taken, 0,
                                len(loads), len(stores),
                            )
                            control_index = len(controls)
                            controls_append(record)
                            if predicted_taken != actual_taken:
                                bq_save(control_index, state, state.pc)
                                state.pc = (target if predicted_taken
                                            else fall)
                            return record
                        # Fused indirect jump (jmpl): compute the
                        # dynamic target, link the decode-time constant
                        # ``address + 4``, record INDIRECT. A
                        # misaligned target falls through to the step
                        # path, which raises the canonical error from
                        # unchanged state.
                        _, address, rs1, rs2, imm, rd, link = term
                        regs = state.regs
                        base = regs[rs1] if rs1 else 0
                        if imm is not None:
                            target = (base + imm) & 0xFFFF_FFFF
                        else:
                            target = (base + (regs[rs2] if rs2 else 0)) \
                                & 0xFFFF_FFFF
                        if target % 4 == 0:
                            if rd:
                                regs[rd] = link
                            state.pc = target
                            state.instret += 1
                            executed += 1
                            record = ControlRecord(
                                ControlKind.INDIRECT, address, True,
                                False, target, len(loads), len(stores),
                            )
                            controls_append(record)
                            return record
                if executed >= limit:
                    raise SimulationError(
                        f"frontend exceeded {limit} instructions"
                    )
                instr = step()
                executed += 1

                if instr.is_load:
                    loads.append(
                        LoadRecord(interpreter.last_mem_addr,
                                   interpreter.last_mem_width)
                    )
                elif instr.is_store:
                    stores.append(
                        StoreRecord(
                            interpreter.last_mem_addr,
                            interpreter.last_mem_width,
                            interpreter.last_store_old,
                        )
                    )

                if instr.is_conditional_branch:
                    # (Inlined _record_conditional — one call site, on
                    # the hottest event path.)
                    actual_taken = interpreter.last_taken
                    predicted_taken = predictor.predict_and_update(
                        instr.address, actual_taken)
                    record = ControlRecord(
                        ControlKind.COND, instr.address, actual_taken,
                        predicted_taken, 0, len(loads), len(stores),
                    )
                    control_index = len(queues.controls)
                    controls_append(record)
                    if predicted_taken != actual_taken:
                        # Checkpoint with PC at the *correct*
                        # destination, then divert execution down the
                        # predicted (wrong) path.
                        corrected_pc = state.pc
                        self.bq.save(control_index, state, corrected_pc)
                        state.pc = (instr.target if predicted_taken
                                    else instr.fall_through)
                    return record
                if instr.is_indirect_jump:
                    record = ControlRecord(
                        ControlKind.INDIRECT,
                        instr.address,
                        taken=True,
                        target=interpreter.last_target,
                        lq_len=len(loads),
                        sq_len=len(stores),
                    )
                    queues.controls.append(record)
                    return record
                if state.halted:
                    record = ControlRecord(
                        ControlKind.HALT,
                        instr.address,
                        lq_len=len(loads),
                        sq_len=len(stores),
                    )
                    queues.controls.append(record)
                    return record
        finally:
            self.executed_instructions = executed

    # ------------------------------------------------------------------

    def rollback_to(self, control_index: int) -> None:
        """Undo execution past mispredicted branch *control_index*.

        Restores pre-store memory values in reverse order, restores the
        ``bQ`` register checkpoint (leaving PC at the corrected target),
        and truncates the wrong-path queue entries.
        """
        queues = self.queues
        if control_index >= len(queues.controls):
            raise SimulationError(
                f"rollback to unknown control record {control_index}"
            )
        record = queues.controls[control_index]
        if not record.mispredicted:
            raise SimulationError(
                f"control record {control_index} was not mispredicted"
            )
        memory = self.interpreter.state.memory
        for store in reversed(queues.stores[record.sq_len:]):
            memory.load_bytes(store.address, store.old_bytes)
        instret_before = self.interpreter.state.instret
        self.bq.restore(control_index, self.interpreter.state)
        self.squashed_instructions += (
            instret_before - self.interpreter.state.instret
        )
        queues.truncate(control_index + 1, record.lq_len, record.sq_len)
        self.rollbacks += 1

    # ------------------------------------------------------------------

    def frontend_stats(self) -> dict:
        """Host-side dispatcher counters (never canonical)."""
        if self._blocks is None:
            return {"blocks_decoded": 0, "block_runs": 0,
                    "threaded_instructions": 0, "fused_branches": 0}
        return self._blocks.stats()

    def control(self, index: int) -> Optional[ControlRecord]:
        """Return control record *index* if recorded, else None."""
        return self.queues.control(index)

    def load(self, index: int) -> LoadRecord:
        return self.queues.loads[index]

    def store(self, index: int) -> StoreRecord:
        return self.queues.stores[index]

"""The frontend's recording queues: ``lQ``, ``sQ``, and the control-flow queue.

FastSim's instrumentation records, during (speculative) direct
execution:

* ``lQ`` — the effective address of every load, for the cache simulator;
* ``sQ`` — the effective address of every store **plus the pre-store
  memory value**, doubling as the rollback log for mispredicted paths;
* one control-flow record per conditional branch / indirect jump /
  program halt, telling the μ-architecture simulator which way direct
  execution went and whether the branch predictor agreed.

Entries are indexed by their append position. The μ-architecture
simulator addresses entries by index (fetch assigns the k-th load
fetched to ``lQ[k]`` — sound because fetch follows exactly the path the
frontend executed). A misprediction rollback truncates all three queues
back to the lengths recorded in the mispredicted branch's control
record, after restoring pre-store values in reverse order.
"""

from __future__ import annotations

import enum
from typing import List, Optional


class ControlKind(enum.IntEnum):
    """What kind of control event a record describes."""

    COND = 0  #: conditional branch (predicted; may be mispredicted)
    INDIRECT = 1  #: indirect jump — target recorded, never speculated past
    HALT = 2  #: program executed ``halt``


# The three record types below are plain __slots__ classes rather than
# (frozen) dataclasses: they are allocated once per executed memory /
# control instruction on the frontend's hottest path, and a frozen
# dataclass pays one object.__setattr__ per field. Treat instances as
# immutable — queues are append-only and truncate-on-rollback; nothing
# may mutate a record after construction.


class ControlRecord:
    """One control-flow event recorded by the frontend.

    ``taken`` is the branch's outcome *as evaluated on the path the
    frontend was executing* (which may itself be a wrong path).
    ``lq_len``/``sq_len`` snapshot the queue lengths at the event, which
    is what rollback truncates to.
    """

    __slots__ = ("kind", "pc", "taken", "predicted_taken", "target",
                 "lq_len", "sq_len")

    def __init__(self, kind: ControlKind, pc: int, taken: bool = False,
                 predicted_taken: bool = False, target: int = 0,
                 lq_len: int = 0, sq_len: int = 0):
        self.kind = kind
        self.pc = pc
        self.taken = taken
        self.predicted_taken = predicted_taken
        #: actual destination (indirect jumps; corrected path)
        self.target = target
        self.lq_len = lq_len
        self.sq_len = sq_len

    def __repr__(self) -> str:
        return (f"ControlRecord(kind={self.kind!r}, pc={self.pc:#x}, "
                f"taken={self.taken}, "
                f"predicted_taken={self.predicted_taken}, "
                f"target={self.target:#x}, lq_len={self.lq_len}, "
                f"sq_len={self.sq_len})")

    @property
    def mispredicted(self) -> bool:
        """True when the predictor disagreed with the evaluated outcome."""
        return self.kind is ControlKind.COND and (
            self.taken != self.predicted_taken
        )

    def outcome_key(self):
        """Hashable key describing this record for p-action cache edges.

        Two records with equal keys cause identical subsequent simulator
        behaviour from the same configuration: the fetch path is a
        function of (kind, predicted direction, misprediction flag,
        indirect target) plus static code.
        """
        if self.kind is ControlKind.COND:
            return (int(self.kind), self.pc, self.taken, self.predicted_taken)
        if self.kind is ControlKind.INDIRECT:
            return (int(self.kind), self.pc, self.target)
        return (int(self.kind), self.pc)


class LoadRecord:
    """Effective address + width of one executed load."""

    __slots__ = ("address", "width")

    def __init__(self, address: int, width: int):
        self.address = address
        self.width = width

    def __repr__(self) -> str:
        return f"LoadRecord(address={self.address:#x}, width={self.width})"


class StoreRecord:
    """Effective address, width, and pre-store bytes of one executed store."""

    __slots__ = ("address", "width", "old_bytes")

    def __init__(self, address: int, width: int, old_bytes: bytes):
        self.address = address
        self.width = width
        self.old_bytes = old_bytes

    def __repr__(self) -> str:
        return (f"StoreRecord(address={self.address:#x}, "
                f"width={self.width}, old_bytes={self.old_bytes!r})")


class RecordQueues:
    """The three append-only (truncate-on-rollback) frontend queues."""

    __slots__ = ("loads", "stores", "controls")

    def __init__(self) -> None:
        self.loads: List[LoadRecord] = []
        self.stores: List[StoreRecord] = []
        self.controls: List[ControlRecord] = []

    def control(self, index: int) -> Optional[ControlRecord]:
        """Return control record *index*, or None if not yet recorded."""
        if index < len(self.controls):
            return self.controls[index]
        return None

    def truncate(self, control_len: int, lq_len: int, sq_len: int) -> None:
        """Discard wrong-path entries after a misprediction rollback."""
        del self.controls[control_len:]
        del self.loads[lq_len:]
        del self.stores[sq_len:]

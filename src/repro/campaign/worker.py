"""Job execution — the one code path every runner drives.

:func:`execute_job` turns a :class:`~repro.campaign.jobs.Job` into a
:class:`~repro.campaign.jobs.JobResult`. The serial suite runner calls
it in-process; the parallel :class:`~repro.campaign.engine.CampaignRunner`
calls it inside a worker subprocess via :func:`child_main`. Keeping one
executor is what makes "bit-identical under any worker count" a
structural property rather than a test-enforced accident.

Job *kinds* are pluggable: ``simulate`` (the default) runs a workload
under one of the four simulators with optional warm-start through a
:class:`~repro.campaign.cachedir.CacheStore`; tests register
fault-injecting kinds to exercise the engine's crash/timeout/retry
paths. Registrations made before workers fork are inherited by them
(the engine uses the ``fork`` start method where available).

Failure semantics: an exception raised by a kind executor is a
*deterministic* failure — it is reported once and not retried (re-running
the same pure function on the same job would fail the same way). Worker
death and timeouts are *infrastructure* failures and are retried by the
engine.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.campaign.cachedir import CacheStore, StoreSpec
from repro.campaign.jobs import Job, JobResult, NativeRun
from repro.emulator.functional import Interpreter
from repro.guard import faults
from repro.memo.compile import TurboConfig
from repro.memo.engine import run_signature
from repro.sim.fastsim import FastSim
from repro.uarch.params import ProcessorParams
from repro.workloads.suite import load_workload

JobExecutor = Callable[[Job, Optional[CacheStore]], JobResult]

_JOB_KINDS: Dict[str, JobExecutor] = {}


def register_job_kind(name: str, executor: JobExecutor) -> None:
    """Register an executor for ``Job.kind == name``."""
    _JOB_KINDS[name] = executor


def job_kinds() -> list:
    """Registered kind names, sorted."""
    return sorted(_JOB_KINDS)


def _effective_params(job: Job) -> ProcessorParams:
    return job.params if job.params is not None else ProcessorParams.r10k()


def native_run(executable) -> NativeRun:
    """Time plain functional execution of *executable*."""
    interpreter = Interpreter(executable)
    started = time.perf_counter()  # repro-lint: disable=det/time-dependent
    interpreter.run()
    elapsed = time.perf_counter() - started  # repro-lint: disable=det/time-dependent
    return NativeRun(
        seconds=elapsed,
        instructions=interpreter.state.instret,
        output=list(interpreter.state.output),
    )


def simulate_executable(
    executable,
    simulator: str = "fast",
    params: Optional[ProcessorParams] = None,
    policy=None,
    store: Optional[CacheStore] = None,
    obs=None,
    audit_every: Optional[int] = None,
    audit_seed: int = 0,
    turbo: bool = True,
    turbo_threshold: Optional[int] = None,
    threaded_frontend: bool = True,
    l1_filter: bool = True,
):
    """Run one simulator over *executable*; returns (result, metrics).

    *policy* is a live :class:`~repro.memo.policies.ReplacementPolicy`
    (already built from a spec, or caller-supplied). Warm-start through
    *store* only applies to unbounded ``fast`` runs: a bounded policy's
    eviction behaviour is part of the experiment, so it must start from
    the same (cold) cache every time. *obs* is an
    :class:`~repro.obs.Observer` (or None — telemetry off); observers
    read simulation state and never influence results. *audit_every*
    (``fast`` only) routes the run through the
    :class:`~repro.guard.engine.GuardedEngine`, which samples replay
    episodes and re-verifies them against a fresh detailed simulator.
    *turbo* / *turbo_threshold* control chain compilation of hot
    replay paths (``fast`` only; on by default) — canonical results
    are bit-identical either way, see docs/performance.md.
    *threaded_frontend* / *l1_filter* toggle the host-side frontend
    and memory-hierarchy speed layers (``fast`` only; on by default;
    never change canonical results). When warm-starting with turbo on,
    the compiled-segment archive persisted next to the p-cache
    (``.fsseg``, :mod:`repro.memo.segstore`) is loaded and installed so
    the run skips segment re-warm-up, and the run's own live segments
    are captured back to the store afterwards.
    """
    metrics: Dict[str, object] = {}

    if simulator == "fast":
        signature = None
        pcache = None
        known_nodes = 0
        if store is not None and policy is None:
            effective = (params if params is not None
                         else ProcessorParams.r10k())
            signature = run_signature(executable, effective)
            pcache = store.load(signature)
            if pcache is not None:
                known_nodes = (pcache.configs_allocated
                               + pcache.actions_allocated)
                metrics["warm_start"] = True
                if obs is not None:
                    obs.counter("campaign.warm_starts")
        if pcache is not None:
            plan = faults.active_plan()
            if plan is not None:
                injected = faults.apply_memory_faults(pcache, plan)
                if injected:
                    metrics["faults_injected"] = injected
        turbo_cfg = (
            TurboConfig(enabled=bool(turbo), threshold=turbo_threshold)
            if turbo_threshold is not None else turbo
        )
        seg_archive = None
        if (pcache is not None and bool(turbo)
                and hasattr(store, "load_segments")):
            # Segments only install against the graph they were captured
            # from, so a cold p-cache makes the archive useless — skip
            # the read entirely.
            seg_archive = store.load_segments(signature)
        sim = FastSim(executable, params=params, policy=policy,
                      pcache=pcache, obs=obs,
                      audit_every=audit_every, audit_seed=audit_seed,
                      turbo=turbo_cfg,
                      threaded_frontend=threaded_frontend,
                      l1_filter=l1_filter, segstore=seg_archive)
        result = sim.run()
        table = sim.pcache.turbo
        if sim.engine.turbo.enabled and table is not None:
            # Host-side diagnostics (metrics, not canonical output).
            metrics["turbo"] = table.snapshot()
        if sim.segstore_stats is not None:
            metrics["segstore"] = dict(sim.segstore_stats)
        if audit_every is not None:
            metrics["audits"] = sim.engine.audits
            metrics["audit_divergences"] = sim.engine.divergences
            if sim.engine.reports:
                metrics["divergence_reports"] = [
                    report.as_dict() for report in sim.engine.reports
                ]
        if signature is not None:
            metrics["cache_saved"] = store.store(
                signature, sim.pcache, known_nodes
            )
            if obs is not None and metrics["cache_saved"]:
                obs.counter("campaign.cache_saves")
            if (sim.engine.turbo.enabled and table is not None
                    and hasattr(store, "store_segments")):
                from repro.memo.segstore import capture

                metrics["segments_saved"] = store.store_segments(
                    signature, capture(sim.pcache))
    elif simulator == "slow":
        from repro.sim.slowsim import SlowSim

        result = SlowSim(executable, params=params, obs=obs).run()
    elif simulator == "baseline":
        from repro.sim.baseline import IntegratedSimulator

        result = IntegratedSimulator(
            executable, params=params, obs=obs
        ).run()
    else:
        raise ValueError(f"unknown simulator {simulator!r}")

    if policy is not None:
        metrics["collections"] = result.memo.evictions
        rates = getattr(policy, "survival_rates", None)
        if rates:
            metrics["survival_rates"] = list(rates)

    return result, metrics


def _simulate(job: Job, store: Optional[CacheStore],
              obs=None) -> JobResult:
    """The default kind: run one workload under one simulator."""
    executable = load_workload(job.workload, job.scale)

    if job.simulator == "native":
        return JobResult(job=job, status="ok",
                         native=native_run(executable))

    policy = job.policy.build() if job.policy is not None else None
    result, metrics = simulate_executable(
        executable, job.simulator, params=job.params, policy=policy,
        store=store, obs=obs,
        audit_every=getattr(job, "audit_every", None),
        audit_seed=getattr(job, "audit_seed", 0),
        turbo=getattr(job, "turbo", True),
        turbo_threshold=getattr(job, "turbo_threshold", None),
        threaded_frontend=getattr(job, "threaded_frontend", True),
        l1_filter=getattr(job, "l1_filter", True),
    )
    if store is not None and store.quarantined:
        metrics["cache_quarantined"] = list(store.quarantined)
    tier_stats = getattr(store, "tier_stats", None)
    if tier_stats is not None:
        # Host diagnostics: tier hit rates vary with cache temperature
        # and never enter canonical output.
        metrics["cache_tier"] = dict(tier_stats)
    return JobResult(job=job, status="ok", result=result, metrics=metrics)


register_job_kind("simulate", _simulate)


def _accepts_obs(executor: JobExecutor) -> bool:
    """Whether *executor* takes the optional third ``obs`` argument.

    Older/test-registered kinds keep the two-argument signature; they
    simply never see the observer.
    """
    import inspect

    try:
        parameters = inspect.signature(executor).parameters
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    return "obs" in parameters


def execute_job(job: Job, store: Optional[CacheStore] = None,
                obs=None) -> JobResult:
    """Run one job to a JobResult; never raises.

    Exceptions become ``status="failed"`` results (deterministic
    failures — see the module docstring for why these are not retried).
    *obs* reaches the job's simulator only on the in-process (serial)
    path; pool workers run in their own processes and keep their
    telemetry local.
    """
    started = time.perf_counter()  # repro-lint: disable=det/time-dependent
    plan = faults.active_plan()
    if plan is not None:
        # Chaos hooks: may os._exit() this process (crash-once per
        # plan) or sleep past the supervisor's hang budget (hang-once).
        faults.maybe_crash(job.key, plan)
        faults.maybe_hang(job.key, plan)
    executor = _JOB_KINDS.get(job.kind)
    if executor is None:
        outcome = JobResult(
            job=job, status="failed",
            error=f"unknown job kind {job.kind!r}",
        )
    else:
        try:
            if obs is not None and obs.enabled and _accepts_obs(executor):
                outcome = executor(job, store, obs=obs)
            else:
                outcome = executor(job, store)
        except Exception as exc:
            outcome = JobResult(
                job=job, status="failed",
                error=f"{type(exc).__name__}: {exc}",
            )
    outcome.host_seconds = time.perf_counter() - started  # repro-lint: disable=det/time-dependent
    return outcome


def execute_attempt(job: Job, store_spec=None, telemetry=None,
                    worker: object = None, attempt: int = 1) -> JobResult:
    """Run one attempt, optionally under a worker-side collector.

    The single path every backend worker drives. *store_spec* is a
    :class:`~repro.campaign.cachedir.StoreSpec` (a plain
    cache-directory string is also accepted for compatibility).
    *telemetry* is a :class:`~repro.obs.worker.TelemetrySpec` or None —
    the disabled path costs exactly this one ``is None`` test and
    ships nothing. When set, the attempt runs against a local
    :class:`~repro.obs.worker.WorkerCollector` (same observer surface
    as the serial path — memo spans, sampled series, cache-tier
    counters — collected locally), wrapped in a ``worker.job`` span
    labelled *worker*, and the rendered blob rides back on
    ``result.telemetry`` for the engine to merge.
    """
    if not isinstance(store_spec, StoreSpec):
        store_spec = StoreSpec(cache_dir=store_spec or None)
    if telemetry is None:
        return execute_job(job, store_spec.build())
    collector = telemetry.collector(worker if worker is not None
                                    else "worker")
    observer = collector.observer
    store = store_spec.build(obs=observer)
    with observer.span("worker.job", cat="campaign", key=job.key,
                       attempt=attempt):
        result = execute_job(job, store, obs=observer)
    result.telemetry = collector.blob(job.key, attempt)
    return result


def child_main(connection, job: Job, store_spec=None, telemetry=None,
               attempt: int = 1, heartbeat=None) -> None:
    """Worker-process entry: execute one job, send the result back.

    *store_spec* is a :class:`~repro.campaign.cachedir.StoreSpec` (the
    fork backend ships the recipe; the child builds its own store
    handles) — a plain cache-directory string is also accepted for
    compatibility with older callers. *telemetry* (a
    :class:`~repro.obs.worker.TelemetrySpec`, shipped only when the
    parent observer is live) makes the child collect its own deep
    telemetry and attach the blob to the result crossing the pipe.
    *heartbeat* (seconds, or None) makes a daemon thread interleave
    :data:`~repro.campaign.supervise.HEARTBEAT` sentinels with the
    result on the same pipe, under a send lock, so the parent's
    supervisor can tell hung from slow; the thread consults
    :func:`~repro.guard.faults.hang_active` so an injected hang
    silences the beats too.
    """
    import os
    import threading

    from repro.campaign.supervise import HEARTBEAT

    send_lock = threading.Lock()
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat):
            if faults.hang_active():
                continue  # an injected hang must look hung
            try:
                with send_lock:
                    connection.send(HEARTBEAT)
            except (OSError, ValueError):  # parent gone
                return

    beater = None
    if heartbeat is not None:
        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
    try:
        result = execute_attempt(
            job, store_spec, telemetry=telemetry,
            worker=f"fork-{os.getpid()}", attempt=attempt,
        )
        stop.set()
        if beater is not None:
            beater.join(timeout=1.0)
        with send_lock:
            connection.send(result)
    except BaseException as exc:  # result must cross the pipe or the
        # parent treats this worker as crashed — report what we can.
        stop.set()
        try:
            with send_lock:
                connection.send(JobResult(
                    job=job, status="failed",
                    error=f"worker error: {type(exc).__name__}: {exc}",
                ))
        except Exception:
            pass
    finally:
        stop.set()
        connection.close()

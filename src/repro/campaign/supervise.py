"""Crash-safe campaign supervision: the durable journal and helpers.

A campaign that dies at job 94/100 must not be re-driven from the top.
This module provides the pieces the engine composes into crash-safety
(see docs/robustness.md § *Crash-safe campaigns*):

* **The campaign journal** — a durable, append-only record of engine
  decisions (:class:`CampaignJournal` writes, :func:`read_journal`
  replays). Records are schema-stamped dicts
  (``repro.campaign/journal/v1``) pickled and CRC-framed exactly like
  FSPC v2 node records (big-endian u32 length + payload + u32 CRC32),
  with one header and **no whole-file trailer**: every append is
  self-contained and fsync'd, so a SIGKILL mid-write leaves a readable
  prefix plus at most one torn tail frame, which the reader drops and
  counts. ``CampaignRunner(resume=...)`` replays the journal,
  re-verifies the recorded job keys against the current campaign, and
  skips completed jobs — producing output byte-identical to an
  uninterrupted run because recorded :class:`JobResult` payloads
  round-trip losslessly.

* **Heartbeats** — the :data:`HEARTBEAT` sentinel workers interleave
  with results on the existing channels (fork pipe / stdio frames) so
  the engine can tell a *hung* worker (silent beyond ``hang_after``)
  from a merely *slow* one, distinctly from deadline expiry.

* **Seeded retry jitter** — :func:`retry_delay` spreads the engine's
  exponential backoff deterministically per ``(job_key, attempt)`` so
  many workers retrying one shared-tier failure don't synchronize.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import CampaignError
from repro.obs.schema import JOURNAL_SCHEMA, stamp

__all__ = [
    "HEARTBEAT",
    "CampaignJournal",
    "Heartbeat",
    "JOURNAL_MAGIC",
    "JournalReplay",
    "classify_failure",
    "heartbeat_interval",
    "read_journal",
    "retry_delay",
    "verify_resume",
]

#: Journal file preamble, FSPC-v2 style: magic, u32 sentinel (never a
#: valid record length, so the formats stay self-distinguishing), u16
#: format version.
JOURNAL_MAGIC = b"FSCJ"
_JOURNAL_VERSION = 1
_HEADER = JOURNAL_MAGIC + struct.pack(">IH", 0xFFFFFFFF, _JOURNAL_VERSION)
_LENGTH = struct.Struct(">I")

#: Outcome statuses that are terminal for a job and safe to skip on
#: resume ("cancelled" re-runs: it records that the job never ran).
TERMINAL_STATUSES = ("ok", "failed", "poisoned")


class Heartbeat:
    """Picklable liveness sentinel a worker sends between results."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Heartbeat()"


HEARTBEAT = Heartbeat()


def heartbeat_interval(hang_after: Optional[float]) -> Optional[float]:
    """Beat period for a *hang_after* budget (several beats per budget)."""
    if hang_after is None:
        return None
    return max(min(hang_after / 4.0, 1.0), 0.02)


def retry_delay(backoff: float, job_key: str, attempt: int) -> float:
    """Exponential backoff with deterministic, seeded jitter.

    Base delay is the engine's historical ``backoff * 2**(attempt-1)``;
    the jitter factor in ``[1.0, 1.5)`` is drawn from a SHA-256 of
    ``job_key`` and *attempt*, so it is identical across runs and
    hosts (asserted in tests) while de-synchronizing distinct jobs
    that fail simultaneously (e.g. on one shared-tier outage).
    """
    base = backoff * (2 ** (attempt - 1))
    digest = hashlib.sha256(
        f"{job_key}#{attempt}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return base * (1.0 + 0.5 * fraction)


def classify_failure(failure: str) -> str:
    """Bucket an infrastructure-failure message: crash/timeout/hang.

    Backends label outcomes explicitly (``AttemptOutcome.failure_kind``);
    this is the fallback for older call sites and tests.
    """
    if "hung" in failure:
        return "hang"
    if "timed out" in failure:
        return "timeout"
    return "crash"


class CampaignJournal:
    """Append-only, CRC-framed writer for campaign journal records.

    Opening an empty (or absent) file writes the header; opening an
    existing journal scans it to continue the record sequence. Every
    :meth:`append` flushes and fsyncs before returning, so a record the
    engine has moved past is durable — the property the engine-kill
    chaos drill relies on.
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        existing = 0
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        if not fresh:
            existing = len(read_journal(path).records)
        self._stream = open(path, "ab")
        self._seq = existing
        if fresh:
            self._stream.write(_HEADER)
            self._sync()

    @property
    def records_written(self) -> int:
        """Records in the file, including any written by prior runs."""
        return self._seq

    def append(self, kind: str, **fields: object) -> Dict[str, object]:
        """Durably append one schema-stamped record; returns it."""
        record = stamp(JOURNAL_SCHEMA,
                       {"kind": kind, "seq": self._seq, **fields})
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._stream.write(_LENGTH.pack(len(payload)))
        self._stream.write(payload)
        self._stream.write(_LENGTH.pack(zlib.crc32(payload) & 0xFFFFFFFF))
        self._sync()
        self._seq += 1
        return record

    def _sync(self) -> None:
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class JournalReplay:
    """Decoded journal state, ready for the engine to resume from."""

    path: str
    #: Campaign identity from the ``campaign-open`` record (None when
    #: the journal died before the open record landed).
    name: Optional[str] = None
    backend: Optional[str] = None
    job_keys: List[str] = field(default_factory=list)
    #: Terminal per-job outcomes (``ok``/``failed``/``poisoned``),
    #: keyed by job key — exactly what a resumed run may skip.
    outcomes: Dict[str, object] = field(default_factory=dict)
    records: List[Dict[str, object]] = field(default_factory=list)
    #: Damaged/torn tail frames dropped by the reader (0 or 1: the
    #: reader stops at the first bad frame).
    torn_records: int = 0
    #: ``campaign-end`` / ``campaign-cancelled`` when the run closed
    #: cleanly; None for a journal cut short by a crash.
    terminal: Optional[str] = None

    @property
    def completed(self) -> int:
        """Jobs with a durable terminal outcome."""
        return len(self.outcomes)


def read_journal(path: str) -> JournalReplay:
    """Replay a campaign journal, tolerating a torn tail.

    Raises :class:`CampaignError` only for files that are not journals
    at all (wrong magic); damage *after* the header is expected crash
    evidence and degrades to a shorter replay.
    """
    replay = JournalReplay(path=path)
    with open(path, "rb") as stream:
        data = stream.read()
    if not data:
        return replay
    if not data.startswith(_HEADER):
        raise CampaignError(
            f"{path}: not a campaign journal (bad magic/version)")
    offset = len(_HEADER)
    total = len(data)
    while offset < total:
        if offset + _LENGTH.size > total:
            replay.torn_records += 1
            break
        (length,) = _LENGTH.unpack_from(data, offset)
        end = offset + _LENGTH.size + length + _LENGTH.size
        if end > total:
            replay.torn_records += 1
            break
        payload = data[offset + _LENGTH.size:end - _LENGTH.size]
        (crc,) = _LENGTH.unpack_from(data, end - _LENGTH.size)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            replay.torn_records += 1
            break
        try:
            record = pickle.loads(payload)
        except Exception:
            replay.torn_records += 1
            break
        if not isinstance(record, dict):
            replay.torn_records += 1
            break
        replay.records.append(record)
        offset = end
    for record in replay.records:
        kind = record.get("kind")
        if kind == "campaign-open":
            replay.name = record.get("name")
            replay.backend = record.get("backend")
            replay.job_keys = list(record.get("jobs") or ())
        elif kind == "outcome":
            result = record.get("result")
            status = getattr(result, "status", None)
            if status in TERMINAL_STATUSES:
                replay.outcomes[record.get("key")] = result
        elif kind in ("campaign-end", "campaign-cancelled"):
            replay.terminal = kind
    return replay


def verify_resume(replay: JournalReplay, name: str,
                  job_keys: Sequence[str]) -> None:
    """Check a journal actually belongs to the campaign being resumed.

    Raises :class:`CampaignError` naming the first mismatch — resuming
    a different campaign's journal would silently merge foreign
    results. An empty journal (crash before the open record) passes:
    resuming it is just a fresh run.
    """
    if replay.name is None:
        return
    if replay.name != name:
        raise CampaignError(
            f"{replay.path}: journal records campaign "
            f"{replay.name!r}, not {name!r}")
    current = list(job_keys)
    if replay.job_keys != current:
        recorded = set(replay.job_keys)
        wanted = set(current)
        missing = sorted(wanted - recorded)
        extra = sorted(recorded - wanted)
        detail = []
        if missing:
            detail.append(f"missing {missing}")
        if extra:
            detail.append(f"extra {extra}")
        if not detail:
            detail.append("job order changed")
        raise CampaignError(
            f"{replay.path}: journal does not match campaign "
            f"{name!r} ({'; '.join(detail)})")
    stale = sorted(set(replay.outcomes) - set(current))
    if stale:
        raise CampaignError(
            f"{replay.path}: journal has outcomes for unknown jobs "
            f"{stale}")

"""Progress reporting — one sink protocol for every runner.

The suite runner used to split progress between a ``verbose`` print and
an optional callback; the campaign engine needs structured events
(job started / finished / retried) as well as plain log lines. Both now
speak to a single :class:`ProgressSink`:

* :class:`TextSink` — human-readable one-liners to a stream;
* :class:`JsonlSink` — one JSON object per event (machine-readable,
  suitable for build logs and dashboards);
* :class:`NullSink` — silence;
* :class:`CallbackSink` — adapts a legacy ``Callable[[str], None]``
  progress callback;
* :class:`ObsSink` — mirrors events into a :class:`repro.obs.Observer`
  (instant trace events + job-outcome counters/histograms);
* :class:`TeeSink` — fans one event stream out to several sinks.

Events are free-form ``(kind, fields)`` pairs; the well-known kinds the
campaign engine emits are documented in ``docs/campaign.md``.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Optional, TextIO


class ProgressSink:
    """Protocol: receives structured progress events.

    Subclasses implement :meth:`emit`. ``kind`` names the event
    (``"log"``, ``"job-start"``, ``"job-ok"``, ``"job-retry"``,
    ``"job-failed"``, ``"campaign-start"``, ``"campaign-end"``) and the
    keyword fields carry its payload.
    """

    def emit(self, kind: str, **fields: object) -> None:
        raise NotImplementedError

    def log(self, message: str) -> None:
        """Convenience wrapper for plain log lines."""
        self.emit("log", message=message)


class NullSink(ProgressSink):
    """Drops every event."""

    def emit(self, kind: str, **fields: object) -> None:
        pass


def _render_text(kind: str, fields: dict) -> str:
    """One human-readable line per event."""
    if kind == "log":
        return str(fields.get("message", ""))
    parts = []
    if kind in ("cache-quarantined", "cache-breaker-open",
                "job-poisoned"):
        # Cache rot, a tripped shared-tier breaker, and a quarantined
        # poison job must be visible to operators, not silent.
        parts.append("WARNING:")
    parts.append(kind)
    key = fields.get("key")
    if key is not None:
        parts.append(str(key))
    detail = ", ".join(
        f"{name}={fields[name]}"
        for name in sorted(fields)
        if name not in ("key",) and fields[name] is not None
    )
    if detail:
        parts.append(f"({detail})")
    return " ".join(parts)


class TextSink(ProgressSink):
    """Human-readable progress lines on a stream (default stdout)."""

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream

    def emit(self, kind: str, **fields: object) -> None:
        stream = self.stream if self.stream is not None else sys.stdout
        print(_render_text(kind, fields), file=stream, flush=True)


class JsonlSink(ProgressSink):
    """One JSON object per event, keys sorted for stable output."""

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream

    def emit(self, kind: str, **fields: object) -> None:
        stream = self.stream if self.stream is not None else sys.stdout
        record = dict(fields)
        record["event"] = kind
        print(json.dumps(record, sort_keys=True, default=str),
              file=stream, flush=True)


class CallbackSink(ProgressSink):
    """Adapts the legacy ``progress=callable`` suite-runner argument."""

    def __init__(self, callback: Callable[[str], None]):
        self.callback = callback

    def emit(self, kind: str, **fields: object) -> None:
        self.callback(_render_text(kind, fields))


class ObsSink(ProgressSink):
    """Mirrors progress events into an :class:`repro.obs.Observer`.

    Every event becomes an instant trace event (category
    ``"campaign"``); job outcomes additionally feed the event-based
    metrics (``campaign.jobs_ok`` / ``campaign.jobs_failed`` /
    ``campaign.retries`` counters and the ``campaign.job_ms``
    wall-time histogram). Stack it next to a Text/Jsonl sink with :class:`TeeSink`
    when both human output and telemetry are wanted.
    """

    def __init__(self, obs):
        self.obs = obs

    def emit(self, kind: str, **fields: object) -> None:
        obs = self.obs
        if not obs.enabled:
            return
        obs.event(kind, cat="campaign",
                  **{k: v for k, v in sorted(fields.items())
                     if v is not None})
        if kind == "job-ok":
            obs.counter("campaign.jobs_ok")
            seconds = fields.get("seconds")
            if seconds is not None:
                # histogram buckets are integer-edged: record ms
                obs.observe("campaign.job_ms",
                            int(float(seconds) * 1000))
        elif kind == "job-failed":
            obs.counter("campaign.jobs_failed")
        elif kind == "job-poisoned":
            obs.counter("campaign.jobs_poisoned")
        elif kind == "job-retry":
            obs.counter("campaign.retries")
        elif kind == "job-resumed":
            obs.counter("campaign.jobs_resumed")


class TeeSink(ProgressSink):
    """Fans one event stream out to several sinks, in order."""

    def __init__(self, *sinks: ProgressSink):
        self.sinks = [sink for sink in sinks if sink is not None]

    def emit(self, kind: str, **fields: object) -> None:
        for sink in self.sinks:
            sink.emit(kind, **fields)


def make_sink(
    mode: str = "text",
    stream: Optional[TextIO] = None,
) -> ProgressSink:
    """Build a sink from a CLI-style mode name."""
    if mode == "text":
        return TextSink(stream)
    if mode in ("jsonl", "json"):
        return JsonlSink(stream)
    if mode in ("silent", "null", "none"):
        return NullSink()
    raise ValueError(f"unknown progress mode {mode!r}")

"""Progress reporting — one sink protocol for every runner.

The suite runner used to split progress between a ``verbose`` print and
an optional callback; the campaign engine needs structured events
(job started / finished / retried) as well as plain log lines. Both now
speak to a single :class:`ProgressSink`:

* :class:`TextSink` — human-readable one-liners to a stream;
* :class:`JsonlSink` — one JSON object per event (machine-readable,
  suitable for build logs and dashboards);
* :class:`NullSink` — silence;
* :class:`CallbackSink` — adapts a legacy ``Callable[[str], None]``
  progress callback.

Events are free-form ``(kind, fields)`` pairs; the well-known kinds the
campaign engine emits are documented in ``docs/campaign.md``.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Optional, TextIO


class ProgressSink:
    """Protocol: receives structured progress events.

    Subclasses implement :meth:`emit`. ``kind`` names the event
    (``"log"``, ``"job-start"``, ``"job-ok"``, ``"job-retry"``,
    ``"job-failed"``, ``"campaign-start"``, ``"campaign-end"``) and the
    keyword fields carry its payload.
    """

    def emit(self, kind: str, **fields: object) -> None:
        raise NotImplementedError

    def log(self, message: str) -> None:
        """Convenience wrapper for plain log lines."""
        self.emit("log", message=message)


class NullSink(ProgressSink):
    """Drops every event."""

    def emit(self, kind: str, **fields: object) -> None:
        pass


def _render_text(kind: str, fields: dict) -> str:
    """One human-readable line per event."""
    if kind == "log":
        return str(fields.get("message", ""))
    parts = [kind]
    key = fields.get("key")
    if key is not None:
        parts.append(str(key))
    detail = ", ".join(
        f"{name}={fields[name]}"
        for name in sorted(fields)
        if name not in ("key",) and fields[name] is not None
    )
    if detail:
        parts.append(f"({detail})")
    return " ".join(parts)


class TextSink(ProgressSink):
    """Human-readable progress lines on a stream (default stdout)."""

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream

    def emit(self, kind: str, **fields: object) -> None:
        stream = self.stream if self.stream is not None else sys.stdout
        print(_render_text(kind, fields), file=stream, flush=True)


class JsonlSink(ProgressSink):
    """One JSON object per event, keys sorted for stable output."""

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream

    def emit(self, kind: str, **fields: object) -> None:
        stream = self.stream if self.stream is not None else sys.stdout
        record = dict(fields)
        record["event"] = kind
        print(json.dumps(record, sort_keys=True, default=str),
              file=stream, flush=True)


class CallbackSink(ProgressSink):
    """Adapts the legacy ``progress=callable`` suite-runner argument."""

    def __init__(self, callback: Callable[[str], None]):
        self.callback = callback

    def emit(self, kind: str, **fields: object) -> None:
        self.callback(_render_text(kind, fields))


def make_sink(
    mode: str = "text",
    stream: Optional[TextIO] = None,
) -> ProgressSink:
    """Build a sink from a CLI-style mode name."""
    if mode == "text":
        return TextSink(stream)
    if mode in ("jsonl", "json"):
        return JsonlSink(stream)
    if mode in ("silent", "null", "none"):
        return NullSink()
    raise ValueError(f"unknown progress mode {mode!r}")

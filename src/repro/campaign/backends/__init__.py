"""Pluggable campaign executor backends.

The :class:`~repro.campaign.engine.CampaignRunner` schedules; a
backend places. Three ship in-tree (see docs/distributed.md for the
capability matrix and when to pick which):

* ``fork`` — today's default: one forked child per job attempt, full
  crash isolation, inherits test-registered kinds and fault plans;
* ``subprocess`` — persistent spawn-isolated workers driven over a
  stdio job protocol (the stepping stone to SSH placement);
* ``queue`` — in-process work-stealing threads with per-worker deques
  and steal-on-idle.

Selection is campaign-level only (``Campaign.backend``,
``repro.api.run_campaign(backend=…)``, CLI ``--backend``); per-job
overrides are rejected, and the backend — like ``turbo`` — is
excluded from every cache key, because it must never change canonical
output: merged :class:`~repro.campaign.engine.CampaignResult` bytes
are identical across backends, worker counts, and cache tierings.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.campaign.backends.base import (
    Attempt,
    AttemptOutcome,
    BackendContext,
    ExecutorBackend,
)


def _load_fork() -> type:
    from repro.campaign.backends.fork import ForkBackend

    return ForkBackend


def _load_subprocess() -> type:
    from repro.campaign.backends.stdio import SubprocessBackend

    return SubprocessBackend


def _load_queue() -> type:
    from repro.campaign.backends.queue import QueueBackend

    return QueueBackend


_LOADERS = {
    "fork": _load_fork,
    "subprocess": _load_subprocess,
    "queue": _load_queue,
}

#: Registered backend names, in documentation order.
BACKEND_NAMES: Tuple[str, ...] = ("fork", "subprocess", "queue")

#: The backend used when nothing selects one.
DEFAULT_BACKEND = "fork"


def validate_backend(name: str) -> str:
    """Return *name* if registered, else raise the canonical error."""
    if name not in _LOADERS:
        raise ValueError(
            f"unknown executor backend {name!r}; "
            f"choose from {list(BACKEND_NAMES)}"
        )
    return name


def make_backend(
    backend: Union[str, ExecutorBackend, None],
) -> ExecutorBackend:
    """Build an executor backend from a name (or pass an instance
    through). ``None`` selects :data:`DEFAULT_BACKEND`."""
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, ExecutorBackend):
        return backend
    backend_class = _LOADERS[validate_backend(backend)]()
    return backend_class()


__all__ = [
    "Attempt",
    "AttemptOutcome",
    "BackendContext",
    "ExecutorBackend",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "make_backend",
    "validate_backend",
]

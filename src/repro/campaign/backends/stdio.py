"""The subprocess backend — spawn-isolated stdio workers.

Where the ``fork`` backend relies on address-space inheritance, this
backend drives **fresh interpreters** (``python -m
repro.campaign.backends.stdio_worker``) over a length-framed pickle
protocol on stdin/stdout — the stepping stone to SSH placement: the
job envelope already carries everything a worker on another machine
would need (the :class:`~repro.campaign.jobs.Job`, the
:class:`~repro.campaign.cachedir.StoreSpec`, the active
:class:`~repro.guard.faults.FaultPlan`), and the transport is two byte
pipes that could as well be ``ssh host python -m …``.

Workers are persistent — one spawn amortises over many jobs — and
single-tenant: each runs one job at a time, so a crash (or an injected
chaos kill) costs exactly one attempt; the parent sees the dead pipe,
reports an infrastructure failure for the engine to retry, and
respawns the worker lazily. Timeouts are enforced by killing the
worker.

Because workers are spawn-isolated, they see only importable state:
job kinds registered by the parent process at runtime (tests do this)
do not exist in the worker and fail deterministically as unknown
kinds; the installed fault plan IS shipped, in the envelope. See
docs/distributed.md for the full capability matrix.

Wire format: 4-byte big-endian length + pickle, both directions.
Request (protocol v3): ``{"v": 3, "job": Job, "store": StoreSpec,
"plan": FaultPlan|None, "telemetry": TelemetrySpec|None, "attempt":
int, "heartbeat": float|None}``. ``telemetry`` (present and non-None
only when the parent observer is live — the zero-overhead contract)
makes the worker collect its own deep telemetry and attach the blob
to the response. ``heartbeat`` (v3; set when the engine supervises
with ``hang_after``) makes the worker interleave
:class:`~repro.campaign.supervise.Heartbeat` frames with the result
at that period, so the parent can tell a *hung* worker — silent
beyond the budget, killed with a ``worker hung`` failure — from a
slow one, distinctly from deadline expiry. Response: a
:class:`~repro.campaign.jobs.JobResult` (with ``.telemetry`` set when
collection was requested), possibly preceded by heartbeat frames.
Parent and worker always ship together, so the version key is a
debugging aid, not a negotiation.
"""

from __future__ import annotations

import os
import pickle
import selectors
import struct
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.backends.base import (
    Attempt,
    AttemptOutcome,
    BackendContext,
    ExecutorBackend,
)
from repro.campaign.supervise import Heartbeat, heartbeat_interval
from repro.guard import faults

#: Envelope protocol version (v2 added telemetry + attempt keys; v3
#: added the heartbeat key and heartbeat response frames).
PROTOCOL_VERSION = 3

#: struct format of the frame-length prefix.
LENGTH_PREFIX = ">I"
_PREFIX_SIZE = struct.calcsize(LENGTH_PREFIX)

WORKER_MODULE = "repro.campaign.backends.stdio_worker"


def write_frame(stream, payload: object) -> None:
    """Pickle *payload* and write one length-prefixed frame."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(struct.pack(LENGTH_PREFIX, len(data)) + data)
    stream.flush()


def read_frame(stream) -> object:
    """Read one frame; raises EOFError on a closed/short stream."""
    prefix = stream.read(_PREFIX_SIZE)
    if len(prefix) != _PREFIX_SIZE:
        raise EOFError("stream closed before frame length")
    (length,) = struct.unpack(LENGTH_PREFIX, prefix)
    chunks = []
    remaining = length
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError("stream closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return pickle.loads(b"".join(chunks))


@dataclass
class _Worker:
    """One spawned interpreter and the attempt it is running."""

    process: subprocess.Popen
    attempt: Optional[Attempt] = None
    #: Monotonic time of the last liveness signal (dispatch, or the
    #: most recent heartbeat frame).
    last_beat: float = 0.0

    @property
    def idle(self) -> bool:
        return self.attempt is None


class SubprocessBackend(ExecutorBackend):
    """Persistent spawn-isolated workers over a stdio job protocol."""

    name = "subprocess"

    def __init__(self) -> None:
        self._context: Optional[BackendContext] = None
        self._workers: List[_Worker] = []
        self._counters: Dict[str, int] = {
            "spawns": 0, "respawns": 0, "dispatches": 0,
            "crashes": 0, "timeouts": 0, "hangs": 0,
        }

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self) -> _Worker:
        # A spawned interpreter must find the repro package the same
        # way this process does, venv or source tree alike.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [path for path in sys.path if path]
        )
        process = subprocess.Popen(
            [sys.executable, "-m", WORKER_MODULE],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=env,
        )
        self._counters["spawns"] += 1
        worker = _Worker(process=process)
        self._workers.append(worker)
        return worker

    def _retire(self, worker: _Worker, kill: bool = False) -> None:
        self._workers.remove(worker)
        if kill and worker.process.poll() is None:
            worker.process.kill()
        for stream in (worker.process.stdin, worker.process.stdout):
            try:
                stream.close()
            except OSError:  # pragma: no cover - broken pipe on close
                pass
        worker.process.wait()

    # -- ExecutorBackend ------------------------------------------------

    def start(self, context: BackendContext) -> None:
        self._context = context

    def capacity(self) -> int:
        return self._context.workers

    def active(self) -> int:
        return sum(1 for worker in self._workers if not worker.idle)

    def submit(self, attempt: Attempt) -> None:
        worker = next((w for w in self._workers
                       if w.idle and w.process.poll() is None), None)
        if worker is None:
            if any(w.idle for w in self._workers):
                # An idle worker died between jobs; replace it.
                for dead in [w for w in self._workers
                             if w.idle and w.process.poll() is not None]:
                    self._retire(dead)
                self._counters["respawns"] += 1
            worker = self._spawn()
        envelope = {
            "v": PROTOCOL_VERSION,
            "job": attempt.job,
            "store": self._context.store_spec,
            "plan": faults.active_plan(),
            "telemetry": self._context.telemetry,
            "attempt": attempt.attempt,
            "heartbeat": heartbeat_interval(self._context.hang_after),
        }
        worker.attempt = attempt
        worker.last_beat = time.monotonic()  # repro-lint: disable=det/time-dependent
        self._counters["dispatches"] += 1
        try:
            write_frame(worker.process.stdin, envelope)
        except (OSError, ValueError):
            # Dead on arrival: reap() will see the closed stdout and
            # report the infrastructure failure for this attempt.
            pass

    def wait(self, timeout: Optional[float]) -> None:
        busy = [w for w in self._workers if not w.idle]
        if not busy:
            if timeout:
                time.sleep(timeout)
            return
        selector = selectors.DefaultSelector()
        try:
            for worker in busy:
                selector.register(worker.process.stdout,
                                  selectors.EVENT_READ)
            selector.select(timeout)
        finally:
            selector.close()

    def reap(self, now: float) -> List[AttemptOutcome]:
        outcomes: List[AttemptOutcome] = []
        selector = selectors.DefaultSelector()
        ready = set()
        try:
            busy = [w for w in self._workers if not w.idle]
            for worker in busy:
                selector.register(worker.process.stdout,
                                  selectors.EVENT_READ, worker)
            for key, _ in selector.select(0):
                ready.add(key.data.process.pid)
        finally:
            selector.close()

        for worker in list(self._workers):
            if worker.idle:
                continue
            attempt = worker.attempt
            pid = worker.process.pid
            deadline = attempt.deadline
            if pid in ready:
                # The worker is writing (or died); a blocking framed
                # read either completes quickly or hits EOF. A
                # heartbeat frame just refreshes the liveness clock —
                # the result follows on a later reap.
                try:
                    result = read_frame(worker.process.stdout)
                except (EOFError, OSError, pickle.UnpicklingError):
                    code = worker.process.poll()
                    self._counters["crashes"] += 1
                    self._retire(worker, kill=True)
                    outcomes.append(AttemptOutcome(
                        attempt=attempt,
                        failure=f"worker crashed (exit code {code})",
                        failure_kind="crash", worker=pid,
                    ))
                    continue
                if isinstance(result, Heartbeat):
                    worker.last_beat = now
                    continue
                worker.attempt = None
                outcomes.append(AttemptOutcome(
                    attempt=attempt, result=result, worker=pid,
                ))
            elif worker.process.poll() is not None:
                code = worker.process.poll()
                self._counters["crashes"] += 1
                self._retire(worker)
                outcomes.append(AttemptOutcome(
                    attempt=attempt,
                    failure=f"worker crashed (exit code {code})",
                    failure_kind="crash", worker=pid,
                ))
            elif deadline is not None and now >= deadline:
                self._counters["timeouts"] += 1
                self._retire(worker, kill=True)
                outcomes.append(AttemptOutcome(
                    attempt=attempt,
                    failure=("timed out after "
                             f"{self._context.timeout}s"),
                    failure_kind="timeout", worker=pid,
                ))
            elif (self._context.hang_after is not None
                    and now - worker.last_beat
                    >= self._context.hang_after):
                self._counters["hangs"] += 1
                self._retire(worker, kill=True)
                outcomes.append(AttemptOutcome(
                    attempt=attempt,
                    failure=(f"worker hung (no heartbeat for "
                             f"{self._context.hang_after}s)"),
                    failure_kind="hang", worker=pid,
                ))
        return outcomes

    def shutdown(self) -> None:
        for worker in list(self._workers):
            if worker.idle and worker.process.poll() is None:
                # Polite EOF lets an idle worker exit cleanly.
                try:
                    worker.process.stdin.close()
                except OSError:  # pragma: no cover
                    pass
                try:
                    worker.process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    worker.process.kill()
                    worker.process.wait()
                worker.process.stdout.close()
                self._workers.remove(worker)
            else:
                self._retire(worker, kill=True)

    def metrics(self) -> Dict[str, int]:
        return dict(self._counters)

"""The fork backend — one forked child process per job attempt.

This is the original campaign executor, extracted behind the
:class:`~repro.campaign.backends.base.ExecutorBackend` boundary. One
worker process runs one job and exits: that costs a ``fork`` per job
(cheap on the platforms this targets) and buys full crash isolation —
a dying worker fails one attempt, never the run — plus free
inheritance of parent-process state (test-registered job kinds, an
installed :class:`~repro.guard.faults.FaultPlan`). Warm state lives on
disk in the shared cache store, not in worker memory, so it survives
worker recycling and entire campaigns.

Capabilities: process isolation, hard timeout enforcement (terminate),
crash retry, plan/kind inheritance, heartbeat hang detection. When the
engine sets a ``hang_after`` budget, each child interleaves
:data:`~repro.campaign.supervise.HEARTBEAT` sentinels with its result
on the same pipe; a child silent for longer than the budget is
presumed wedged (not merely slow — a slow child still beats) and is
terminated with a ``worker hung`` failure, distinct from deadline
expiry. See docs/distributed.md and docs/robustness.md.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.campaign.backends.base import (
    Attempt,
    AttemptOutcome,
    BackendContext,
    ExecutorBackend,
)
from repro.campaign.supervise import Heartbeat, heartbeat_interval
from repro.campaign.worker import child_main


@dataclass
class _Slot:
    """One live worker process and the attempt it owns."""

    attempt: Attempt
    process: multiprocessing.Process
    connection: object
    #: Monotonic time of the last liveness signal (submit, or the most
    #: recent heartbeat drained from the pipe).
    last_beat: float = 0.0


class ForkBackend(ExecutorBackend):
    """Today's default: per-attempt forked workers over pipes."""

    name = "fork"

    def __init__(self) -> None:
        self._context: Optional[BackendContext] = None
        self._slots: List[_Slot] = []
        self._counters: Dict[str, int] = {"forks": 0, "crashes": 0,
                                          "timeouts": 0, "hangs": 0}

    def start(self, context: BackendContext) -> None:
        self._context = context
        mp_context = context.mp_context
        if mp_context is None:
            # fork keeps test-registered job kinds (and any installed
            # fault plan) visible in workers and makes per-job process
            # spawn cheap.
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                mp_context = multiprocessing.get_context()
        self._mp = mp_context

    def capacity(self) -> int:
        return self._context.workers

    def active(self) -> int:
        return len(self._slots)

    def submit(self, attempt: Attempt) -> None:
        receiver, sender = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=child_main,
            args=(sender, attempt.job, self._context.store_spec,
                  self._context.telemetry, attempt.attempt,
                  heartbeat_interval(self._context.hang_after)),
        )
        process.start()
        sender.close()
        self._counters["forks"] += 1
        self._slots.append(_Slot(
            attempt=attempt, process=process, connection=receiver,
            last_beat=time.monotonic(),  # repro-lint: disable=det/time-dependent
        ))

    def wait(self, timeout: Optional[float]) -> None:
        if self._slots:
            # timeout=None blocks until a worker sends a result or dies
            # (its pipe end closing makes the connection ready).
            multiprocessing.connection.wait(
                [slot.connection for slot in self._slots],
                timeout=timeout,
            )
        elif timeout:
            time.sleep(timeout)

    def reap(self, now: float) -> List[AttemptOutcome]:
        outcomes: List[AttemptOutcome] = []
        hang_after = self._context.hang_after
        for slot in list(self._slots):
            result = None
            failure = None
            kind = None
            deadline = slot.attempt.deadline
            # Drain heartbeats interleaved ahead of the result on the
            # same pipe; each one refreshes the slot's liveness clock.
            while result is None and failure is None \
                    and slot.connection.poll():
                try:
                    payload = slot.connection.recv()
                except (EOFError, OSError):
                    failure = "worker died mid-result"
                    kind = "crash"
                    self._counters["crashes"] += 1
                    break
                if isinstance(payload, Heartbeat):
                    slot.last_beat = now
                    continue
                result = payload
            if result is None and failure is None:
                if not slot.process.is_alive():
                    code = slot.process.exitcode
                    failure = f"worker crashed (exit code {code})"
                    kind = "crash"
                    self._counters["crashes"] += 1
                elif deadline is not None and now >= deadline:
                    slot.process.terminate()
                    self._counters["timeouts"] += 1
                    failure = f"timed out after {self._context.timeout}s"
                    kind = "timeout"
                elif (hang_after is not None
                        and now - slot.last_beat >= hang_after):
                    slot.process.terminate()
                    self._counters["hangs"] += 1
                    failure = (f"worker hung (no heartbeat for "
                               f"{hang_after}s)")
                    kind = "hang"
                else:
                    continue  # still running

            self._slots.remove(slot)
            slot.process.join()
            slot.connection.close()
            outcomes.append(AttemptOutcome(
                attempt=slot.attempt, result=result, failure=failure,
                failure_kind=kind, worker=slot.process.pid,
            ))
        return outcomes

    def shutdown(self) -> None:
        for slot in self._slots:  # pragma: no cover - interrupt path
            slot.process.terminate()
            slot.process.join()
            slot.connection.close()
        self._slots = []

    def metrics(self) -> Dict[str, int]:
        return dict(self._counters)

"""The executor boundary — where campaign scheduling meets placement.

The :class:`~repro.campaign.engine.CampaignRunner` owns *policy*:
campaign order, retry budgets, backoff, deadline arithmetic, result
merging, progress events. An :class:`ExecutorBackend` owns *mechanism*:
where an attempt physically runs (a forked child, a spawn-isolated
stdio worker, a work-stealing thread) and how its outcome gets back.
Keeping the split here is what lets one declarative
:class:`~repro.campaign.engine.Campaign` fan out over any placement
while the merged canonical output stays byte-identical — the backend
never sees (and so can never reorder, drop, or mutate) the merge.

The engine drives a backend through a strict lifecycle::

    backend.start(context)
    while work remains:
        while backend.active() < backend.capacity() and ready jobs:
            backend.submit(Attempt(...))
        backend.wait(timeout)          # block until progress is possible
        for done in backend.reap(now): # completed / crashed / timed out
            ...retry or record...
    backend.shutdown()

Every attempt comes back exactly once, as an :class:`AttemptOutcome`:
either a :class:`~repro.campaign.jobs.JobResult` (including
deterministic failures — the executor raised) or an *infrastructure*
failure string (worker death, timeout), which is the engine's cue to
retry. Backends report host-side mechanism metrics (forks, respawns,
steals) through :meth:`ExecutorBackend.metrics`; these are
diagnostics, never part of canonical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.cachedir import StoreSpec
from repro.campaign.jobs import Job, JobResult


@dataclass(frozen=True)
class Attempt:
    """One scheduled execution attempt of one campaign job."""

    index: int  #: Position of the job in the campaign (merge order).
    job: Job
    attempt: int  #: 1-based attempt number (retries increment it).
    #: Absolute ``time.monotonic()`` deadline, or None for no timeout.
    #: Process-based backends enforce it preemptively (terminate /
    #: kill); the ``queue`` backend enforces it cooperatively —
    #: expired queued attempts are failed without running, expired
    #: running attempts are abandoned and their worker replaced (see
    #: docs/distributed.md's capability matrix).
    deadline: Optional[float] = None


@dataclass
class AttemptOutcome:
    """What became of one attempt — a result or an infra failure."""

    attempt: Attempt
    #: The job's result (ok *or* deterministic failure), when the
    #: attempt ran to completion.
    result: Optional[JobResult] = None
    #: Infrastructure failure description (worker crash, timeout) when
    #: ``result`` is None; the engine retries these.
    failure: Optional[str] = None
    #: Classification of an infrastructure failure: ``"crash"`` /
    #: ``"timeout"`` / ``"hang"``. Crashes feed the engine's
    #: poison-job quarantine; the distinction also keeps hang
    #: detection separate from deadline expiry in events and metrics.
    failure_kind: Optional[str] = None
    #: Host-side identity of the worker that ran the attempt (pid,
    #: thread label) — progress-event colour, never canonical.
    worker: Optional[object] = None


@dataclass
class BackendContext:
    """Everything a backend may need at :meth:`ExecutorBackend.start`."""

    workers: int
    store_spec: StoreSpec = field(default_factory=StoreSpec)
    #: The engine's per-job timeout (seconds) — backends that enforce
    #: deadlines use it to phrase the failure; None means no timeout.
    timeout: Optional[float] = None
    obs: object = None
    sink: object = None
    #: Multiprocessing context (fork where available); process-based
    #: backends take their Process/Pipe primitives from here so tests
    #: can substitute.
    mp_context: object = None
    #: Worker-side telemetry recipe
    #: (:class:`~repro.obs.worker.TelemetrySpec`) the backend ships to
    #: each attempt, or None when observability is off — the
    #: zero-overhead contract: backends test this once per submit and
    #: put nothing in the envelope when it is None.
    telemetry: object = None
    #: Supervisor hang budget (seconds): a worker silent for longer —
    #: no heartbeat on its result channel (fork/subprocess), no
    #: completion since dispatch (queue) — is presumed hung and
    #: replaced. None disables hang detection (the default).
    hang_after: Optional[float] = None


class ExecutorBackend:
    """Protocol: executes attempts somewhere, reports outcomes once.

    Subclasses implement the six methods below; see the module
    docstring for the driving loop and docs/distributed.md for the
    capability matrix (isolation, timeout enforcement, crash retry)
    of the built-in ``fork`` / ``subprocess`` / ``queue`` backends.
    """

    #: Registry name (``fork`` / ``subprocess`` / ``queue``).
    name: str = "?"

    def start(self, context: BackendContext) -> None:
        raise NotImplementedError

    def capacity(self) -> int:
        """Max attempts this backend wants in flight at once."""
        raise NotImplementedError

    def active(self) -> int:
        """Attempts currently submitted and not yet reaped."""
        raise NotImplementedError

    def submit(self, attempt: Attempt) -> None:
        raise NotImplementedError

    def wait(self, timeout: Optional[float]) -> None:
        """Block until an outcome may be available (or *timeout*)."""
        raise NotImplementedError

    def reap(self, now: float) -> List[AttemptOutcome]:
        """Outcomes completed since the last call (may be empty).

        *now* is the engine's ``time.monotonic()`` reading; backends
        that enforce deadlines compare it against each in-flight
        attempt's :attr:`Attempt.deadline`.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Tear down workers; in-flight attempts may be abandoned."""
        raise NotImplementedError

    def metrics(self) -> Dict[str, int]:
        """Host-side mechanism counters (sorted-key rendered)."""
        return {}

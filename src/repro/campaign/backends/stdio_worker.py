"""Worker-side main loop of the subprocess backend's stdio protocol.

Run as ``python -m repro.campaign.backends.stdio_worker`` by
:class:`~repro.campaign.backends.stdio.SubprocessBackend`. Reads
length-framed pickled job envelopes from stdin, executes each through
:func:`repro.campaign.worker.execute_job` (the same single code path
every other backend drives — that sameness is the byte-identity
invariant's foundation), and writes the framed
:class:`~repro.campaign.jobs.JobResult` back on the *protocol* stream.

The protocol stream is a private dup of fd 1 taken at startup;
``sys.stdout`` is then rebound onto stderr so stray prints from job
code can never corrupt a frame. EOF on stdin is the clean shutdown
signal. An envelope's :class:`~repro.guard.faults.FaultPlan` (chaos
drills) is installed before the job runs — spawn isolation means
nothing is inherited, so everything arrives in the envelope — and an
installed plan's crash injection may ``os._exit`` this process, which
the parent observes as a dead pipe and retries.

When an envelope carries a ``heartbeat`` interval (protocol v3; set
when the engine supervises with ``hang_after``), a daemon thread
interleaves :data:`~repro.campaign.supervise.HEARTBEAT` frames with
the result on the protocol stream — under a shared write lock, so a
beat can never corrupt the result frame. The thread consults
:func:`~repro.guard.faults.hang_active` so an injected hang silences
the beats too (otherwise a wedged job with a healthy beat thread would
look alive forever).
"""

from __future__ import annotations

import os
import sys
import threading


def main() -> int:
    # Capture the protocol stream, then point fd 1 (and sys.stdout) at
    # stderr so job-side prints cannot interleave with frames.
    protocol_out = os.fdopen(os.dup(sys.stdout.fileno()), "wb")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    sys.stdout = sys.stderr
    protocol_in = os.fdopen(os.dup(sys.stdin.fileno()), "rb")

    from repro.campaign.backends.stdio import read_frame, write_frame
    from repro.campaign.jobs import JobResult
    from repro.campaign.supervise import HEARTBEAT
    from repro.campaign.worker import execute_attempt
    from repro.guard import faults

    write_lock = threading.Lock()

    def _beat(interval: float, stop: threading.Event) -> None:
        while not stop.wait(interval):
            if faults.hang_active():
                continue  # an injected hang must look hung
            try:
                with write_lock:
                    write_frame(protocol_out, HEARTBEAT)
            except (OSError, ValueError):  # parent gone; job thread
                return  # will hit the same wall on its result frame

    while True:
        try:
            envelope = read_frame(protocol_in)
        except EOFError:
            return 0
        job = envelope["job"]
        plan = envelope.get("plan")
        if plan is not None:
            faults.install_plan(plan)
        else:
            faults.clear_plan()
        interval = envelope.get("heartbeat")
        stop = threading.Event()
        beater = None
        if interval is not None:
            beater = threading.Thread(target=_beat,
                                      args=(interval, stop), daemon=True)
            beater.start()
        try:
            # Protocol v2 keys; absent on a v1 parent, and None unless
            # the parent observer is live (the zero-overhead contract).
            result = execute_attempt(
                job, envelope["store"],
                telemetry=envelope.get("telemetry"),
                worker=f"spawn-{os.getpid()}",
                attempt=envelope.get("attempt", 1),
            )
        except BaseException as exc:  # the frame must go out or the
            # parent treats this worker as crashed — report what we can.
            result = JobResult(
                job=job, status="failed",
                error=f"worker error: {type(exc).__name__}: {exc}",
            )
        finally:
            stop.set()
            if beater is not None:
                beater.join(timeout=1.0)
        try:
            with write_lock:
                write_frame(protocol_out, result)
        except BrokenPipeError:
            # Parent died (e.g. the chaos drill SIGKILLs the engine
            # mid-campaign). Nothing to report to and nobody reaping —
            # exit quietly rather than tracebacking to stderr.
            return 1


if __name__ == "__main__":
    sys.exit(main())

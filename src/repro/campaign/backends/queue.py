"""The queue backend — in-process work-stealing worker threads.

Each worker thread owns a deque of attempts. Submission deals
round-robin onto the owners' deques; a worker takes work from the
*front* of its own deque and, when that runs dry, **steals from the
back** of the busiest sibling's deque — the classic split that keeps
owner and thief off the same end. One slow job therefore never strands
the attempts queued behind it: idle siblings drain them
(``tests/campaign/test_backends.py`` proves it with a deliberately
starved schedule, and the ``steals`` counter in
:meth:`QueueBackend.metrics` / the ``backend.queue.steals`` obs
counter make theft visible).

Running in-process buys zero serialization and zero spawn cost, and
makes the backend the natural host for future same-address-space
executors; the costs are the GIL (threads interleave rather than
parallelise pure-Python simulation) and no *hard* preemption — there
is no thread kill in CPython, and a crash-style ``os._exit`` would
take the whole campaign with it, which is why chaos drills refuse
this backend for the crash injection. Deterministic failures are
unaffected: :func:`~repro.campaign.worker.execute_job` never raises,
so every attempt produces exactly one outcome.

Deadlines are enforced **cooperatively**: the worker loop checks each
attempt's deadline before starting it (an attempt that expired while
queued fails without running), and the engine-driven :meth:`reap`
sweep abandons a *running* attempt whose deadline has passed — the
timed-out outcome is reported immediately, the stuck thread's
eventual result is discarded, and a replacement worker thread takes
over the lane. The same sweep implements hang detection when the
supervisor's ``hang_after`` budget is set: with no heartbeat channel
out of a thread, "no completion since dispatch" is the (coarse)
liveness signal, so only set ``hang_after`` comfortably above the
longest legitimate job. Abandoned threads are daemons; they exit on
completion and can never report a stale outcome (a per-dispatch token
invalidates them).

The byte-identity invariant holds because each attempt builds its own
simulator over its own store handle and the engine merges by campaign
index; completion order — scrambled by stealing — is invisible in
canonical output.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Deque, Dict, List, Optional, Tuple

from repro.campaign.backends.base import (
    Attempt,
    AttemptOutcome,
    BackendContext,
    ExecutorBackend,
)
from repro.campaign.worker import execute_attempt


class QueueBackend(ExecutorBackend):
    """Work-stealing thread pool with per-worker deques."""

    name = "queue"

    #: Effectively-unbounded capacity: the whole ready set is dealt to
    #: the deques at once so stealing has something to steal.
    UNBOUNDED = 1 << 30

    def __init__(self) -> None:
        self._context: Optional[BackendContext] = None
        self._threads: List[threading.Thread] = []
        self._deques: List[Deque[Attempt]] = []
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._done = threading.Condition(self._lock)
        self._completed: List[AttemptOutcome] = []
        self._active = 0
        self._stopping = False
        self._deal_cursor = 0
        #: worker index -> (attempt, started, token) while executing.
        self._running: Dict[int, Tuple[Attempt, float, int]] = {}
        #: Dispatch tokens whose outcome the supervisor already
        #: reported (deadline/hang); the owning thread discards its
        #: result and exits when it sees its token here.
        self._abandoned: set = set()
        self._token = 0
        self._counters: Dict[str, int] = {"dispatches": 0, "steals": 0,
                                          "timeouts": 0, "hangs": 0,
                                          "abandoned": 0}

    # -- worker threads -------------------------------------------------

    def _take(self, mine: int) -> Optional[Attempt]:
        """Next attempt for worker *mine*: own front, else steal.

        Caller holds the lock. Victim choice is the longest sibling
        deque (ties to the lowest index) — steady under any schedule.
        """
        if self._deques[mine]:
            return self._deques[mine].popleft()
        victim = None
        for index, deque in enumerate(self._deques):
            if index != mine and deque:
                if victim is None or len(deque) > len(self._deques[victim]):
                    victim = index
        if victim is None:
            return None
        # The internal counter is the single source of truth; the
        # engine mirrors backend counters into obs after shutdown, so
        # metrics() and the `backend.queue.steals` obs counter can
        # never disagree (they used to: the obs bump here only ran
        # with obs enabled).
        self._counters["steals"] += 1
        return self._deques[victim].pop()

    def _worker(self, mine: int) -> None:
        context = self._context
        while True:
            with self._lock:
                attempt = self._take(mine)
                while attempt is None and not self._stopping:
                    self._work_ready.wait()
                    attempt = self._take(mine)
                if attempt is None:
                    return
                now = time.monotonic()  # repro-lint: disable=det/time-dependent
                if (attempt.deadline is not None
                        and now >= attempt.deadline):
                    # Cooperative deadline check in the worker loop:
                    # the attempt expired while queued, so fail it
                    # without running it.
                    self._fail_locked(attempt, mine, "timeout")
                    continue
                self._token += 1
                token = self._token
                self._running[mine] = (attempt, now, token)
            # execute_attempt never raises; exceptions become failed
            # JobResults (deterministic failures, not retried). Each
            # attempt builds its own store handle (and, when observed,
            # its own local collector shipped back on the result).
            result = execute_attempt(
                attempt.job, context.store_spec,
                telemetry=context.telemetry,
                worker=f"queue-{mine}", attempt=attempt.attempt,
            )
            with self._lock:
                if token in self._abandoned:
                    # The supervisor timed this attempt out (or called
                    # it hung) and already reported the outcome and
                    # replaced this lane; the stale result must not
                    # surface twice.
                    self._abandoned.discard(token)
                    return
                self._running.pop(mine, None)
                self._active -= 1
                self._completed.append(AttemptOutcome(
                    attempt=attempt, result=result,
                    worker=f"queue-{mine}",
                ))
                self._done.notify_all()

    def _fail_locked(self, attempt: Attempt, mine: int,
                     kind: str) -> None:
        """Report an infra failure for *attempt* (lock held)."""
        if kind == "timeout":
            failure = f"timed out after {self._context.timeout}s"
        else:
            failure = (f"worker hung (no progress for "
                       f"{self._context.hang_after}s)")
        self._counters["timeouts" if kind == "timeout" else "hangs"] += 1
        self._active -= 1
        self._completed.append(AttemptOutcome(
            attempt=attempt, failure=failure, failure_kind=kind,
            worker=f"queue-{mine}",
        ))
        self._done.notify_all()

    # -- ExecutorBackend ------------------------------------------------

    def start(self, context: BackendContext) -> None:
        self._context = context
        for index in range(context.workers):
            self._deques.append(collections.deque())
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        """(Re)start the worker thread owning lane *index*."""
        thread = threading.Thread(
            target=self._worker, args=(index,),
            name=f"campaign-queue-{index}", daemon=True,
        )
        if index < len(self._threads):
            self._threads[index] = thread
        else:
            self._threads.append(thread)
        thread.start()

    def capacity(self) -> int:
        return self.UNBOUNDED

    def active(self) -> int:
        with self._lock:
            return self._active

    def submit(self, attempt: Attempt) -> None:
        with self._lock:
            owner = self._deal_cursor % len(self._deques)
            self._deal_cursor += 1
            self._deques[owner].append(attempt)
            self._active += 1
            self._counters["dispatches"] += 1
            self._work_ready.notify_all()

    def wait(self, timeout: Optional[float]) -> None:
        with self._lock:
            if not self._completed:
                # Doubles as the backoff sleep when nothing is active:
                # no completion will arrive, so the wait just times out.
                self._done.wait(timeout)

    def reap(self, now: float) -> List[AttemptOutcome]:
        with self._lock:
            hang_after = self._context.hang_after
            # Cooperative deadlines, queued half: attempts that expired
            # while waiting in a deque fail without ever running.
            for mine, deque in enumerate(self._deques):
                if not deque:
                    continue
                expired = [attempt for attempt in deque
                           if attempt.deadline is not None
                           and now >= attempt.deadline]
                if not expired:
                    continue
                keep = [attempt for attempt in deque
                        if attempt not in expired]
                deque.clear()
                deque.extend(keep)
                for attempt in expired:
                    self._fail_locked(attempt, mine, "timeout")
            # Running half: abandon a worker past its attempt's
            # deadline (or silent past the hang budget), report the
            # failure now, and hand the lane to a fresh thread. The
            # stuck thread's eventual result dies on its token.
            for mine in list(self._running):
                attempt, started, token = self._running[mine]
                kind = None
                if (attempt.deadline is not None
                        and now >= attempt.deadline):
                    kind = "timeout"
                elif (hang_after is not None
                        and now - started >= hang_after):
                    kind = "hang"
                if kind is None:
                    continue
                del self._running[mine]
                self._abandoned.add(token)
                self._counters["abandoned"] += 1
                self._fail_locked(attempt, mine, kind)
                self._spawn(mine)
            outcomes = self._completed
            self._completed = []
        return outcomes

    def shutdown(self) -> None:
        with self._lock:
            self._stopping = True
            for deque in self._deques:
                deque.clear()
            self._work_ready.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []

    def metrics(self) -> Dict[str, int]:
        return dict(self._counters)

"""Campaign job model — declarative units of simulation work.

A :class:`Job` names one measurement: workload × simulator × scale,
optionally under non-default :class:`ProcessorParams` (labelled by
``variant``) or a bounded-cache :class:`PolicySpec`. Jobs are frozen,
picklable, and carry a deterministic string :attr:`Job.key` so merged
campaign output can be keyed and ordered independently of completion
order.

A :class:`JobResult` is what comes back: the simulation's
:class:`~repro.sim.results.SimulationResult` (or a :class:`NativeRun`
for functional-execution timing jobs), retry/wall-time metrics, and a
:meth:`JobResult.canonical` view that contains **only**
host-independent fields — the payload the bit-identical invariant is
asserted over (host seconds, retry counts, and memoization hit rates
legitimately differ between runs and live in
:meth:`JobResult.metrics_record` instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memo.policies import ReplacementPolicy, make_policy
from repro.obs.schema import JOB_METRICS_SCHEMA, SCHEMA_KEY
from repro.sim.results import SimulationResult
from repro.uarch.params import ProcessorParams

#: Simulator names a job may request. ``native`` times plain
#: functional execution (the paper's "original program" row).
SIMULATORS = ("fast", "slow", "baseline", "native")

_POLICY_KINDS = ("flush", "copying-gc", "generational-gc")


@dataclass
class NativeRun:
    """Plain functional execution — the 'original program' row."""

    seconds: float
    instructions: int
    output: List[int]


@dataclass(frozen=True)
class PolicySpec:
    """Declarative replacement policy: picklable, key-stable.

    Campaign jobs cross process boundaries, so they carry the *recipe*
    for a policy rather than a stateful policy object; the worker
    builds the instance and reports its statistics (collections,
    survival rates) back through ``JobResult.metrics``.
    """

    kind: str  #: "flush" | "copying-gc" | "generational-gc"
    limit_bytes: int

    def __post_init__(self) -> None:
        if self.kind not in _POLICY_KINDS:
            raise ValueError(
                f"unknown policy kind {self.kind!r}; "
                f"choose from {sorted(_POLICY_KINDS)}"
            )
        if self.limit_bytes <= 0:
            raise ValueError("policy limit must be positive")

    @property
    def token(self) -> str:
        """Key fragment, e.g. ``flush@4096``."""
        return f"{self.kind}@{self.limit_bytes}"

    def build(self) -> ReplacementPolicy:
        """Instantiate the policy for one run."""
        return make_policy(self.kind, self.limit_bytes)


@dataclass(frozen=True)
class Job:
    """One schedulable measurement in a campaign."""

    workload: str
    simulator: str = "fast"
    scale: str = "test"
    params: Optional[ProcessorParams] = None
    policy: Optional[PolicySpec] = None
    #: Label distinguishing jobs that differ only in ``params``
    #: (architecture sweeps); part of the key.
    variant: str = ""
    #: Executor registered in :mod:`repro.campaign.worker`. The default
    #: runs a simulator; tests register fault-injecting kinds.
    kind: str = "simulate"
    #: Online replay auditing (``fast`` jobs only): sample every Nth
    #: replay episode through :class:`repro.guard.engine.GuardedEngine`.
    #: None disables guarding. Deliberately **not** part of the key:
    #: auditing must never change canonical results, so a guarded and
    #: an unguarded run of the same coordinates are the same
    #: measurement.
    audit_every: Optional[int] = None
    audit_seed: int = 0
    #: Chain compilation of hot replay paths (``fast`` jobs only):
    #: True (the default) compiles action chains traversed more than a
    #: threshold number of times (:mod:`repro.memo.compile`), False
    #: forces the interpreted replay loop. ``turbo_threshold``
    #: overrides the compile threshold. Like ``audit_every``,
    #: deliberately **not** part of the key: compilation must never
    #: change canonical results, so a compiled and an interpreted run
    #: of the same coordinates are the same measurement.
    turbo: bool = True
    turbo_threshold: Optional[int] = None
    #: Host-side speed layers (``fast`` jobs only): threaded-code
    #: dispatch in the speculative frontend and the direct-mapped L1
    #: filter in the memory hierarchy. Both on by default; exposed for
    #: ablation benchmarks. Like ``turbo``, deliberately **not** part
    #: of the key — neither may ever change canonical results.
    threaded_frontend: bool = True
    l1_filter: bool = True
    #: Always None. The executor backend is a campaign-level placement
    #: decision (:attr:`repro.campaign.engine.Campaign.backend`), never
    #: a per-job one: jobs are the unit of *measurement*, backends the
    #: unit of *mechanism*, and letting them mix would invite cache
    #: keys (and canonical output) to vary with placement. The field
    #: exists only to catch the mistake with a clear error.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind == "simulate" and self.simulator not in SIMULATORS:
            raise ValueError(
                f"unknown simulator {self.simulator!r}; "
                f"choose from {SIMULATORS}"
            )
        if self.backend is not None:
            raise ValueError(
                "backend is a campaign-level setting, not a per-job "
                "override: pass Campaign(backend=...) / "
                "run_campaign(backend=...) / --backend instead"
            )

    @property
    def key(self) -> str:
        """Deterministic identity used for merging and caching results.

        ``params`` is deliberately not folded into the key — jobs with
        non-default parameters must carry a distinguishing ``variant``
        label (campaign construction enforces key uniqueness).
        """
        parts = [self.workload, self.simulator, self.scale]
        if self.variant:
            parts.append(self.variant)
        if self.policy is not None:
            parts.append(self.policy.token)
        return ":".join(parts)


@dataclass
class JobResult:
    """Outcome of one job, including retry and timing metrics."""

    job: Job
    status: str  #: "ok" | "failed" | "cancelled" | "poisoned"
    attempts: int = 1
    #: Wall-clock seconds of the successful attempt's execution.
    host_seconds: float = 0.0
    result: Optional[SimulationResult] = None
    native: Optional[NativeRun] = None
    error: Optional[str] = None
    #: Kind-specific extras (policy collections, survival rates, …).
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Lane label of the worker that produced the final attempt
    #: (``fork-<pid>`` / ``spawn-<pid>`` / ``queue-<i>``) — host-side
    #: identity for metrics and traces, never canonical.
    worker: Optional[str] = None
    #: In-transit worker telemetry blob
    #: (``repro.obs/worker-telemetry/v1``, see :mod:`repro.obs.worker`).
    #: Set by observed workers, popped off by the engine at collect
    #: time and merged into the campaign observer — it never reaches
    #: :meth:`canonical` or :meth:`metrics_record`, and stays None
    #: (costing nothing on the wire) when observability is off.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def key(self) -> str:
        return self.job.key

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def canonical(self) -> Dict[str, object]:
        """Host-independent payload — identical across worker counts,
        warm/cold caches, and retries (the bit-identical invariant)."""
        record: Dict[str, object] = {"key": self.key, "status": self.status}
        if self.result is not None:
            data = self.result.as_dict()
            data.pop("host_seconds", None)
            record["result"] = data
        if self.native is not None:
            record["native"] = {
                "instructions": self.native.instructions,
                "output": list(self.native.output),
            }
        if self.error is not None:
            record["error"] = self.error
        return record

    def metrics_record(self) -> Dict[str, object]:
        """Full per-job JSON-lines record (host timing included).

        Records are schema-versioned (``repro.obs/…`` conventions, see
        docs/campaign.md § "Per-job metrics schema") and validatable
        with ``python -m repro.obs``.
        """
        record: Dict[str, object] = {
            SCHEMA_KEY: JOB_METRICS_SCHEMA,
            "key": self.key,
            "workload": self.job.workload,
            "simulator": self.job.simulator,
            "scale": self.job.scale,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.attempts - 1,
            "host_seconds": self.host_seconds,
        }
        if self.job.variant:
            record["variant"] = self.job.variant
        if self.job.policy is not None:
            record["policy"] = self.job.policy.token
        if self.worker is not None:
            record["worker"] = self.worker
        if self.result is not None:
            record["cycles"] = self.result.cycles
            record["instructions"] = self.result.instructions
            record["memo"] = self.result.memo.as_dict()
        if self.native is not None:
            record["instructions"] = self.native.instructions
            record["native_seconds"] = self.native.seconds
        if self.error is not None:
            record["error"] = self.error
        for name in sorted(self.metrics):
            record[name] = self.metrics[name]
        return record

"""Shared on-disk p-action cache directory — campaign warm-start.

Repeated campaigns (CI runs, parameter sweeps, regression timing) keep
re-simulating the same binaries under the same processor model. Each
(program text, parameters) pair has a binding signature
(:func:`repro.memo.engine.run_signature`); this store maps that
signature to a persisted p-action cache file
(:mod:`repro.memo.persist`), so any worker — in any process, in any
later campaign — can start fully warm.

Layout: one ``<signature-hex>.fspc`` file per binding under the root
directory. Writes go through a per-process temporary file and an atomic
:func:`os.replace`, so concurrent workers can race on the same
signature safely (last writer wins; both wrote compatible caches for
the same binding, so either outcome is sound — the binding signature is
re-imposed on load and replay never trusts a cache for the wrong
binary). A corrupt or truncated file is treated as a miss, never an
error: warm-start is an optimisation, and the bit-identical invariant
guarantees a cold run produces the same simulated results. Corrupt
files are **quarantined**, not silently skipped: the damaged file is
atomically renamed to ``<name>.bad`` (preserving the evidence and
preventing every later run from tripping over it), counted in the
``guard.cache_quarantined`` obs metric, and reported through the
progress sink as a ``cache-quarantined`` event (a WARNING line in
text mode) — see docs/robustness.md.
"""

from __future__ import annotations

import os
from typing import List, Optional, Union

from repro.errors import MemoizationError
from repro.memo.pcache import PActionCache
from repro.memo.persist import load_pcache, save_pcache
from repro.obs.core import ensure_observer

_SUFFIX = ".fspc"
#: Appended to a corrupt cache file's name when it is quarantined.
QUARANTINE_SUFFIX = ".bad"


class CacheStore:
    """A directory of persisted p-action caches keyed by signature."""

    def __init__(self, root: Union[str, "os.PathLike"], obs=None,
                 sink=None):
        self.root = os.fspath(root)
        self.obs = ensure_observer(obs)
        self.sink = sink
        #: Base names of files quarantined by this store instance.
        self.quarantined: List[str] = []
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, signature: bytes) -> str:
        """The cache file path for one binding signature."""
        return os.path.join(self.root, signature.hex() + _SUFFIX)

    def load(self, signature: bytes) -> Optional[PActionCache]:
        """Return the persisted cache for *signature*, or None.

        Missing files miss silently. Corrupt or unreadable files — and
        files whose stored binding does not match (should never happen,
        but a hash collision on the file name must not poison a run) —
        miss *and* are quarantined: renamed to ``<name>.bad`` so later
        runs re-record a clean cache instead of re-parsing damage.
        """
        path = self.path_for(signature)
        try:
            cache = load_pcache(path)
        except FileNotFoundError:
            return None
        except (MemoizationError, OSError, IndexError) as exc:
            self._quarantine(path, exc)
            return None
        if cache._bound_program != signature:
            self._quarantine(path, MemoizationError(
                "persisted cache bound to a different program"))
            return None
        return cache

    def _quarantine(self, path: str, exc: Exception) -> None:
        """Rename a corrupt cache file aside and report it."""
        name = os.path.basename(path)
        try:
            os.replace(path, path + QUARANTINE_SUFFIX)
        except OSError:
            # Concurrent worker already moved it (or the file vanished);
            # the report below still records that *we* hit corruption.
            pass
        self.quarantined.append(name)
        if self.obs.enabled:
            self.obs.counter("guard.cache_quarantined")
            self.obs.event("guard.cache-quarantined", cat="guard",
                           file=name, error=str(exc))
        if self.sink is not None:
            self.sink.emit("cache-quarantined", file=name,
                           error=str(exc))

    def store(self, signature: bytes, cache: PActionCache,
              known_nodes: int = 0) -> bool:
        """Persist *cache* unless it holds nothing new.

        *known_nodes* is the node count the run started from (0 for a
        cold start); when the run recorded nothing beyond it there is
        nothing worth writing. Returns True when a file was written.
        """
        recorded = cache.configs_allocated + cache.actions_allocated
        if recorded <= known_nodes and os.path.exists(
                self.path_for(signature)):
            return False
        final_path = self.path_for(signature)
        temp_path = os.path.join(
            self.root, f".{signature.hex()}.{os.getpid()}.tmp"
        )
        try:
            save_pcache(cache, temp_path)
            os.replace(temp_path, final_path)
        finally:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
        return True

    def entries(self) -> List[str]:
        """Hex signatures currently persisted, sorted."""
        found = []
        for name in os.listdir(self.root):
            if name.endswith(_SUFFIX) and not name.startswith("."):
                found.append(name[: -len(_SUFFIX)])
        return sorted(found)

    def total_bytes(self) -> int:
        """On-disk footprint of all persisted caches."""
        return sum(
            os.path.getsize(os.path.join(self.root, hexsig + _SUFFIX))
            for hexsig in self.entries()
        )

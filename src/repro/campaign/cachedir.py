"""Shared on-disk p-action cache stores — campaign warm-start.

Repeated campaigns (CI runs, parameter sweeps, regression timing) keep
re-simulating the same binaries under the same processor model. Each
(program text, parameters) pair has a binding signature
(:func:`repro.memo.engine.run_signature`); a :class:`CacheStore` maps
that signature to a persisted p-action cache file
(:mod:`repro.memo.persist`), so any worker — in any process, on any
placement, in any later campaign — can start fully warm.

The store is **content-addressed by the run signature**: the file name
*is* the SHA-256 digest of everything that defines the cache's content
(program text, text base, processor parameters), so two writers racing
on the same name are by construction writing caches for the same
binding, and a reader can never be handed bytes for the wrong binary —
the binding is re-imposed on load. Writes are concurrency-safe for
many writers, including many threads of one process (the work-stealing
queue backend) and unrelated processes on a shared filesystem: each
write goes through a per-process *and* per-thread unique temporary
file and one atomic :func:`os.replace` (last writer wins; both wrote
compatible caches for the same binding, so either outcome is sound).

A corrupt or truncated file is treated as a miss, never an error:
warm-start is an optimisation, and the bit-identical invariant
guarantees a cold run produces the same simulated results. Corrupt
files are **quarantined**, not silently skipped: the damaged file is
atomically renamed to ``<name>.bad`` (preserving the evidence and
preventing every later run from tripping over it), counted in the
``guard.cache_quarantined`` obs metric, and reported through the
progress sink as a ``cache-quarantined`` event (a WARNING line in
text mode) — see docs/robustness.md.

Two-tier layout
---------------

:class:`TieredCacheStore` layers a fast **local** directory over a
**shared** remote-style store (an NFS/rsync'd/object-store-mounted
directory): reads go local-first and *read through* to the shared tier
(promoting hits into the local dir byte-for-byte), writes land locally
and are *written back* to the shared tier. One worker's miss therefore
warms every placement — the enabling property for executor backends
that span processes and, eventually, hosts (docs/distributed.md).
Corruption in either tier quarantines in that tier and falls back to
the next one (or to a cold run); the canonical output is byte-identical
regardless, which ``fastsim-repro chaos --tiered`` drills end-to-end.

The shared tier additionally sits behind a **circuit breaker**
(:class:`CircuitBreaker`): a storage outage (NFS server gone, mount
wedged) would otherwise charge every job a fresh round of I/O errors.
After ``threshold`` consecutive shared-tier failures the breaker
opens — shared operations short-circuit to a miss, the campaign
degrades to local-only caching, and a ``cache-breaker-open`` WARNING
progress event plus ``cache.breaker_*`` counters record the
degradation. After ``cooldown`` seconds one half-open probe is let
through; success closes the breaker again. Breaker state is
process-wide per shared root (module registry), so it persists across
the per-attempt store instances built from :class:`StoreSpec` —
exactly what the persistent ``subprocess`` workers and the ``queue``
backend's threads need (see docs/robustness.md).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.errors import MemoizationError
from repro.memo import segstore
from repro.memo.pcache import PActionCache
from repro.memo.persist import load_pcache, save_pcache
from repro.obs.core import ensure_observer

_SUFFIX = ".fspc"
#: Sibling file carrying the persisted compiled segments for a binding
#: (:mod:`repro.memo.segstore`); same name, different suffix, same
#: quarantine/miss semantics as the p-cache itself.
_SEG_SUFFIX = ".fsseg"
#: Appended to a corrupt cache file's name when it is quarantined.
QUARANTINE_SUFFIX = ".bad"

#: Process-wide monotonic counter making temp names unique per writer
#: even when one process writes from many threads (the queue backend).
_TEMP_SEQUENCE = itertools.count()


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    Thread-safe; shared by every store instance pointing at one shared
    root (see :func:`shared_tier_breaker`). ``allow`` gates an
    operation, ``record_success`` / ``record_failure`` report how it
    went. While open, all calls are refused until *cooldown* seconds
    have passed, then exactly one probe is admitted at a time
    (half-open): its success closes the breaker, its failure re-opens
    it for another cooldown.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 5.0):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self, now: float) -> bool:
        """Whether an operation may proceed at time *now*."""
        with self._lock:
            if self._state == "closed":
                return True
            if (self._state == "open"
                    and now - self._opened_at >= self.cooldown):
                self._state = "half-open"
                self._probing = True
                return True
            if self._state == "half-open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> bool:
        """Report success; True when this closed an open breaker."""
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != "closed":
                self._state = "closed"
                return True
            return False

    def record_failure(self, now: float) -> bool:
        """Report a failure; True when this *opened* the breaker."""
        with self._lock:
            self._failures += 1
            self._probing = False
            if (self._state == "half-open"
                    or self._failures >= self.threshold):
                newly = self._state != "open"
                self._state = "open"
                self._opened_at = now
                return newly
            return False


#: Process-wide breaker per shared-tier root: campaign attempts build
#: short-lived store instances from a StoreSpec, but outage state must
#: outlive them or the breaker would never accumulate failures.
_BREAKERS: Dict[str, CircuitBreaker] = {}
_BREAKERS_LOCK = threading.Lock()


def shared_tier_breaker(root: Union[str, "os.PathLike"]) -> CircuitBreaker:
    """The process-wide breaker guarding the shared tier at *root*."""
    key = os.path.abspath(os.fspath(root))
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(key)
        if breaker is None:
            breaker = _BREAKERS[key] = CircuitBreaker()
        return breaker


def reset_breakers() -> None:
    """Forget all breaker state (tests and fresh chaos drills)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()


class CacheStore:
    """A directory of persisted p-action caches keyed by signature."""

    def __init__(self, root: Union[str, "os.PathLike"], obs=None,
                 sink=None):
        self.root = os.fspath(root)
        self.obs = ensure_observer(obs)
        self.sink = sink
        #: Base names of files quarantined by this store instance.
        self.quarantined: List[str] = []
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, signature: bytes) -> str:
        """The cache file path for one binding signature."""
        return os.path.join(self.root, signature.hex() + _SUFFIX)

    def seg_path_for(self, signature: bytes) -> str:
        """The compiled-segment archive path for one binding signature."""
        return os.path.join(self.root, signature.hex() + _SEG_SUFFIX)

    def load(self, signature: bytes) -> Optional[PActionCache]:
        """Return the persisted cache for *signature*, or None.

        Missing files miss silently. Corrupt or unreadable files — and
        files whose stored binding does not match (should never happen,
        but a hash collision on the file name must not poison a run) —
        miss *and* are quarantined: renamed to ``<name>.bad`` so later
        runs re-record a clean cache instead of re-parsing damage.
        """
        path = self.path_for(signature)
        try:
            cache = load_pcache(path)
        except FileNotFoundError:
            return None
        except (MemoizationError, OSError, IndexError) as exc:
            self._quarantine(path, exc)
            return None
        if cache._bound_program != signature:
            self._quarantine(path, MemoizationError(
                "persisted cache bound to a different program"))
            return None
        return cache

    def load_segments(self, signature: bytes):
        """The persisted segment archive for *signature*, or None.

        Same contract as :meth:`load`: missing files miss silently,
        damaged files miss *and* quarantine. A quarantined (or even a
        silently wrong) archive can never corrupt a run — install
        recompiles every record from the live graph and digest-checks
        it (:mod:`repro.memo.segstore`) — so this path is pure
        optimisation, like warm-start itself.
        """
        path = self.seg_path_for(signature)
        try:
            return segstore.load_segments(path)
        except FileNotFoundError:
            return None
        except (MemoizationError, OSError, IndexError) as exc:
            self._quarantine(path, exc)
            return None

    def _quarantine(self, path: str, exc: Exception) -> None:
        """Rename a corrupt cache file aside and report it."""
        name = os.path.basename(path)
        try:
            os.replace(path, path + QUARANTINE_SUFFIX)
        except OSError:
            # Concurrent worker already moved it (or the file vanished);
            # the report below still records that *we* hit corruption.
            pass
        self.quarantined.append(name)
        if self.obs.enabled:
            self.obs.counter("guard.cache_quarantined")
            self.obs.event("guard.cache-quarantined", cat="guard",
                           file=name, error=str(exc))
        if self.sink is not None:
            self.sink.emit("cache-quarantined", file=name,
                           error=str(exc))

    def _temp_path(self, signature: bytes) -> str:
        """A writer-unique temporary name next to the final path.

        Unique across processes (pid), across threads of one process
        (thread ident), and across successive writes by one thread
        (sequence counter) — any number of concurrent writers may
        target the same signature without touching each other's bytes.
        """
        return os.path.join(
            self.root,
            f".{signature.hex()}.{os.getpid()}"
            f".{threading.get_ident()}.{next(_TEMP_SEQUENCE)}.tmp",
        )

    def store(self, signature: bytes, cache: PActionCache,
              known_nodes: int = 0) -> bool:
        """Persist *cache* unless it holds nothing new.

        *known_nodes* is the node count the run started from (0 for a
        cold start); when the run recorded nothing beyond it there is
        nothing worth writing. Returns True when a file was written.
        """
        recorded = cache.configs_allocated + cache.actions_allocated
        if recorded <= known_nodes and os.path.exists(
                self.path_for(signature)):
            return False
        final_path = self.path_for(signature)
        temp_path = self._temp_path(signature)
        try:
            save_pcache(cache, temp_path)
            os.replace(temp_path, final_path)
        finally:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
        return True

    def store_segments(self, signature: bytes, archive) -> bool:
        """Persist a :class:`~repro.memo.segstore.SegmentArchive`.

        Empty archives are not worth a file (a later run simply
        re-warms); returns True when a file was written. The write is
        concurrency-safe exactly like :meth:`store` (writer-unique
        temp file + atomic replace).
        """
        if not archive.records:
            return False
        temp_path = self._temp_path(signature)
        try:
            with open(temp_path, "wb") as stream:
                segstore.write_segments(archive, stream)
            os.replace(temp_path, self.seg_path_for(signature))
        finally:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
        return True

    # -- raw byte transfer (tier promotion / write-back) ---------------

    def read_bytes(self, signature: bytes,
                   suffix: str = _SUFFIX) -> Optional[bytes]:
        """The persisted file's raw bytes, or None when missing.

        No integrity check happens here — the receiving tier's
        :meth:`load` re-validates, and a corrupt transfer quarantines
        there exactly like a corrupt local write would. *suffix*
        selects the p-cache file (default) or its ``.fsseg`` sibling.
        """
        try:
            path = os.path.join(self.root, signature.hex() + suffix)
            with open(path, "rb") as stream:
                return stream.read()
        except OSError:
            return None

    def write_bytes(self, signature: bytes, data: bytes,
                    suffix: str = _SUFFIX) -> None:
        """Atomically install raw persisted bytes for *signature*.

        Used for byte-exact tier promotion and write-back: copying the
        file instead of re-serialising guarantees both tiers hold
        identical bytes for one binding.
        """
        temp_path = self._temp_path(signature)
        try:
            with open(temp_path, "wb") as stream:
                stream.write(data)
            os.replace(temp_path,
                       os.path.join(self.root, signature.hex() + suffix))
        finally:
            if os.path.exists(temp_path):
                os.unlink(temp_path)

    def has(self, signature: bytes, suffix: str = _SUFFIX) -> bool:
        """Whether a persisted file exists for *signature* (no parse)."""
        return os.path.exists(
            os.path.join(self.root, signature.hex() + suffix))

    def entries(self) -> List[str]:
        """Hex signatures currently persisted, sorted."""
        found = []
        for name in os.listdir(self.root):
            if name.endswith(_SUFFIX) and not name.startswith("."):
                found.append(name[: -len(_SUFFIX)])
        return sorted(found)

    def total_bytes(self) -> int:
        """On-disk footprint of all persisted caches."""
        return sum(
            os.path.getsize(os.path.join(self.root, hexsig + _SUFFIX))
            for hexsig in self.entries()
        )


class TieredCacheStore:
    """A local read-through/write-back dir over a shared store.

    Duck-typed to :class:`CacheStore` where the campaign engine and
    workers care (``load`` / ``store`` / ``quarantined`` / ``entries``
    / ``total_bytes``). Tier traffic is counted per instance
    (:attr:`tier_stats`, surfaced in per-job metrics records as
    ``cache_tier``) and in obs counters (``cache.tier_local_hits``,
    ``cache.tier_shared_hits``, ``cache.tier_misses``,
    ``cache.tier_promotions``, ``cache.tier_writebacks``).

    Every shared-tier operation goes through the process-wide
    :class:`CircuitBreaker` for the shared root (plus the shared-tier
    outage fault injector when a plan is armed): I/O failures count
    toward opening it, and while it is open shared reads degrade to
    misses and write-backs are skipped — the local tier and the
    byte-identical merged output are unaffected. Breaker traffic is
    counted in ``tier_stats`` (``breaker_failures`` /
    ``breaker_short_circuits`` / ``breaker_opened``) and
    ``cache.breaker_*`` obs counters.
    """

    def __init__(self, local: Union[str, "os.PathLike", CacheStore],
                 shared: Union[str, "os.PathLike", CacheStore],
                 obs=None, sink=None):
        self.obs = ensure_observer(obs)
        self.sink = sink
        self.local = (local if isinstance(local, CacheStore)
                      else CacheStore(local, obs=obs, sink=sink))
        self.shared = (shared if isinstance(shared, CacheStore)
                       else CacheStore(shared, obs=obs, sink=sink))
        self.breaker = shared_tier_breaker(self.shared.root)
        self.tier_stats: Dict[str, int] = {
            "local_hits": 0, "shared_hits": 0, "misses": 0,
            "promotions": 0, "writebacks": 0,
            "seg_local_hits": 0, "seg_shared_hits": 0, "seg_misses": 0,
            "seg_promotions": 0, "seg_writebacks": 0,
            "breaker_failures": 0, "breaker_short_circuits": 0,
            "breaker_opened": 0,
        }

    def _count(self, stat: str) -> None:
        self.tier_stats[stat] += 1
        if self.obs.enabled:
            self.obs.counter(f"cache.tier_{stat}")

    def _count_breaker(self, stat: str) -> None:
        self.tier_stats[f"breaker_{stat}"] += 1
        if self.obs.enabled:
            self.obs.counter(f"cache.breaker_{stat}")

    def _shared_call(self, func: Callable[[], object], default=None):
        """Run one shared-tier operation behind the circuit breaker.

        Injected outages (``FaultPlan.shared_outage_after``) and real
        I/O errors both count as failures; either way the caller gets
        *default* back and the campaign carries on local-only. Note
        that errors *inside* ``CacheStore.load`` are already absorbed
        by quarantine — the breaker sees raw byte transfer and
        existence checks, plus everything the fault injector raises.
        """
        now = time.monotonic()  # repro-lint: disable=det/time-dependent
        if not self.breaker.allow(now):
            self._count_breaker("short_circuits")
            return default
        try:
            from repro.guard import faults

            plan = faults.active_plan()
            if plan is not None:
                faults.maybe_shared_outage(plan)
            value = func()
        except OSError as exc:
            self._count_breaker("failures")
            if self.breaker.record_failure(now):
                self._count_breaker("opened")
                if self.obs.enabled:
                    self.obs.event("cache.breaker-open", cat="cache",
                                   error=str(exc))
                if self.sink is not None:
                    self.sink.emit(
                        "cache-breaker-open", tier="shared",
                        error=str(exc),
                        cooldown_seconds=self.breaker.cooldown)
            return default
        if self.breaker.record_success():
            if self.obs.enabled:
                self.obs.event("cache.breaker-closed", cat="cache")
            if self.sink is not None:
                self.sink.emit("cache-breaker-closed", tier="shared")
        return value

    @property
    def root(self) -> str:
        """The local tier's directory (what single-tier callers see)."""
        return self.local.root

    @property
    def quarantined(self) -> List[str]:
        """Files quarantined in either tier by this instance."""
        return list(self.local.quarantined) + list(self.shared.quarantined)

    def path_for(self, signature: bytes) -> str:
        return self.local.path_for(signature)

    def load(self, signature: bytes) -> Optional[PActionCache]:
        """Local-first read-through load with byte-exact promotion.

        A shared-tier hit is copied into the local dir *as bytes*, so
        the promoted file is identical to what every other placement
        promotes. Corruption quarantines in whichever tier served the
        bytes and falls through (shared, then cold).
        """
        cache = self.local.load(signature)
        if cache is not None:
            self._count("local_hits")
            return cache
        cache = self._shared_call(lambda: self.shared.load(signature))
        if cache is not None:
            self._count("shared_hits")
            data = self._shared_call(
                lambda: self.shared.read_bytes(signature))
            if data is not None:
                self.local.write_bytes(signature, data)
                self._count("promotions")
            return cache
        self._count("misses")
        return None

    def load_segments(self, signature: bytes):
        """Local-first read-through segment load, like :meth:`load`.

        A shared-tier archive is promoted into the local dir byte-for-
        byte; corruption quarantines in whichever tier served the bytes
        and falls through. Counted separately (``seg_*`` tier stats) so
        the p-cache hit-rate numbers stay undiluted.
        """
        archive = self.local.load_segments(signature)
        if archive is not None:
            self._count("seg_local_hits")
            return archive
        archive = self._shared_call(
            lambda: self.shared.load_segments(signature))
        if archive is not None:
            self._count("seg_shared_hits")
            data = self._shared_call(
                lambda: self.shared.read_bytes(signature, _SEG_SUFFIX))
            if data is not None:
                self.local.write_bytes(signature, data, _SEG_SUFFIX)
                self._count("seg_promotions")
            return archive
        self._count("seg_misses")
        return None

    def store(self, signature: bytes, cache: PActionCache,
              known_nodes: int = 0) -> bool:
        """Write locally, then write the same bytes back to the shared
        tier (skipped only when the local write itself was skipped and
        the shared tier already holds the binding)."""
        saved = self.local.store(signature, cache, known_nodes)
        wrote = self._shared_call(
            lambda: self._write_back(signature, saved), default=False)
        if wrote:
            self._count("writebacks")
        return saved

    def store_segments(self, signature: bytes, archive) -> bool:
        """Write the archive locally, then byte-exact write-back."""
        saved = self.local.store_segments(signature, archive)
        wrote = self._shared_call(
            lambda: self._write_back(signature, saved, _SEG_SUFFIX),
            default=False)
        if wrote:
            self._count("seg_writebacks")
        return saved

    def _write_back(self, signature: bytes, saved: bool,
                    suffix: str = _SUFFIX) -> bool:
        """The shared half of :meth:`store`; runs behind the breaker."""
        if saved or not self.shared.has(signature, suffix):
            data = self.local.read_bytes(signature, suffix)
            if data is not None:
                self.shared.write_bytes(signature, data, suffix)
                return True
        return False

    def entries(self) -> List[str]:
        """Hex signatures reachable through either tier, sorted."""
        return sorted(set(self.local.entries())
                      | set(self.shared.entries()))

    def total_bytes(self) -> int:
        return self.local.total_bytes() + self.shared.total_bytes()


@dataclass(frozen=True)
class StoreSpec:
    """A picklable recipe for a cache store.

    Jobs cross process boundaries (fork pipes, the subprocess stdio
    protocol), so workers receive the *description* of the store and
    build their own instance — exactly like :class:`PolicySpec` for
    replacement policies. ``cache_dir`` alone builds a flat
    :class:`CacheStore`; adding ``shared_dir`` builds a
    :class:`TieredCacheStore` with ``cache_dir`` as the local tier.
    Both None means no store (always-cold runs).
    """

    cache_dir: Optional[str] = None
    shared_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shared_dir and not self.cache_dir:
            raise ValueError(
                "a shared cache tier needs a local tier: pass "
                "cache_dir alongside shared_dir"
            )

    def __bool__(self) -> bool:
        return self.cache_dir is not None

    def build(self, obs=None, sink=None):
        """Instantiate the described store (or None)."""
        if not self.cache_dir:
            return None
        if self.shared_dir:
            return TieredCacheStore(self.cache_dir, self.shared_dir,
                                    obs=obs, sink=sink)
        return CacheStore(self.cache_dir, obs=obs, sink=sink)


def make_store(cache_dir: Optional[str] = None,
               shared_dir: Optional[str] = None, obs=None, sink=None):
    """One-call convenience over :class:`StoreSpec`."""
    return StoreSpec(cache_dir=cache_dir,
                     shared_dir=shared_dir).build(obs=obs, sink=sink)

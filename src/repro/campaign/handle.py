"""Submit/await campaign execution — :class:`CampaignHandle`.

:func:`repro.api.submit_campaign` returns immediately with a handle to
a campaign running on a background thread; the legacy blocking
:func:`repro.api.run_campaign` is literally submit-then-await, so the
two produce byte-identical merged payloads by construction. The handle
exposes the operations a caller queueing work needs:

* :meth:`CampaignHandle.result` — block (optionally with a timeout)
  for the merged :class:`~repro.campaign.engine.CampaignResult`;
* :meth:`CampaignHandle.progress` — a point-in-time snapshot of job
  counts, fed by the same event stream the progress sinks see;
* :meth:`CampaignHandle.events` — a subscribable live iterator of
  schema-stamped campaign events (``repro.campaign/event/v1``): every
  subscriber replays the stream from the start and then follows it
  live until the run ends — the SSE-ready primitive a
  simulation-as-a-service front end needs (ROADMAP open item 1);
* :meth:`CampaignHandle.cancel` — ask the engine to stop placing work;
  unfinished jobs come back ``status="cancelled"``;
* :meth:`CampaignHandle.metrics` — host-side diagnostics (wall time,
  backend mechanism counters) once the run finishes.

Progress counting and the event stream piggyback on the engine's
event stream via sinks teed next to the caller's — the handle never
reaches into engine internals, so any backend (and the serial
``workers=0`` path) reports identically.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from repro.campaign.engine import Campaign, CampaignResult, CampaignRunner
from repro.campaign.progress import ProgressSink
from repro.obs.schema import EVENT_SCHEMA, stamp


class ProgressCounter(ProgressSink):
    """Thread-safe job counters fed by campaign progress events.

    ``attempts`` counts ``job-start`` events (one per attempt, so
    retries re-count); ``ok`` / ``failed`` / ``poisoned`` / ``retries``
    mirror the outcome events, and ``resumed`` counts jobs skipped via
    journal replay (their recorded outcomes merge without re-running).
    The counter is a regular sink so it composes with Text/Jsonl/Obs
    sinks through :class:`~repro.campaign.progress.TeeSink`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {
            "jobs": 0, "attempts": 0, "ok": 0, "failed": 0,
            "poisoned": 0, "retries": 0, "resumed": 0,
        }

    def emit(self, kind: str, **fields: object) -> None:
        with self._lock:
            if kind == "campaign-start":
                self._counts["jobs"] = int(fields.get("jobs", 0))
            elif kind == "job-start":
                self._counts["attempts"] += 1
            elif kind == "job-ok":
                self._counts["ok"] += 1
            elif kind == "job-failed":
                self._counts["failed"] += 1
            elif kind == "job-poisoned":
                self._counts["poisoned"] += 1
            elif kind == "job-retry":
                self._counts["retries"] += 1
            elif kind == "job-resumed":
                self._counts["resumed"] += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            counts = dict(self._counts)
        counts["finished"] = (counts["ok"] + counts["failed"]
                              + counts["poisoned"] + counts["resumed"])
        return counts


class EventStream(ProgressSink):
    """Replayable, thread-safe stream of schema-stamped campaign events.

    A regular :class:`~repro.campaign.progress.ProgressSink` teed into
    the runner's sink chain: every engine event becomes one
    ``repro.campaign/event/v1`` record with a monotonically increasing
    ``seq``. :meth:`subscribe` iterators replay the history from
    ``seq`` 0 and then block for new events until :meth:`close` — so a
    late subscriber (an SSE endpoint attaching mid-run, a test
    awaiting completion) sees exactly the same ordered records as an
    early one. The stream is bounded by the campaign's own event count
    (a handful per job), so replay-from-zero is cheap by construction.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._records: List[Dict[str, object]] = []
        self._closed = False

    def emit(self, kind: str, **fields: object) -> None:
        record: Dict[str, object] = {
            name: fields[name] for name in sorted(fields)
            if fields[name] is not None
        }
        record["event"] = kind
        with self._cond:
            record["seq"] = len(self._records)
            self._records.append(stamp(EVENT_SCHEMA, record))
            self._cond.notify_all()

    def close(self) -> None:
        """End the stream; blocked subscribers drain and stop."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def subscribe(self) -> Iterator[Dict[str, object]]:
        """Iterate every event from the start, live until closed."""
        index = 0
        while True:
            with self._cond:
                while (index >= len(self._records)
                       and not self._closed):
                    self._cond.wait()
                if index >= len(self._records):
                    return
                record = self._records[index]
            index += 1
            yield record


class CampaignHandle:
    """A campaign running in the background; see the module docstring."""

    def __init__(self, campaign: Campaign, runner: CampaignRunner,
                 counter: Optional[ProgressCounter] = None,
                 events: Optional[EventStream] = None):
        self._campaign = campaign
        self._runner = runner
        self._counter = counter if counter is not None else ProgressCounter()
        #: The stream must be teed into the runner's sink chain by the
        #: caller (submit_campaign does); a handle built without one
        #: still closes its private stream, so events() terminates.
        self._events = events if events is not None else EventStream()
        self._outcome: Optional[CampaignResult] = None
        self._error: Optional[BaseException] = None
        self._finished = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"campaign-{campaign.name}",
            daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        try:
            self._outcome = self._runner.run(self._campaign)
        except BaseException as exc:  # surfaced from result(), not lost
            self._error = exc
        finally:
            self._finished.set()
            self._events.close()

    @property
    def campaign(self) -> Campaign:
        return self._campaign

    def done(self) -> bool:
        """Whether the run has finished (successfully or not)."""
        return self._finished.is_set()

    def result(self, timeout: Optional[float] = None) -> CampaignResult:
        """Block until the merged result is ready.

        With *timeout* (seconds), raises :class:`TimeoutError` if the
        campaign is still running when it expires — the run itself
        keeps going and ``result()`` may be called again. Re-raises
        whatever the runner raised, if it failed outright.
        """
        if not self._finished.wait(timeout):
            raise TimeoutError(
                f"campaign {self._campaign.name!r} still running "
                f"after {timeout}s"
            )
        self._thread.join()
        if self._error is not None:
            raise self._error
        return self._outcome

    def progress(self) -> Dict[str, object]:
        """Point-in-time job counts plus a ``done`` flag."""
        snapshot: Dict[str, object] = dict(self._counter.snapshot())
        snapshot["done"] = self.done()
        return snapshot

    def events(self) -> Iterator[Dict[str, object]]:
        """Subscribe to the live, schema-stamped event stream.

        Yields one ``repro.campaign/event/v1`` record per engine event
        — campaign/job lifecycle, retries, and one ``job-merged``
        record per job in merge order once results are final — then
        stops when the run ends. Safe to call from any thread, any
        number of times; every subscriber sees the full ordered
        history (replay then live).
        """
        return self._events.subscribe()

    def cancel(self) -> None:
        """Ask the run to stop; jobs not yet finished are reported
        ``status="cancelled"`` in the merged result. Idempotent.

        A cancelled run still terminates its streams properly: the
        event stream closes after a final ``campaign-end`` record, and
        when the runner journals (``journal=``/``resume=``) the journal
        gets a terminal ``campaign-cancelled`` record — so neither a
        subscriber nor a later resume can mistake cancellation for a
        crash."""
        self._runner.cancel()

    def metrics(self) -> Dict[str, object]:
        """Host-side diagnostics: progress counts, and — once the run
        is done — wall-clock seconds plus the executor backend's
        mechanism counters (forks/steals/respawns/…). Never part of
        canonical output."""
        record: Dict[str, object] = {"progress": self.progress()}
        if self.done() and self._outcome is not None:
            record["wall_seconds"] = self._outcome.wall_seconds
            record["workers"] = self._outcome.workers
            record["backend"] = dict(self._runner.backend_metrics)
        return record


__all__ = ["CampaignHandle", "EventStream", "ProgressCounter"]

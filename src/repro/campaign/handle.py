"""Submit/await campaign execution — :class:`CampaignHandle`.

:func:`repro.api.submit_campaign` returns immediately with a handle to
a campaign running on a background thread; the legacy blocking
:func:`repro.api.run_campaign` is literally submit-then-await, so the
two produce byte-identical merged payloads by construction. The handle
exposes the four operations a caller queueing work needs:

* :meth:`CampaignHandle.result` — block (optionally with a timeout)
  for the merged :class:`~repro.campaign.engine.CampaignResult`;
* :meth:`CampaignHandle.progress` — a point-in-time snapshot of job
  counts, fed by the same event stream the progress sinks see;
* :meth:`CampaignHandle.cancel` — ask the engine to stop placing work;
  unfinished jobs come back ``status="cancelled"``;
* :meth:`CampaignHandle.metrics` — host-side diagnostics (wall time,
  backend mechanism counters) once the run finishes.

Progress counting piggybacks on the engine's event stream via a
:class:`ProgressCounter` teed next to the caller's sink — the handle
never reaches into engine internals, so any backend (and the serial
``workers=0`` path) reports identically.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.campaign.engine import Campaign, CampaignResult, CampaignRunner
from repro.campaign.progress import ProgressSink


class ProgressCounter(ProgressSink):
    """Thread-safe job counters fed by campaign progress events.

    ``attempts`` counts ``job-start`` events (one per attempt, so
    retries re-count); ``ok`` / ``failed`` / ``retries`` mirror the
    outcome events. The counter is a regular sink so it composes with
    Text/Jsonl/Obs sinks through
    :class:`~repro.campaign.progress.TeeSink`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {
            "jobs": 0, "attempts": 0, "ok": 0, "failed": 0,
            "retries": 0,
        }

    def emit(self, kind: str, **fields: object) -> None:
        with self._lock:
            if kind == "campaign-start":
                self._counts["jobs"] = int(fields.get("jobs", 0))
            elif kind == "job-start":
                self._counts["attempts"] += 1
            elif kind == "job-ok":
                self._counts["ok"] += 1
            elif kind == "job-failed":
                self._counts["failed"] += 1
            elif kind == "job-retry":
                self._counts["retries"] += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            counts = dict(self._counts)
        counts["finished"] = counts["ok"] + counts["failed"]
        return counts


class CampaignHandle:
    """A campaign running in the background; see the module docstring."""

    def __init__(self, campaign: Campaign, runner: CampaignRunner,
                 counter: Optional[ProgressCounter] = None):
        self._campaign = campaign
        self._runner = runner
        self._counter = counter if counter is not None else ProgressCounter()
        self._outcome: Optional[CampaignResult] = None
        self._error: Optional[BaseException] = None
        self._finished = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"campaign-{campaign.name}",
            daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        try:
            self._outcome = self._runner.run(self._campaign)
        except BaseException as exc:  # surfaced from result(), not lost
            self._error = exc
        finally:
            self._finished.set()

    @property
    def campaign(self) -> Campaign:
        return self._campaign

    def done(self) -> bool:
        """Whether the run has finished (successfully or not)."""
        return self._finished.is_set()

    def result(self, timeout: Optional[float] = None) -> CampaignResult:
        """Block until the merged result is ready.

        With *timeout* (seconds), raises :class:`TimeoutError` if the
        campaign is still running when it expires — the run itself
        keeps going and ``result()`` may be called again. Re-raises
        whatever the runner raised, if it failed outright.
        """
        if not self._finished.wait(timeout):
            raise TimeoutError(
                f"campaign {self._campaign.name!r} still running "
                f"after {timeout}s"
            )
        self._thread.join()
        if self._error is not None:
            raise self._error
        return self._outcome

    def progress(self) -> Dict[str, object]:
        """Point-in-time job counts plus a ``done`` flag."""
        snapshot: Dict[str, object] = dict(self._counter.snapshot())
        snapshot["done"] = self.done()
        return snapshot

    def cancel(self) -> None:
        """Ask the run to stop; jobs not yet finished are reported
        ``status="cancelled"`` in the merged result. Idempotent."""
        self._runner.cancel()

    def metrics(self) -> Dict[str, object]:
        """Host-side diagnostics: progress counts, and — once the run
        is done — wall-clock seconds plus the executor backend's
        mechanism counters (forks/steals/respawns/…). Never part of
        canonical output."""
        record: Dict[str, object] = {"progress": self.progress()}
        if self.done() and self._outcome is not None:
            record["wall_seconds"] = self._outcome.wall_seconds
            record["workers"] = self._outcome.workers
            record["backend"] = dict(self._runner.backend_metrics)
        return record


__all__ = ["CampaignHandle", "ProgressCounter"]

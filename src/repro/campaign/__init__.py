"""Parallel campaign execution with warm-start p-action caches.

The paper's evaluation shape — the same workload suite, under several
simulators, run many times — is embarrassingly parallel and highly
cache-reusable. This package turns that shape into a first-class
object:

* :class:`Job` / :class:`PolicySpec` — declarative work units;
* :class:`Campaign` — an ordered, unique-keyed set of jobs;
* :class:`CampaignRunner` — multiprocessing execution with per-job
  timeout, bounded retry + backoff, and crash isolation;
* :class:`CampaignResult` — deterministically merged results
  (byte-identical across worker counts) plus JSON-lines metrics;
* :class:`CacheStore` — shared on-disk p-action caches keyed by
  binding signature, so repeated campaigns start warm;
* :class:`ProgressSink` — one progress protocol (text / JSON-lines /
  silent) shared with the suite runner.

See ``docs/campaign.md`` for the engine's semantics and the cache
directory layout.
"""

from repro.campaign.cachedir import CacheStore
from repro.campaign.engine import (
    Campaign,
    CampaignResult,
    CampaignRunner,
    run_jobs,
)
from repro.campaign.jobs import (
    Job,
    JobResult,
    NativeRun,
    PolicySpec,
    SIMULATORS,
)
from repro.campaign.progress import (
    CallbackSink,
    JsonlSink,
    NullSink,
    ProgressSink,
    TextSink,
    make_sink,
)
from repro.campaign.worker import execute_job, job_kinds, register_job_kind

__all__ = [
    "SIMULATORS",
    "Job",
    "JobResult",
    "NativeRun",
    "PolicySpec",
    "Campaign",
    "CampaignResult",
    "CampaignRunner",
    "run_jobs",
    "CacheStore",
    "ProgressSink",
    "TextSink",
    "JsonlSink",
    "NullSink",
    "CallbackSink",
    "make_sink",
    "execute_job",
    "register_job_kind",
    "job_kinds",
]

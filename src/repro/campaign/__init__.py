"""Parallel campaign execution with warm-start p-action caches.

The paper's evaluation shape — the same workload suite, under several
simulators, run many times — is embarrassingly parallel and highly
cache-reusable. This package turns that shape into a first-class
object:

* :class:`Job` / :class:`PolicySpec` — declarative work units;
* :class:`Campaign` — an ordered, unique-keyed set of jobs;
* :class:`CampaignRunner` — pool execution over a pluggable
  :class:`ExecutorBackend` (``fork`` / ``subprocess`` / ``queue``)
  with per-job timeout, bounded retry + backoff, and crash isolation
  on the process-based backends;
* :class:`CampaignHandle` — the submit/await form
  (:func:`repro.api.submit_campaign`): background execution with
  ``result(timeout=)`` / ``progress()`` / ``cancel()`` / ``metrics()``;
* :class:`CampaignResult` — deterministically merged results
  (byte-identical across worker counts, backends, and cache tierings)
  plus JSON-lines metrics;
* :class:`CacheStore` / :class:`TieredCacheStore` — shared on-disk
  p-action caches content-addressed by binding signature (optionally
  a local tier reading through to a shared one), so repeated
  campaigns start warm on every placement;
* :class:`ProgressSink` — one progress protocol (text / JSON-lines /
  silent) shared with the suite runner;
* :class:`CampaignJournal` / :func:`read_journal` /
  :func:`verify_resume` — the durable crash journal
  (``repro.campaign/journal/v1``) behind
  ``CampaignRunner(journal=... / resume=...)``: a killed run resumes
  with completed jobs skipped and the merged payload byte-identical
  to an uninterrupted run (see docs/robustness.md).

See ``docs/campaign.md`` for the engine's semantics and the cache
directory layout, and ``docs/distributed.md`` for the backend
capability matrix and tier semantics.
"""

from repro.campaign.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    ExecutorBackend,
    make_backend,
    validate_backend,
)
from repro.campaign.cachedir import (
    CacheStore,
    CircuitBreaker,
    StoreSpec,
    TieredCacheStore,
    make_store,
    reset_breakers,
    shared_tier_breaker,
)
from repro.campaign.engine import (
    Campaign,
    CampaignResult,
    CampaignRunner,
    run_jobs,
)
from repro.campaign.handle import CampaignHandle, ProgressCounter
from repro.campaign.jobs import (
    Job,
    JobResult,
    NativeRun,
    PolicySpec,
    SIMULATORS,
)
from repro.campaign.progress import (
    CallbackSink,
    JsonlSink,
    NullSink,
    ProgressSink,
    TextSink,
    make_sink,
)
from repro.campaign.supervise import (
    CampaignJournal,
    JournalReplay,
    heartbeat_interval,
    read_journal,
    retry_delay,
    verify_resume,
)
from repro.campaign.worker import execute_job, job_kinds, register_job_kind

__all__ = [
    "SIMULATORS",
    "Job",
    "JobResult",
    "NativeRun",
    "PolicySpec",
    "Campaign",
    "CampaignResult",
    "CampaignRunner",
    "CampaignHandle",
    "ProgressCounter",
    "run_jobs",
    "CacheStore",
    "TieredCacheStore",
    "StoreSpec",
    "make_store",
    "CircuitBreaker",
    "shared_tier_breaker",
    "reset_breakers",
    "CampaignJournal",
    "JournalReplay",
    "read_journal",
    "verify_resume",
    "retry_delay",
    "heartbeat_interval",
    "ExecutorBackend",
    "make_backend",
    "validate_backend",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ProgressSink",
    "TextSink",
    "JsonlSink",
    "NullSink",
    "CallbackSink",
    "make_sink",
    "execute_job",
    "register_job_kind",
    "job_kinds",
]

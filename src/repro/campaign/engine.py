"""The campaign engine — parallel, fault-tolerant job execution.

A :class:`Campaign` is a declarative, ordered set of unique jobs. A
:class:`CampaignRunner` executes one:

* ``workers=0`` — serially, in-process (no subprocesses, no timeout
  enforcement; what the suite runner uses for incremental calls);
* ``workers>=1`` — sharded across single-job worker processes with
  per-job timeout, bounded retry with exponential backoff, and crash
  isolation: a dying worker fails (and retries) one job, never the run.

Result merging is deterministic: :class:`CampaignResult` holds job
results in campaign order, keyed by :attr:`Job.key`, so the merged
output is byte-identical no matter which workers finished first —
``workers=1`` and ``workers=N`` produce the same
:meth:`CampaignResult.canonical_json`. Host-dependent measurements
(wall times, retries, memoization hit counts under warm-start) are
deliberately kept out of the canonical payload and emitted as JSON
lines instead (:meth:`CampaignResult.metrics_jsonl`).

One worker process runs one job and exits. That costs a ``fork`` per
job (cheap on the platforms this targets) and buys the fault-tolerance
properties above for free; warm state lives on disk in the shared
:class:`~repro.campaign.cachedir.CacheStore`, not in worker memory, so
it survives both worker recycling and entire campaigns.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.cachedir import CacheStore
from repro.campaign.jobs import Job, JobResult
from repro.campaign.progress import NullSink, ObsSink, ProgressSink, TeeSink
from repro.campaign.worker import child_main, execute_job
from repro.obs.core import ensure_observer

FORMAT_VERSION = 1


@dataclass(frozen=True)
class Campaign:
    """An ordered set of jobs with unique keys."""

    jobs: Tuple[Job, ...]
    name: str = "campaign"

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        seen = {}
        for job in self.jobs:
            if job.key in seen:
                raise ValueError(
                    f"duplicate job key {job.key!r}; give jobs with "
                    "identical coordinates distinct `variant` labels"
                )
            seen[job.key] = job

    def __len__(self) -> int:
        return len(self.jobs)

    @classmethod
    def grid(
        cls,
        workloads: Sequence[str],
        simulators: Sequence[str] = ("fast", "slow", "baseline"),
        scale: str = "test",
        params=None,
        include_native: bool = False,
        name: str = "campaign",
    ) -> "Campaign":
        """The common workload × simulator cross-product campaign."""
        jobs = []
        for workload in workloads:
            if include_native:
                jobs.append(Job(workload=workload, simulator="native",
                                scale=scale))
            for simulator in simulators:
                jobs.append(Job(workload=workload, simulator=simulator,
                                scale=scale, params=params))
        return cls(jobs=tuple(jobs), name=name)


@dataclass
class CampaignResult:
    """Merged results of one campaign run, in campaign (job) order."""

    campaign: Campaign
    results: List[JobResult]
    wall_seconds: float = 0.0
    workers: int = 0

    def __post_init__(self) -> None:
        self._by_key: Dict[str, JobResult] = {}
        for result in self.results:
            self._by_key[result.key] = result

    def __getitem__(self, key: str) -> JobResult:
        return self._by_key[key]

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failed(self) -> List[JobResult]:
        return [result for result in self.results if not result.ok]

    def canonical_dict(self) -> Dict[str, object]:
        """Host-independent merged payload, in campaign order."""
        return {
            "format_version": FORMAT_VERSION,
            "name": self.campaign.name,
            "jobs": [result.canonical() for result in self.results],
        }

    def canonical_json(self) -> str:
        """The byte-identical merged document (sorted keys, indented)."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          indent=2) + "\n"

    def metrics_jsonl(self) -> str:
        """One JSON line of structured metrics per job.

        Each record carries ``"schema": "repro.campaign/job-metrics/v2"``
        and validates under ``python -m repro.obs`` (see
        docs/campaign.md for the field inventory).
        """
        lines = [
            json.dumps(result.metrics_record(), sort_keys=True,
                       default=str)
            for result in self.results
        ]
        return "\n".join(lines) + ("\n" if lines else "")


@dataclass
class _InFlight:
    """One live worker process and the job attempt it owns."""

    index: int
    job: Job
    attempt: int
    process: multiprocessing.Process
    connection: object
    deadline: Optional[float]


@dataclass
class _Pending:
    index: int
    job: Job
    attempt: int = 1
    ready_at: float = 0.0


class CampaignRunner:
    """Executes campaigns; see the module docstring for semantics."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.25,
        sink: Optional[ProgressSink] = None,
        mp_context: Optional[object] = None,
        obs=None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.cache_dir = cache_dir
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.obs = ensure_observer(obs)
        self.sink = sink if sink is not None else NullSink()
        if self.obs.enabled:
            # Telemetry rides the same event stream the progress sinks
            # see; job lifecycle becomes instants + outcome metrics.
            self.sink = TeeSink(self.sink, ObsSink(self.obs))
        if mp_context is None:
            # fork keeps test-registered job kinds visible in workers
            # and makes per-job process spawn cheap.
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                mp_context = multiprocessing.get_context()
        self._mp = mp_context

    # ------------------------------------------------------------------

    def run(self, campaign: Campaign) -> CampaignResult:
        """Execute every job; merged results come back in job order."""
        self.sink.emit(
            "campaign-start", name=campaign.name, jobs=len(campaign),
            workers=self.workers, cache_dir=self.cache_dir,
        )
        started = time.monotonic()  # repro-lint: disable=det/time-dependent
        with self.obs.span("campaign.run", cat="campaign",
                           campaign=campaign.name, jobs=len(campaign),
                           workers=self.workers):
            if self.workers == 0:
                results = self._run_inline(campaign)
            else:
                results = self._run_pool(campaign)
        wall = time.monotonic() - started  # repro-lint: disable=det/time-dependent
        outcome = CampaignResult(
            campaign=campaign, results=results, wall_seconds=wall,
            workers=self.workers,
        )
        self.sink.emit(
            "campaign-end", name=campaign.name, jobs=len(campaign),
            failed=len(outcome.failed), wall_seconds=round(wall, 3),
        )
        return outcome

    # -- serial in-process path -----------------------------------------

    def _run_inline(self, campaign: Campaign) -> List[JobResult]:
        store = (CacheStore(self.cache_dir, obs=self.obs,
                            sink=self.sink)
                 if self.cache_dir else None)
        results = []
        for job in campaign.jobs:
            self.sink.emit("job-start", key=job.key, attempt=1)
            with self.obs.span("campaign.job", cat="campaign",
                               key=job.key):
                outcome = execute_job(job, store, obs=self.obs)
            self._emit_outcome(outcome)
            results.append(outcome)
        return results

    # -- parallel pool path ---------------------------------------------

    def _run_pool(self, campaign: Campaign) -> List[JobResult]:
        pending: List[_Pending] = [
            _Pending(index=i, job=job)
            for i, job in enumerate(campaign.jobs)
        ]
        in_flight: List[_InFlight] = []
        finished: Dict[int, JobResult] = {}
        try:
            while pending or in_flight:
                now = time.monotonic()  # repro-lint: disable=det/time-dependent
                self._launch_ready(pending, in_flight, now)
                self._wait(pending, in_flight, now)
                now = time.monotonic()  # repro-lint: disable=det/time-dependent
                self._collect(pending, in_flight, finished, now)
        finally:
            for slot in in_flight:  # pragma: no cover - interrupt path
                slot.process.terminate()
                slot.process.join()
        return [finished[i] for i in range(len(campaign.jobs))]

    def _launch_ready(self, pending: List[_Pending],
                      in_flight: List[_InFlight], now: float) -> None:
        while len(in_flight) < self.workers:
            slot_item = None
            for item in pending:
                if item.ready_at <= now:
                    slot_item = item
                    break
            if slot_item is None:
                return
            pending.remove(slot_item)
            receiver, sender = self._mp.Pipe(duplex=False)
            process = self._mp.Process(
                target=child_main,
                args=(sender, slot_item.job, self.cache_dir),
            )
            process.start()
            sender.close()
            deadline = (now + self.timeout
                        if self.timeout is not None else None)
            in_flight.append(_InFlight(
                index=slot_item.index, job=slot_item.job,
                attempt=slot_item.attempt, process=process,
                connection=receiver, deadline=deadline,
            ))
            self.sink.emit("job-start", key=slot_item.job.key,
                           attempt=slot_item.attempt,
                           worker=process.pid)

    def _wait(self, pending: List[_Pending],
              in_flight: List[_InFlight], now: float) -> None:
        """Block until a result, a deadline, or a backoff expiry."""
        bounds = [slot.deadline for slot in in_flight
                  if slot.deadline is not None]
        bounds.extend(item.ready_at for item in pending
                      if item.ready_at > now)
        timeout = None
        if bounds:
            timeout = max(min(bounds) - now, 0.0)
        if in_flight:
            # timeout=None blocks until a worker sends a result or dies
            # (its pipe end closing makes the connection ready).
            multiprocessing.connection.wait(
                [slot.connection for slot in in_flight],
                timeout=timeout,
            )
        elif timeout:
            time.sleep(timeout)

    def _collect(self, pending: List[_Pending],
                 in_flight: List[_InFlight],
                 finished: Dict[int, JobResult], now: float) -> None:
        for slot in list(in_flight):
            outcome = None
            failure = None
            if slot.connection.poll():
                try:
                    outcome = slot.connection.recv()
                except (EOFError, OSError):
                    failure = "worker died mid-result"
            elif not slot.process.is_alive():
                code = slot.process.exitcode
                failure = f"worker crashed (exit code {code})"
            elif slot.deadline is not None and now >= slot.deadline:
                slot.process.terminate()
                failure = f"timed out after {self.timeout}s"
            else:
                continue  # still running

            in_flight.remove(slot)
            slot.process.join()
            slot.connection.close()

            if outcome is not None:
                outcome.attempts = slot.attempt
                self._emit_outcome(outcome, worker=slot.process.pid)
                finished[slot.index] = outcome
                continue

            # Infrastructure failure: retry with backoff, else fail.
            if slot.attempt <= self.retries:
                delay = self.backoff * (2 ** (slot.attempt - 1))
                self.sink.emit(
                    "job-retry", key=slot.job.key, attempt=slot.attempt,
                    error=failure, backoff_seconds=delay,
                )
                pending.append(_Pending(
                    index=slot.index, job=slot.job,
                    attempt=slot.attempt + 1, ready_at=now + delay,
                ))
            else:
                result = JobResult(
                    job=slot.job, status="failed",
                    attempts=slot.attempt, error=failure,
                )
                self._emit_outcome(result, worker=slot.process.pid)
                finished[slot.index] = result

    def _emit_outcome(self, outcome: JobResult,
                      worker: Optional[int] = None) -> None:
        kind = "job-ok" if outcome.ok else "job-failed"
        fields = {
            "key": outcome.key,
            "attempt": outcome.attempts,
            "seconds": round(outcome.host_seconds, 3),
        }
        if worker is not None:
            fields["worker"] = worker
        if outcome.result is not None:
            fields["cycles"] = outcome.result.cycles
            fields["instructions"] = outcome.result.instructions
        if outcome.error is not None:
            fields["error"] = outcome.error
        self.sink.emit(kind, **fields)


def run_jobs(
    jobs: Sequence[Job],
    workers: int = 1,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    sink: Optional[ProgressSink] = None,
    name: str = "campaign",
) -> CampaignResult:
    """One-call convenience over Campaign + CampaignRunner."""
    runner = CampaignRunner(
        workers=workers, cache_dir=cache_dir, timeout=timeout,
        retries=retries, sink=sink,
    )
    return runner.run(Campaign(jobs=tuple(jobs), name=name))

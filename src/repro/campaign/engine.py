"""The campaign engine — parallel, fault-tolerant job execution.

A :class:`Campaign` is a declarative, ordered set of unique jobs plus
the executor backend that should place them. A :class:`CampaignRunner`
executes one:

* ``workers=0`` — serially, in-process (no backend, no timeout
  enforcement; what the suite runner uses for incremental calls);
* ``workers>=1`` — sharded across an
  :class:`~repro.campaign.backends.ExecutorBackend` (``fork`` —
  per-job forked processes, the default; ``subprocess`` —
  spawn-isolated stdio workers; ``queue`` — in-process work-stealing
  threads) with per-job timeout where the backend can enforce it,
  bounded retry with exponential backoff for infrastructure failures,
  and crash isolation on the process-based backends.

Result merging is deterministic: :class:`CampaignResult` holds job
results in campaign order, keyed by :attr:`Job.key`, so the merged
output is byte-identical no matter which backend ran the jobs or which
workers finished first — ``workers=1`` and ``workers=N``, ``fork`` and
``queue``, flat and tiered caches all produce the same
:meth:`CampaignResult.canonical_json`. Host-dependent measurements
(wall times, retries, memoization hit counts under warm-start, tier
hit rates, steal counts) are deliberately kept out of the canonical
payload and emitted as JSON lines / backend metrics instead
(:meth:`CampaignResult.metrics_jsonl`,
:attr:`CampaignRunner.backend_metrics`).

The engine owns scheduling *policy* (order, retries, deadlines,
merge); backends own placement *mechanism* — see
:mod:`repro.campaign.backends.base` for the boundary and
docs/distributed.md for the capability matrix. Warm state lives on
disk in the shared :class:`~repro.campaign.cachedir.CacheStore` (or a
:class:`~repro.campaign.cachedir.TieredCacheStore` when a shared tier
is configured), not in worker memory, so it survives worker recycling,
entire campaigns, and placement changes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.backends import (
    BackendContext,
    ExecutorBackend,
    make_backend,
    validate_backend,
)
from repro.campaign.backends.base import Attempt
from repro.campaign.cachedir import StoreSpec
from repro.campaign.jobs import Job, JobResult
from repro.campaign.progress import NullSink, ObsSink, ProgressSink, TeeSink
from repro.campaign.supervise import (
    CampaignJournal,
    classify_failure,
    read_journal,
    retry_delay,
    verify_resume,
)
from repro.campaign.worker import execute_job
from repro.errors import PoisonedJobError
from repro.guard import faults
from repro.obs.core import ensure_observer
from repro.obs.schema import CAMPAIGN_METRICS_SCHEMA, stamp
from repro.obs.worker import TelemetrySpec, merge_telemetry

FORMAT_VERSION = 1


@dataclass(frozen=True)
class Campaign:
    """An ordered set of jobs with unique keys, plus their placement.

    ``backend`` names the executor backend the campaign should run on
    (``fork`` / ``subprocess`` / ``queue``). It is campaign-level by
    design: per-job backend overrides are rejected (see
    :class:`~repro.campaign.jobs.Job`), and the backend is excluded
    from job cache keys because — like ``turbo`` — it must never
    change canonical results.
    """

    jobs: Tuple[Job, ...]
    name: str = "campaign"
    backend: str = "fork"

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        validate_backend(self.backend)
        seen = {}
        for job in self.jobs:
            if job.key in seen:
                raise ValueError(
                    f"duplicate job key {job.key!r}; give jobs with "
                    "identical coordinates distinct `variant` labels"
                )
            seen[job.key] = job

    def __len__(self) -> int:
        return len(self.jobs)

    @classmethod
    def grid(
        cls,
        workloads: Sequence[str],
        simulators: Sequence[str] = ("fast", "slow", "baseline"),
        scale: str = "test",
        params=None,
        include_native: bool = False,
        name: str = "campaign",
        backend: str = "fork",
    ) -> "Campaign":
        """The common workload × simulator cross-product campaign."""
        jobs = []
        for workload in workloads:
            if include_native:
                jobs.append(Job(workload=workload, simulator="native",
                                scale=scale))
            for simulator in simulators:
                jobs.append(Job(workload=workload, simulator=simulator,
                                scale=scale, params=params))
        return cls(jobs=tuple(jobs), name=name, backend=backend)


@dataclass
class CampaignResult:
    """Merged results of one campaign run, in campaign (job) order."""

    campaign: Campaign
    results: List[JobResult]
    wall_seconds: float = 0.0
    workers: int = 0
    #: Executor-backend mechanism counters of the run
    #: (``{"backend": name, "forks": …, "steals": …}``; empty on the
    #: serial path) — host diagnostics, surfaced in the campaign-level
    #: metrics record, never in canonical output.
    backend_metrics: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_key: Dict[str, JobResult] = {}
        for result in self.results:
            self._by_key[result.key] = result

    def __getitem__(self, key: str) -> JobResult:
        return self._by_key[key]

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failed(self) -> List[JobResult]:
        return [result for result in self.results if not result.ok]

    def canonical_dict(self) -> Dict[str, object]:
        """Host-independent merged payload, in campaign order.

        Deliberately excludes the backend, worker count, and cache
        tiering — placement is invisible in canonical output.
        """
        return {
            "format_version": FORMAT_VERSION,
            "name": self.campaign.name,
            "jobs": [result.canonical() for result in self.results],
        }

    def canonical_json(self) -> str:
        """The byte-identical merged document (sorted keys, indented)."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          indent=2) + "\n"

    def campaign_metrics_record(self) -> Dict[str, object]:
        """The campaign-level summary record closing a metrics stream.

        Carries the run's wall time, worker count, and the executor
        backend's mechanism counters (forks/steals/respawns) — the
        uniform home for host-side mechanism metrics, whichever
        backend ran the jobs. Schema
        ``repro.campaign/campaign-metrics/v1``.
        """
        return stamp(CAMPAIGN_METRICS_SCHEMA, {
            "name": self.campaign.name,
            "jobs": len(self.results),
            "failed": len(self.failed),
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "backend": {str(name): self.backend_metrics[name]
                        for name in sorted(self.backend_metrics)},
        })

    def metrics_jsonl(self) -> str:
        """One JSON line of structured metrics per job, plus one
        campaign-level summary line.

        Per-job records carry
        ``"schema": "repro.campaign/job-metrics/v3"``; the closing
        line carries ``repro.campaign/campaign-metrics/v1`` with the
        backend mechanism counters. Everything validates under
        ``python -m repro.obs`` (see docs/campaign.md for the field
        inventory).
        """
        lines = [
            json.dumps(result.metrics_record(), sort_keys=True,
                       default=str)
            for result in self.results
        ]
        lines.append(json.dumps(self.campaign_metrics_record(),
                                sort_keys=True, default=str))
        return "\n".join(lines) + ("\n" if lines else "")


@dataclass
class _Pending:
    index: int
    job: Job
    attempt: int = 1
    ready_at: float = 0.0


class CampaignCancelled(RuntimeError):
    """Raised internally to unwind a cancelled campaign run."""


class CampaignRunner:
    """Executes campaigns; see the module docstring for semantics."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.25,
        sink: Optional[ProgressSink] = None,
        mp_context: Optional[object] = None,
        obs=None,
        backend: Union[str, ExecutorBackend, None] = None,
        shared_cache_dir: Optional[str] = None,
        journal: Optional[str] = None,
        resume: Optional[str] = None,
        hang_after: Optional[float] = None,
        poison_threshold: int = 3,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        if hang_after is not None and hang_after <= 0:
            raise ValueError("hang_after must be > 0")
        if (journal is not None and resume is not None
                and journal != resume):
            raise ValueError(
                "journal and resume must name the same file when both "
                "are given (a resumed run keeps appending in place)")
        self.workers = workers
        self.store_spec = StoreSpec(cache_dir=cache_dir,
                                    shared_dir=shared_cache_dir)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        #: Durable journal path (``--journal``); every submit/outcome
        #: boundary appends a fsync'd record here. ``resume`` implies
        #: journalling to the same file.
        self.journal_path = journal if journal is not None else resume
        #: Journal to replay before running (``--resume``): completed
        #: jobs are verified against the campaign and skipped.
        self.resume_path = resume
        #: Supervisor hang budget (seconds): workers silent longer are
        #: presumed hung and replaced; None disables (the default).
        self.hang_after = hang_after
        #: Worker crashes per job key before the job is quarantined as
        #: poison (``status="poisoned"``) instead of retried further.
        self.poison_threshold = poison_threshold
        #: Jobs skipped via journal replay on the last :meth:`run`.
        self.resumed = 0
        self._journal: Optional[CampaignJournal] = None
        self._crash_counts: Dict[str, int] = {}
        self._durable_outcomes = 0
        self.obs = ensure_observer(obs)
        #: Backend override; None defers to ``Campaign.backend``.
        self.backend = backend
        if isinstance(backend, str):
            validate_backend(backend)
        self.sink = sink if sink is not None else NullSink()
        if self.obs.enabled:
            # Telemetry rides the same event stream the progress sinks
            # see; job lifecycle becomes instants + outcome metrics.
            self.sink = TeeSink(self.sink, ObsSink(self.obs))
        self._mp = mp_context
        #: Mechanism counters of the backend that ran the last
        #: campaign (forks/steals/respawns/…) — host diagnostics.
        self.backend_metrics: Dict[str, object] = {}
        #: Worker telemetry blobs collected during the current run
        #: (observed backend paths only), merged after the run.
        self._telemetry: List[Dict[str, object]] = []
        self._cancel = threading.Event()

    @property
    def cache_dir(self) -> Optional[str]:
        """The local cache tier's directory (compat accessor)."""
        return self.store_spec.cache_dir

    # ------------------------------------------------------------------

    def cancel(self) -> None:
        """Ask a run in progress (possibly on another thread) to stop.

        Jobs not yet finished come back ``status="cancelled"``; jobs
        already merged keep their results. Idempotent; harmless when
        nothing is running.
        """
        self._cancel.set()

    def _check_cancelled(self) -> None:
        if self._cancel.is_set():
            raise CampaignCancelled()

    def run(self, campaign: Campaign) -> CampaignResult:
        """Execute every job; merged results come back in job order.

        With ``resume=`` set, the journal at that path is replayed
        first: recorded job keys are verified against *campaign*
        (:func:`~repro.campaign.supervise.verify_resume`), jobs with a
        durable terminal outcome are skipped, and their recorded
        results merge in place — byte-identical to an uninterrupted
        run. With ``journal=`` set, every attempt and outcome boundary
        appends a durable record for a later resume.
        """
        backend_name = (self.backend if self.backend is not None
                        else campaign.backend)
        self._cancel.clear()
        self.backend_metrics = {}
        self._telemetry = []
        self._crash_counts = {}
        self._durable_outcomes = 0
        resumed = self._load_resume(campaign)
        self.resumed = len(resumed)
        self._journal = (CampaignJournal(self.journal_path)
                         if self.journal_path is not None else None)
        try:
            if self._journal is not None:
                if self._journal.records_written == 0:
                    self._journal.append(
                        "campaign-open", name=campaign.name,
                        backend=(backend_name
                                 if isinstance(backend_name, str)
                                 else backend_name.name),
                        jobs=[job.key for job in campaign.jobs],
                    )
                else:
                    self._journal.append("campaign-resume",
                                         name=campaign.name,
                                         skipped=len(resumed))
            self.sink.emit(
                "campaign-start", name=campaign.name, jobs=len(campaign),
                workers=self.workers, cache_dir=self.store_spec.cache_dir,
                shared_cache_dir=self.store_spec.shared_dir,
                backend=(backend_name if isinstance(backend_name, str)
                         else backend_name.name),
            )
            for index in sorted(resumed):
                replayed = resumed[index]
                self.sink.emit("job-resumed", key=replayed.key,
                               status=replayed.status,
                               attempt=replayed.attempts)
            started = time.monotonic()  # repro-lint: disable=det/time-dependent
            with self.obs.span("campaign.run", cat="campaign",
                               campaign=campaign.name, jobs=len(campaign),
                               workers=self.workers):
                if self.workers == 0:
                    results = self._run_inline(campaign, resumed)
                else:
                    results = self._run_backend(campaign, backend_name,
                                                resumed)
            if self._telemetry:
                # Shipped worker blobs → one campaign-wide registry and a
                # multi-lane trace, in deterministic (job_key, attempt)
                # order — see repro.obs.worker. Never touches results.
                with self.obs.span("campaign.merge_telemetry",
                                   cat="campaign",
                                   blobs=len(self._telemetry)):
                    merge_telemetry(self.obs, self._telemetry)
                self._telemetry = []
            wall = time.monotonic() - started  # repro-lint: disable=det/time-dependent
            outcome = CampaignResult(
                campaign=campaign, results=results, wall_seconds=wall,
                workers=self.workers,
                backend_metrics=dict(self.backend_metrics),
            )
            for result in outcome.results:
                # One event per job in merge (campaign) order — the
                # ordered completion feed handle.events() subscribers and
                # SSE bridges consume.
                self.sink.emit(
                    "job-merged", key=result.key, status=result.status,
                    attempts=result.attempts, worker=result.worker,
                )
            self.sink.emit(
                "campaign-end", name=campaign.name, jobs=len(campaign),
                failed=len(outcome.failed), wall_seconds=round(wall, 3),
            )
            if self._journal is not None:
                # Terminal record: distinguishes a run that *finished*
                # (even cancelled — jobs not run are recorded as such)
                # from a journal cut short by a crash.
                self._journal.append(
                    "campaign-cancelled" if self._cancel.is_set()
                    else "campaign-end",
                    name=campaign.name, failed=len(outcome.failed),
                )
            return outcome
        finally:
            if self._journal is not None:
                self._journal.close()
                self._journal = None

    def _load_resume(self, campaign: Campaign) -> Dict[int, JobResult]:
        """Replay + verify the resume journal; index → recorded result.

        A missing or empty journal resumes as a fresh run (the crash
        may have come before anything durable landed).
        """
        if self.resume_path is None or not os.path.exists(self.resume_path):
            return {}
        replay = read_journal(self.resume_path)
        verify_resume(replay, campaign.name,
                      [job.key for job in campaign.jobs])
        return {
            index: replay.outcomes[job.key]
            for index, job in enumerate(campaign.jobs)
            if job.key in replay.outcomes
        }

    def _journal_outcome(self, result: JobResult) -> None:
        """Durably record one terminal job outcome.

        Also drives the engine-kill chaos hook, which counts *durable*
        outcomes — the kill always lands just after a record the resume
        path can replay.
        """
        if self._journal is None:
            return
        self._journal.append("outcome", key=result.key,
                             status=result.status,
                             attempts=result.attempts, result=result)
        self._durable_outcomes += 1
        plan = faults.active_plan()
        if plan is not None:
            faults.maybe_kill_engine(self._durable_outcomes, plan)

    # -- serial in-process path -----------------------------------------

    def _run_inline(self, campaign: Campaign,
                    resumed: Optional[Dict[int, JobResult]] = None,
                    ) -> List[JobResult]:
        resumed = resumed or {}
        store = self.store_spec.build(obs=self.obs, sink=self.sink)
        results = []
        for position, job in enumerate(campaign.jobs):
            if position in resumed:
                results.append(resumed[position])
                continue
            if self._cancel.is_set():
                results.extend(
                    resumed.get(late_position)
                    or self._cancelled_result(campaign.jobs[late_position])
                    for late_position in range(position, len(campaign))
                )
                self.sink.emit("campaign-cancelled", name=campaign.name,
                               remaining=len(campaign) - position)
                break
            self.sink.emit("job-start", key=job.key, attempt=1)
            if self._journal is not None:
                self._journal.append("attempt", key=job.key, attempt=1)
            with self.obs.span("campaign.job", cat="campaign",
                               key=job.key):
                outcome = execute_job(job, store, obs=self.obs)
            self._emit_outcome(outcome)
            self._journal_outcome(outcome)
            results.append(outcome)
        return results

    # -- backend pool path ----------------------------------------------

    def _run_backend(self, campaign: Campaign, backend_name,
                     resumed: Optional[Dict[int, JobResult]] = None,
                     ) -> List[JobResult]:
        resumed = resumed or {}
        backend = make_backend(backend_name)
        backend.start(BackendContext(
            workers=self.workers, store_spec=self.store_spec,
            timeout=self.timeout, obs=self.obs, sink=self.sink,
            mp_context=self._mp,
            telemetry=TelemetrySpec.from_observer(self.obs),
            hang_after=self.hang_after,
        ))
        pending: List[_Pending] = [
            _Pending(index=i, job=job)
            for i, job in enumerate(campaign.jobs)
            if i not in resumed
        ]
        in_flight: Dict[int, Attempt] = {}
        finished: Dict[int, JobResult] = dict(resumed)
        try:
            while pending or in_flight:
                self._check_cancelled()
                now = time.monotonic()  # repro-lint: disable=det/time-dependent
                self._launch_ready(backend, pending, in_flight, now)
                self._wait(backend, pending, in_flight, now)
                now = time.monotonic()  # repro-lint: disable=det/time-dependent
                self._collect(backend, pending, in_flight, finished, now)
        except CampaignCancelled:
            self.sink.emit(
                "campaign-cancelled", name=campaign.name,
                remaining=len(campaign.jobs) - len(finished),
            )
        finally:
            backend.shutdown()
            counters = backend.metrics()
            self.backend_metrics = dict(backend=backend.name,
                                        **counters)
            # Mirror mechanism counters into the merged registry after
            # shutdown: the backend's internal counters are the single
            # source of truth, so the obs view can never disagree with
            # metrics() (the old per-event bumps could — see the
            # queue backend's steal accounting).
            for name in sorted(counters):
                self.obs.counter(f"backend.{backend.name}.{name}",
                                 int(counters[name]))
        return [
            finished.get(i) if finished.get(i) is not None
            else self._cancelled_result(job)
            for i, job in enumerate(campaign.jobs)
        ]

    def _cancelled_result(self, job: Job) -> JobResult:
        return JobResult(job=job, status="cancelled",
                         error="cancelled before completion")

    def _launch_ready(self, backend: ExecutorBackend,
                      pending: List[_Pending],
                      in_flight: Dict[int, Attempt], now: float) -> None:
        while backend.active() < backend.capacity():
            slot_item = None
            for item in pending:
                if item.ready_at <= now:
                    slot_item = item
                    break
            if slot_item is None:
                return
            pending.remove(slot_item)
            deadline = (now + self.timeout
                        if self.timeout is not None else None)
            attempt = Attempt(index=slot_item.index, job=slot_item.job,
                              attempt=slot_item.attempt,
                              deadline=deadline)
            backend.submit(attempt)
            in_flight[attempt.index] = attempt
            self.sink.emit("job-start", key=slot_item.job.key,
                           attempt=slot_item.attempt)
            if self._journal is not None:
                self._journal.append("attempt", key=slot_item.job.key,
                                     attempt=slot_item.attempt)

    def _wait(self, backend: ExecutorBackend, pending: List[_Pending],
              in_flight: Dict[int, Attempt], now: float) -> None:
        """Block until a result, a deadline, or a backoff expiry."""
        bounds = [attempt.deadline for attempt in in_flight.values()
                  if attempt.deadline is not None]
        bounds.extend(item.ready_at for item in pending
                      if item.ready_at > now)
        if self.hang_after is not None and in_flight:
            # Wake at least twice per hang budget so the supervisor's
            # reap sweep runs even when nothing else bounds the wait.
            bounds.append(now + self.hang_after / 2.0)
        timeout = None
        if bounds:
            timeout = max(min(bounds) - now, 0.0)
            if timeout == 0.0:
                # A bound already passed; the next reap resolves it.
                # The tiny floor keeps the loop from spinning in the
                # window where it cannot.
                timeout = 0.02
        if self._cancel.is_set():
            return
        backend.wait(timeout)

    def _collect(self, backend: ExecutorBackend,
                 pending: List[_Pending], in_flight: Dict[int, Attempt],
                 finished: Dict[int, JobResult], now: float) -> None:
        for outcome in backend.reap(now):
            attempt = outcome.attempt
            in_flight.pop(attempt.index, None)

            if outcome.result is not None:
                outcome.result.attempts = attempt.attempt
                blob = outcome.result.telemetry
                if blob is not None:
                    # Strip the shipped blob off the result *before*
                    # anything canonical can see it; the engine's
                    # attempt number is authoritative for merge order.
                    outcome.result.telemetry = None
                    if self.obs.enabled and isinstance(blob, dict):
                        blob["attempt"] = attempt.attempt
                        self._telemetry.append(blob)
                if outcome.result.worker is None:
                    label = (blob.get("worker")
                             if isinstance(blob, dict) else None)
                    if label is None and outcome.worker is not None:
                        label = str(outcome.worker)
                    outcome.result.worker = label
                self._emit_outcome(outcome.result, worker=outcome.worker)
                finished[attempt.index] = outcome.result
                self._journal_outcome(outcome.result)
                continue

            # Infrastructure failure: quarantine a poison job, else
            # retry with jittered backoff, else fail.
            failure = outcome.failure or "worker lost"
            kind = outcome.failure_kind or classify_failure(failure)
            if kind == "crash":
                key = attempt.job.key
                crashes = self._crash_counts.get(key, 0) + 1
                self._crash_counts[key] = crashes
                if crashes >= self.poison_threshold:
                    # A job that keeps killing workers is isolated
                    # instead of burning the retry budget (and more
                    # workers) on it; sibling jobs keep running.
                    result = JobResult(
                        job=attempt.job, status="poisoned",
                        attempts=attempt.attempt,
                        error=str(PoisonedJobError(key, crashes, failure)),
                    )
                    self._emit_outcome(result, worker=outcome.worker)
                    finished[attempt.index] = result
                    self._journal_outcome(result)
                    continue
            if attempt.attempt <= self.retries:
                delay = retry_delay(self.backoff, attempt.job.key,
                                    attempt.attempt)
                self.sink.emit(
                    "job-retry", key=attempt.job.key,
                    attempt=attempt.attempt, error=failure,
                    backoff_seconds=round(delay, 4),
                )
                pending.append(_Pending(
                    index=attempt.index, job=attempt.job,
                    attempt=attempt.attempt + 1, ready_at=now + delay,
                ))
            else:
                result = JobResult(
                    job=attempt.job, status="failed",
                    attempts=attempt.attempt, error=failure,
                )
                self._emit_outcome(result, worker=outcome.worker)
                finished[attempt.index] = result
                self._journal_outcome(result)

    def _emit_outcome(self, outcome: JobResult,
                      worker: Optional[object] = None) -> None:
        if outcome.ok:
            kind = "job-ok"
        elif outcome.status == "poisoned":
            kind = "job-poisoned"
        else:
            kind = "job-failed"
        fields = {
            "key": outcome.key,
            "attempt": outcome.attempts,
            "seconds": round(outcome.host_seconds, 3),
        }
        if worker is not None:
            fields["worker"] = worker
        if outcome.result is not None:
            fields["cycles"] = outcome.result.cycles
            fields["instructions"] = outcome.result.instructions
        if outcome.error is not None:
            fields["error"] = outcome.error
        self.sink.emit(kind, **fields)


def run_jobs(
    jobs: Sequence[Job],
    workers: int = 1,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    sink: Optional[ProgressSink] = None,
    name: str = "campaign",
    backend: str = "fork",
    shared_cache_dir: Optional[str] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
    hang_after: Optional[float] = None,
) -> CampaignResult:
    """One-call convenience over Campaign + CampaignRunner."""
    runner = CampaignRunner(
        workers=workers, cache_dir=cache_dir, timeout=timeout,
        retries=retries, sink=sink,
        shared_cache_dir=shared_cache_dir,
        journal=journal, resume=resume, hang_after=hang_after,
    )
    return runner.run(Campaign(jobs=tuple(jobs), name=name,
                               backend=backend))

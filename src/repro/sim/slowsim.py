"""SlowSim — FastSim with memoization disabled (paper §5).

*"SlowSim is FastSim with memoization disabled — the fast-forwarding
simulator was turned off and no configurations were encoded or put in
the p-action cache."* It still uses speculative direct-execution, so
SlowSim / FastSim is exactly the speedup attributable to memoization
(Table 2), and SlowSim / SimpleScalar-surrogate is the speedup from
direct-execution alone (Table 3).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.branch.predictor import BranchPredictor
from repro.errors import SimulationError
from repro.isa.program import Executable
from repro.obs.core import ensure_observer
from repro.sim.results import SimulationResult
from repro.sim.world import World
from repro.uarch.detailed import DetailedSimulator
from repro.uarch.interactions import (
    CycleBoundary,
    Finished,
    GetControl,
    IssueLoad,
    IssueStore,
    PollLoad,
    Retire,
    Rollback,
)
from repro.uarch.params import ProcessorParams


class SlowSim:
    """Direct-execution out-of-order simulation, no memoization."""

    name = "SlowSim"

    def __init__(
        self,
        executable: Executable,
        params: Optional[ProcessorParams] = None,
        predictor: Optional[BranchPredictor] = None,
        obs=None,
    ):
        self.executable = executable
        self.params = params if params is not None else ProcessorParams.r10k()
        self.obs = ensure_observer(obs)
        self.world = World(executable, self.params, predictor)
        self.simulator = DetailedSimulator(executable, self.params)

    def run(self, max_cycles: int = 50_000_000) -> SimulationResult:
        """Simulate to completion; returns the result record."""
        world = self.world
        generator = self.simulator.run()
        obs = self.obs
        obs_on = obs.enabled
        started = time.perf_counter()
        outcome = None
        finished = False
        with obs.span("sim.run", cat="sim", simulator=self.name):
            while not finished:
                try:
                    request = generator.send(outcome)
                except StopIteration:
                    break
                outcome = None
                if type(request) is CycleBoundary:
                    world.advance_cycles(1)
                    if world.cycle > max_cycles:
                        raise SimulationError(
                            f"exceeded {max_cycles} simulated cycles"
                        )
                    if obs_on:
                        obs.sample_pipeline(
                            world.cycle, self.simulator.occupancy
                        )
                elif type(request) is GetControl:
                    outcome = world.get_control()
                elif type(request) is IssueLoad:
                    outcome = world.issue_load(request.ordinal)
                elif type(request) is PollLoad:
                    outcome = world.poll_load(request.ordinal)
                elif type(request) is IssueStore:
                    outcome = world.issue_store(request.ordinal)
                elif type(request) is Retire:
                    world.retire(request)
                elif type(request) is Rollback:
                    world.rollback(request)
                elif type(request) is Finished:
                    finished = True
                else:  # pragma: no cover - protocol violation
                    raise SimulationError(f"unknown request {request!r}")
        elapsed = time.perf_counter() - started
        if obs_on:
            obs.gauge("sim.cycles", world.stats.cycles)
            obs.gauge("sim.instructions", world.stats.retired_instructions)
            obs.gauge("frontend.rollbacks", world.frontend.rollbacks)
        return self._result(elapsed)

    def _result(self, elapsed: float) -> SimulationResult:
        world = self.world
        frontend = world.frontend
        return SimulationResult(
            name=self.name,
            cycles=world.stats.cycles,
            instructions=world.stats.retired_instructions,
            output=list(world.program_output),
            sim_stats=world.stats,
            cache_stats=world.cache.stats,
            host_seconds=elapsed,
            frontend_instructions=frontend.executed_instructions,
            rollbacks=frontend.rollbacks,
        )

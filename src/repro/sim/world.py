"""The world adapter — everything outside the memoized μ-architecture.

FastSim's p-action cache records how the μ-architecture simulator
interacts with the rest of the system; the :class:`World` is that rest:
the speculative direct-execution frontend, the cache simulator, the
simulation cycle counter, and the statistics. Both the detailed
recorder and the fast-forwarding replayer drive the *same* world
methods in the same order, which is why replay "produces exactly the
same results as the detailed simulation".

The world also owns the **queue cursors** that turn the
position-independent ordinals inside recorded actions into absolute
frontend-queue indices:

* ``lq_base`` / ``sq_base`` / ``cf_base`` count retired loads / stores /
  control instructions — an ordinal is relative to these;
* ``cf_fetched`` is the index of the next control record fetch will
  consume. The frontend is kept exactly **one control event ahead** of
  fetch (it runs when a consume leaves it level), which guarantees every
  instruction fetch can see has already been functionally executed and
  its ``lQ``/``sQ`` entries exist.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.branch.predictor import BimodalPredictor, BranchPredictor
from repro.cache.hierarchy import MemorySystem
from repro.emulator.frontend import SpeculativeFrontend
from repro.emulator.queues import ControlRecord
from repro.errors import SimulationError
from repro.isa.program import Executable
from repro.uarch.interactions import Retire, Rollback
from repro.uarch.params import ProcessorParams


class SimStats:
    """Processor statistics, updated identically by record and replay."""

    __slots__ = (
        "cycles", "retired_instructions", "retired_loads", "retired_stores",
        "retired_branches", "retired_controls", "mispredictions",
        "squashed_entries",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __eq__(self, other) -> bool:
        if not isinstance(other, SimStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        # Display-only; insertion order here is the fixed __slots__
        # order, never replay state.
        fields = ", ".join(
            f"{k}={v}" for k, v in
            self.as_dict().items()  # repro-lint: disable=det/dict-value-iteration
        )
        return f"SimStats({fields})"


class World:
    """Frontend + cache + cycle counter + cursors + statistics."""

    def __init__(
        self,
        executable: Executable,
        params: Optional[ProcessorParams] = None,
        predictor: Optional[BranchPredictor] = None,
        state=None,
        memory_system: Optional[MemorySystem] = None,
        frontend_max_instructions: Optional[int] = None,
        threaded_frontend: bool = True,
        l1_filter: bool = True,
    ):
        """*threaded_frontend* and *l1_filter* are host-side speed knobs
        (threaded-code block dispatch; DEW-style L1 load filter). Both
        default on and neither changes canonical results — they exist
        for ablation benchmarks."""
        self.params = params if params is not None else ProcessorParams.r10k()
        if predictor is None:
            predictor = BimodalPredictor(self.params.bht_entries)
        self.predictor = predictor
        # The frontend runs one control event ahead of fetch, so it can
        # hold one checkpoint beyond the pipeline's speculation limit.
        frontend_kwargs = {}
        if frontend_max_instructions is not None:
            frontend_kwargs["max_instructions"] = frontend_max_instructions
        self.frontend = SpeculativeFrontend(
            executable, predictor,
            bq_capacity=self.params.max_spec_branches + 1,
            state=state,
            threaded=threaded_frontend,
            **frontend_kwargs,
        )
        self.cache = (memory_system if memory_system is not None
                      else MemorySystem(self.params.memory,
                                        l1_filter=l1_filter))
        self.stats = SimStats()
        self.cycle = 0
        self.lq_base = 0
        self.sq_base = 0
        self.cf_base = 0
        self.cf_fetched = 0
        self._tokens: Dict[int, int] = {}  # absolute lQ index -> cache token
        # Hot-path aliases: the frontend queues are append-only lists
        # truncated in place (``del list[n:]``), so their identities are
        # stable for the lifetime of the world.
        queues = self.frontend.queues
        self._lq = queues.loads
        self._sq = queues.stores
        self._cf = queues.controls
        # Prime the frontend: one control event ahead of fetch.
        self._ensure_frontend_ahead()

    # ------------------------------------------------------------------

    def _ensure_frontend_ahead(self) -> None:
        controls = self._cf
        while len(controls) <= self.cf_fetched:
            self.frontend.run_one_event()

    def advance_cycles(self, count: int) -> None:
        """Advance simulated time (cycle boundaries / AdvanceCycles)."""
        self.cycle += count
        self.stats.cycles += count

    # -- control flow ----------------------------------------------------

    def get_control(self) -> ControlRecord:
        """Consume the next control record for fetch; keep one ahead."""
        controls = self._cf
        fetched = self.cf_fetched
        if fetched >= len(controls):
            raise SimulationError(
                "fetch consumed past the frontend "
                f"(index {fetched}, have {len(controls)})"
            )
        record = controls[fetched]
        self.cf_fetched = fetched + 1
        if len(controls) <= fetched + 1:
            self.frontend.run_one_event()
        return record

    # -- memory ------------------------------------------------------------

    def issue_load(self, ordinal: int) -> int:
        """Issue the load with iQ ordinal *ordinal* to the cache."""
        index = self.lq_base + ordinal
        record = self._lq[index]
        token, interval = self.cache.issue_load(
            record.address, record.width, self.cycle
        )
        self._tokens[index] = token
        return interval

    def poll_load(self, ordinal: int) -> int:
        """Poll a previously issued load; 0 = ready."""
        index = self.lq_base + ordinal
        try:
            token = self._tokens[index]
        except KeyError:
            raise SimulationError(
                f"poll for load {index} which was never issued"
            ) from None
        reply = self.cache.poll_load(token, self.cycle)
        if reply == 0:
            del self._tokens[index]
        return reply

    def issue_store(self, ordinal: int) -> int:
        """Issue the store with iQ ordinal *ordinal* to the cache."""
        index = self.sq_base + ordinal
        record = self._sq[index]
        return self.cache.issue_store(record.address, record.width, self.cycle)

    # -- retirement and rollback ---------------------------------------------

    def retire(self, request: Retire) -> None:
        """Advance cursors and statistics for retired instructions."""
        self.lq_base += request.loads
        self.sq_base += request.stores
        self.cf_base += request.controls
        stats = self.stats
        stats.retired_instructions += request.count
        stats.retired_loads += request.loads
        stats.retired_stores += request.stores
        stats.retired_branches += request.branches
        stats.retired_controls += request.controls

    def rollback(self, request: Rollback) -> None:
        """A mispredicted branch resolved: roll the frontend back."""
        control_index = self.cf_base + request.control_ordinal
        record = self._cf[control_index]
        # Cancel cache bookkeeping for squashed (wrong-path) loads.
        squashed_tokens = [
            index for index in self._tokens if index >= record.lq_len
        ]
        for index in squashed_tokens:
            self.cache.cancel_load(self._tokens.pop(index))
        self.frontend.rollback_to(control_index)
        self.cf_fetched = control_index + 1
        self._ensure_frontend_ahead()
        stats = self.stats
        stats.mispredictions += 1
        stats.squashed_entries += (
            request.squashed_loads + request.squashed_stores
            + request.squashed_controls
        )

    # ------------------------------------------------------------------

    @property
    def program_output(self):
        """Values the program emitted via ``out``."""
        return self.frontend.state.output

"""Top-level simulators: FastSim, SlowSim, and the integrated baseline."""

from repro.sim.results import MemoStats, SimulationResult
from repro.sim.slowsim import SlowSim
from repro.sim.world import SimStats, World

__all__ = [
    "MemoStats",
    "SimulationResult",
    "SimStats",
    "SlowSim",
    "World",
]


def __getattr__(name):
    if name == "FastSim":
        from repro.sim.fastsim import FastSim

        return FastSim
    if name == "IntegratedSimulator":
        from repro.sim.baseline import IntegratedSimulator

        return IntegratedSimulator
    if name in ("SamplingSimulator", "SamplingResult"):
        from repro.sim import sampling

        return getattr(sampling, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")

"""Trace-sampling simulation — the accuracy-trading alternative (§2).

The paper positions FastSim against techniques that *"trade-off
accuracy for speed"*, citing Conte et al.'s sampled simulation of an
out-of-order processor and its "state loss between sample clusters"
problem. This module implements that alternative so the trade-off can
be measured: alternate fast functional skipping with detailed
measurement windows, then extrapolate the cycle count.

The comparison the benchmark draws (``bench_sampling_accuracy.py``):
sampling gains speed by *estimating* — its error grows as windows
shrink — while fast-forwarding gains more speed with **zero** error.

Mechanics per window:

1. skip ``period - window`` instructions with the plain interpreter,
   optionally *functionally warming* the shared cache tags with every
   load/store (``warm_caches=True``, the Conte-style mitigation of the
   state-loss problem — ablate it off to see why it matters);
2. run a fresh detailed pipeline over the live architectural state
   until ``window`` instructions retire, discarding the first
   ``warmup`` instructions' cycles from the measurement (pipeline
   state loss is mitigated by warmup; cache state carries over);
3. roll back any outstanding wrong-path speculation so the
   architectural stream stays exact, and continue.

The program still *executes* completely and exactly (outputs are
checked); only the cycle count is an estimate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.branch.predictor import BimodalPredictor, BranchPredictor
from repro.emulator.functional import Interpreter
from repro.emulator.state import ArchState
from repro.errors import SimulationError
from repro.isa.program import Executable
from repro.sim.world import World
from repro.uarch.detailed import DetailedSimulator
from repro.uarch.interactions import (
    CycleBoundary,
    Finished,
    GetControl,
    IssueLoad,
    IssueStore,
    PollLoad,
    Retire,
    Rollback,
)
from repro.uarch.params import ProcessorParams


@dataclass
class WindowMeasurement:
    """One detailed sample window."""

    start_instruction: int
    instructions: int  #: measured (post-warmup) instructions
    cycles: int  #: measured (post-warmup) cycles


@dataclass
class SamplingResult:
    """Outcome of a sampled simulation."""

    name: str
    estimated_cycles: float
    instructions: int  #: total committed instructions (exact)
    output: List[int]  #: program output (exact)
    windows: List[WindowMeasurement] = field(default_factory=list)
    host_seconds: float = 0.0

    @property
    def measured_instructions(self) -> int:
        return sum(w.instructions for w in self.windows)

    @property
    def measured_fraction(self) -> float:
        if not self.instructions:
            return 0.0
        return self.measured_instructions / self.instructions

    def error_vs(self, exact_cycles: int) -> float:
        """Relative cycle-count error against an exact simulation."""
        if not exact_cycles:
            return 0.0
        return abs(self.estimated_cycles - exact_cycles) / exact_cycles


class SamplingSimulator:
    """Sampled out-of-order simulation with functional fast-skipping."""

    name = "Sampling"

    def __init__(
        self,
        executable: Executable,
        params: Optional[ProcessorParams] = None,
        predictor: Optional[BranchPredictor] = None,
        period: int = 2000,
        window: int = 400,
        warmup: Optional[int] = None,
        warm_caches: bool = True,
    ):
        if warmup is None:
            warmup = window // 4  # discard the cold-start quarter
        if not 0 < window <= period:
            raise ValueError("need 0 < window <= period")
        if not 0 <= warmup < window:
            raise ValueError("need 0 <= warmup < window")
        self.executable = executable
        self.params = params if params is not None else ProcessorParams.r10k()
        self.predictor = (predictor if predictor is not None
                          else BimodalPredictor(self.params.bht_entries))
        self.period = period
        self.window = window
        self.warmup = warmup
        self.warm_caches = warm_caches
        from repro.cache.hierarchy import MemorySystem

        #: One cache hierarchy shared by every window (tags persist;
        #: timing state is reset per window).
        self.memory_system = MemorySystem(self.params.memory)

    # ------------------------------------------------------------------

    def run(self, max_instructions: int = 50_000_000) -> SamplingResult:
        started = time.perf_counter()
        state = ArchState.boot(self.executable)
        interpreter = Interpreter(self.executable, state)
        windows: List[WindowMeasurement] = []
        skip = self.period - self.window
        self._max_instructions = max_instructions

        while not state.halted:
            self._functional_skip(interpreter, skip, max_instructions)
            if state.halted:
                break
            if state.instret > max_instructions:
                raise SimulationError(
                    f"exceeded {max_instructions} instructions"
                )
            windows.append(self._detailed_window(state))
        elapsed = time.perf_counter() - started

        total = state.instret
        measured_insts = sum(w.instructions for w in windows)
        measured_cycles = sum(w.cycles for w in windows)
        if measured_insts:
            cpi = measured_cycles / measured_insts
        else:
            # Program shorter than one skip: fall back to a nominal CPI.
            cpi = 1.0
        return SamplingResult(
            name=self.name,
            estimated_cycles=cpi * total,
            instructions=total,
            output=list(state.output),
            windows=windows,
            host_seconds=elapsed,
        )

    # ------------------------------------------------------------------

    def _functional_skip(self, interpreter: Interpreter, count: int,
                         max_instructions: int) -> None:
        state = interpreter.state
        memory_system = self.memory_system
        warm = self.warm_caches
        executed = 0
        while executed < count and not state.halted:
            instr = interpreter.step()
            executed += 1
            if warm and interpreter.last_mem_addr is not None:
                memory_system.warm_access(interpreter.last_mem_addr,
                                          instr.is_store)
            if state.instret > max_instructions:
                raise SimulationError(
                    f"exceeded {max_instructions} instructions"
                )

    def _detailed_window(self, state: ArchState) -> WindowMeasurement:
        """Measure one window of detailed execution on the live state."""
        start_instret = state.instret
        simulator = DetailedSimulator(self.executable, self.params)
        simulator.fetch_pc = state.pc
        self.memory_system.reset_timing()
        # The frontend inherits the overall instruction budget, so a
        # non-terminating program cannot hang a measurement window.
        budget = max(self._max_instructions - state.instret,
                     self.window * 4)
        world = World(self.executable, self.params, self.predictor,
                      state=state, memory_system=self.memory_system,
                      frontend_max_instructions=budget)
        generator = simulator.run()
        outcome = None
        warmup_cycles: Optional[int] = None
        retired = 0
        cycle_guard = self.window * 1000 + 100_000
        while retired < self.window:
            if world.cycle > cycle_guard:  # pragma: no cover - safety net
                raise SimulationError("sample window made no progress")
            try:
                request = generator.send(outcome)
            except StopIteration:  # pragma: no cover - ends via Finished
                break
            outcome = None
            kind = type(request)
            if kind is CycleBoundary:
                world.advance_cycles(1)
            elif kind is GetControl:
                outcome = world.get_control()
            elif kind is IssueLoad:
                outcome = world.issue_load(request.ordinal)
            elif kind is PollLoad:
                outcome = world.poll_load(request.ordinal)
            elif kind is IssueStore:
                outcome = world.issue_store(request.ordinal)
            elif kind is Retire:
                world.retire(request)
                retired += request.count
                if warmup_cycles is None and retired >= self.warmup:
                    warmup_cycles = world.cycle
            elif kind is Rollback:
                world.rollback(request)
            elif kind is Finished:
                break
        generator.close()
        self._unwind_speculation(world)
        if warmup_cycles is None:
            warmup_cycles = 0
        measured = max(retired - self.warmup, 0) or retired
        cycles = world.cycle - warmup_cycles
        return WindowMeasurement(
            start_instruction=start_instret,
            instructions=measured,
            cycles=max(cycles, 1),
        )

    def _unwind_speculation(self, world: World) -> None:
        """Roll back outstanding wrong paths so the architectural state
        the next skip resumes from is clean (the frontend may have run
        ahead down mispredicted paths)."""
        frontend = world.frontend
        outstanding = frontend.bq.outstanding()
        if outstanding:
            frontend.rollback_to(outstanding[0])

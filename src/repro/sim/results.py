"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.hierarchy import CacheStats
from repro.sim.world import SimStats


@dataclass
class MemoStats:
    """Memoization measurements (Tables 4 and 5 and Figure 7).

    ``None``-like zeros for non-memoized runs.
    """

    #: Static configurations ever allocated.
    configs_allocated: int = 0
    #: Static actions ever allocated.
    actions_allocated: int = 0
    #: Modelled p-action cache bytes currently allocated.
    cache_bytes: int = 0
    #: Peak modelled p-action cache bytes.
    peak_cache_bytes: int = 0
    #: Dynamic actions executed during replay (fast-forwarding).
    actions_replayed: int = 0
    #: Dynamic configuration visits during replay.
    configs_replayed: int = 0
    #: Instructions retired while fast-forwarding.
    replayed_instructions: int = 0
    #: Instructions retired while running the detailed simulator.
    detailed_instructions: int = 0
    #: Cycles simulated while fast-forwarding.
    replayed_cycles: int = 0
    #: Cycles simulated by the detailed simulator.
    detailed_cycles: int = 0
    #: Number of record->replay transitions (fast-forward episodes).
    replay_episodes: int = 0
    #: Lengths (in actions) of each uninterrupted replay episode.
    chain_lengths: List[int] = field(default_factory=list)
    #: Times the replacement policy flushed / collected the cache.
    evictions: int = 0

    @property
    def detailed_fraction(self) -> float:
        """Fraction of instructions simulated in detail (Table 4)."""
        total = self.replayed_instructions + self.detailed_instructions
        if not total:
            return 0.0
        return self.detailed_instructions / total

    @property
    def actions_per_config(self) -> float:
        """Dynamic actions per configuration visit (Table 5)."""
        if not self.configs_replayed:
            return 0.0
        return self.actions_replayed / self.configs_replayed

    @property
    def cycles_per_config(self) -> float:
        """Dynamic cycles per configuration visit (Table 5)."""
        if not self.configs_replayed:
            return 0.0
        return self.replayed_cycles / self.configs_replayed

    @property
    def avg_chain_length(self) -> float:
        if not self.chain_lengths:
            return 0.0
        return sum(self.chain_lengths) / len(self.chain_lengths)

    @property
    def max_chain_length(self) -> int:
        return max(self.chain_lengths, default=0)

    def as_dict(self) -> Dict[str, object]:
        """Summary suitable for JSON metrics (chain list collapsed).

        Keys are explicitly sorted: these dicts are embedded in JSON
        documents that downstream tooling byte-compares, so insertion
        order is part of the contract (golden-tested).
        """
        return {
            "actions_allocated": self.actions_allocated,
            "actions_replayed": self.actions_replayed,
            "avg_chain_length": self.avg_chain_length,
            "cache_bytes": self.cache_bytes,
            "configs_allocated": self.configs_allocated,
            "configs_replayed": self.configs_replayed,
            "detailed_cycles": self.detailed_cycles,
            "detailed_fraction": self.detailed_fraction,
            "detailed_instructions": self.detailed_instructions,
            "evictions": self.evictions,
            "max_chain_length": self.max_chain_length,
            "peak_cache_bytes": self.peak_cache_bytes,
            "replay_episodes": self.replay_episodes,
            "replayed_cycles": self.replayed_cycles,
            "replayed_instructions": self.replayed_instructions,
        }


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    name: str
    cycles: int
    instructions: int
    #: Values emitted by the program's ``out`` instructions.
    output: List[int]
    sim_stats: SimStats
    cache_stats: CacheStats
    #: Wall-clock seconds the simulation took (host time).
    host_seconds: float = 0.0
    #: Instructions functionally executed by the frontend (wrong paths
    #: included); None for simulators without a decoupled frontend.
    frontend_instructions: Optional[int] = None
    #: Misprediction rollbacks performed by the frontend.
    rollbacks: int = 0
    memo: MemoStats = field(default_factory=MemoStats)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def kinsts_per_second(self) -> float:
        """Simulated Kinstructions per host second (Table 3's metric)."""
        if self.host_seconds <= 0:
            return 0.0
        return self.instructions / self.host_seconds / 1000.0

    def timing_equal(self, other: "SimulationResult") -> bool:
        """True when two runs produced identical simulated behaviour.

        This is the paper's headline invariant: memoized and detailed
        simulation agree on *all* simulated statistics, not just the
        cycle count.
        """
        return (
            self.cycles == other.cycles
            and self.instructions == other.instructions
            and self.output == other.output
            and self.sim_stats == other.sim_stats
            and self.cache_stats == other.cache_stats
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.cycles} cycles, {self.instructions} insts, "
            f"IPC {self.ipc:.2f}, {self.host_seconds:.2f}s host"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready record; keys explicitly sorted (golden-tested)."""
        return {
            "cache_stats": self.cache_stats.as_dict(),
            "cycles": self.cycles,
            "host_seconds": self.host_seconds,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "name": self.name,
            "output": list(self.output),
            "sim_stats": self.sim_stats.as_dict(),
        }

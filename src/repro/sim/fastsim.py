"""FastSim — speculative direct-execution plus memoized μ-architecture.

The complete system of the paper: the speculative frontend records
``lQ``/``sQ``/control-flow queues while the μ-architecture simulator's
behaviour is recorded into — and fast-forwarded from — the p-action
cache. Produces **exactly** the same cycle counts and statistics as
:class:`~repro.sim.slowsim.SlowSim` (asserted by the test suite), an
order of magnitude faster on loop-heavy code.

A :class:`~repro.memo.PActionCache` can be shared across runs (pass
``pcache=``) to start a run fully warm, and a replacement policy bounds
its memory (paper §4.3)::

    from repro import FastSim, assemble
    from repro.memo import FlushOnFullPolicy

    exe = assemble(source)
    result = FastSim(exe, policy=FlushOnFullPolicy(1 << 20)).run()

Pass ``audit_every=N`` (optionally with ``audit_seed``) to run under
the :class:`~repro.guard.GuardedEngine`, which audits sampled replay
episodes against detailed re-execution and quarantines corrupted
chains instead of replaying them (see docs/robustness.md).

Chain compilation of hot replay paths (:mod:`repro.memo.compile`) is
on by default; pass ``turbo=False`` to force the interpreted replay
loop, or a :class:`~repro.memo.TurboConfig` to tune the compile
threshold (see docs/performance.md). Both modes are bit-identical.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.branch.predictor import BranchPredictor
from repro.isa.program import Executable
from repro.memo.engine import FastForwardEngine
from repro.memo.pcache import PActionCache
from repro.memo.policies import ReplacementPolicy
from repro.obs.core import ensure_observer
from repro.sim.results import SimulationResult
from repro.sim.world import World
from repro.uarch.params import ProcessorParams


class FastSim:
    """Memoized out-of-order simulation (the paper's full system)."""

    name = "FastSim"

    def __init__(
        self,
        executable: Executable,
        params: Optional[ProcessorParams] = None,
        predictor: Optional[BranchPredictor] = None,
        policy: Optional[ReplacementPolicy] = None,
        pcache: Optional[PActionCache] = None,
        obs=None,
        audit_every: Optional[int] = None,
        audit_seed: int = 0,
        turbo=None,
        threaded_frontend: bool = True,
        l1_filter: bool = True,
        segstore=None,
    ):
        """*threaded_frontend* / *l1_filter* toggle the host-side speed
        layers (threaded-code dispatch, DEW-style L1 filter) — both
        default on, neither changes canonical results. *segstore*
        optionally carries persisted compiled segments
        (:class:`repro.memo.segstore.SegmentArchive`) installed into the
        p-cache before the run — see docs/performance.md."""
        self.executable = executable
        self.params = params if params is not None else ProcessorParams.r10k()
        self.obs = ensure_observer(obs)
        self.world = World(executable, self.params, predictor,
                           threaded_frontend=threaded_frontend,
                           l1_filter=l1_filter)
        self.segstore = segstore
        #: Install counters from the persisted-segment archive
        #: (set by :meth:`run` when *segstore* was given).
        self.segstore_stats = None
        if audit_every is not None:
            from repro.guard.engine import GuardedEngine

            self.engine = GuardedEngine(
                executable, self.world, pcache=pcache, policy=policy,
                obs=self.obs, audit_every=audit_every,
                audit_seed=audit_seed, turbo=turbo,
            )
        else:
            self.engine = FastForwardEngine(
                executable, self.world, pcache=pcache, policy=policy,
                obs=self.obs, turbo=turbo,
            )

    @property
    def pcache(self) -> PActionCache:
        """The p-action cache (reusable across FastSim instances)."""
        return self.engine.cache

    def run(self, max_cycles: int = 50_000_000) -> SimulationResult:
        """Simulate to completion; returns the result record."""
        # Host wall-clock feeds the *host-time* result fields only
        # (docs/performance.md); no simulated state ever reads it.
        started = time.perf_counter()  # repro-lint: disable=det/time-dependent
        if self.segstore is not None and self.segstore_stats is None:
            from repro.memo.segstore import install

            self.segstore_stats = install(self.segstore, self.engine.cache)
        with self.obs.span("sim.run", cat="sim", simulator=self.name):
            memo = self.engine.run(max_cycles)
        elapsed = time.perf_counter() - started  # repro-lint: disable=det/time-dependent
        world = self.world
        frontend = world.frontend
        if self.obs.enabled:
            self.obs.gauge("sim.cycles", world.stats.cycles)
            self.obs.gauge(
                "sim.instructions", world.stats.retired_instructions
            )
            self.obs.gauge("frontend.rollbacks", frontend.rollbacks)
            self.obs.gauge("memo.pcache_peak_bytes", self.pcache.peak_bytes)
            for name, value in sorted(frontend.frontend_stats().items()):
                self.obs.gauge(f"frontend.{name}", value)
            for name, value in sorted(world.cache.filter_stats().items()):
                self.obs.gauge(f"cache.filter.{name}", value)
            if self.segstore_stats is not None:
                for name, value in sorted(self.segstore_stats.items()):
                    self.obs.gauge(f"turbo.segstore.{name}", value)
        return SimulationResult(
            name=self.name,
            cycles=world.stats.cycles,
            instructions=world.stats.retired_instructions,
            output=list(world.program_output),
            sim_stats=world.stats,
            cache_stats=world.cache.stats,
            host_seconds=elapsed,
            frontend_instructions=frontend.executed_instructions,
            rollbacks=frontend.rollbacks,
            memo=memo,
        )

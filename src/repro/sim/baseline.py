"""The SimpleScalar surrogate — a conventional integrated OOO simulator.

The paper benchmarks FastSim against the SimpleScalar out-of-order
simulator, "one of the fastest out-of-order simulators using
traditional technology": comparable processor model, equivalent level
of detail, but **no direct execution and no memoization** — functional
emulation is interleaved with the timing model, instruction by
instruction, inside the simulation loop.

:class:`IntegratedSimulator` recreates that role. It models the same
R10000-like pipeline with the same parameters and cache hierarchy as
:class:`~repro.uarch.detailed.DetailedSimulator`, but:

* every instruction is **decoded from the binary text image at fetch
  time** (SimpleScalar decodes at fetch; FastSim's binary rewriting
  pre-translates — our frontend's pre-decoded instruction cache is the
  analogue, which this simulator deliberately does not use);
* functional execution (register/memory updates, effective addresses,
  branch conditions) happens inline at fetch, inside the timing loop,
  with speculative state checkpointed and rolled back on mispredicted
  branches;
* there is no action recording and no fast-forwarding: every cycle runs
  the full pipeline scan.

Timing results are *comparable* to SlowSim/FastSim, not bit-identical —
it is a different simulator, which is exactly the role SimpleScalar
plays in the paper's Table 3.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.branch.predictor import BimodalPredictor, BranchPredictor
from repro.cache.hierarchy import MemorySystem
from repro.emulator.functional import Interpreter
from repro.emulator.state import ArchState
from repro.errors import SimulationError
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass, LAT_AGEN
from repro.isa.program import Executable
from repro.obs.core import ensure_observer
from repro.sim.results import SimulationResult
from repro.sim.world import SimStats
from repro.uarch.iq import (
    ADDR_QUEUE_CLASSES,
    FP_QUEUE_CLASSES,
    Stage,
)
from repro.uarch.params import ProcessorParams

_MULDIV = (InstrClass.IMUL, InstrClass.IDIV)
_FDIVSQRT = (InstrClass.FDIV, InstrClass.FSQRT)


class _RobEntry:
    """One in-flight instruction, with its functional results attached."""

    __slots__ = ("instr", "stage", "timer", "pred_taken", "mispredicted",
                 "actual_taken", "next_pc", "mem_addr", "mem_width",
                 "store_undo", "token", "checkpoint", "is_halt")

    def __init__(self, instr: Instruction):
        self.instr = instr
        self.stage = Stage.FETCHED
        self.timer = 0
        self.pred_taken = False
        self.mispredicted = False
        self.actual_taken = False
        self.next_pc = instr.address + 4  #: where execution really went
        self.mem_addr: Optional[int] = None
        self.mem_width = 0
        self.store_undo: Optional[bytes] = None
        self.token: Optional[int] = None
        self.checkpoint = None  #: register snapshot if mispredicted
        self.is_halt = instr.iclass is InstrClass.HALT

    @property
    def iclass(self) -> InstrClass:
        return self.instr.iclass

    @property
    def is_cond_branch(self) -> bool:
        return self.instr.is_conditional_branch

    @property
    def is_load(self) -> bool:
        return self.instr.is_load

    @property
    def is_store(self) -> bool:
        return self.instr.is_store


class IntegratedSimulator:
    """Conventional fused functional + timing OOO simulation."""

    name = "Baseline"

    def __init__(
        self,
        executable: Executable,
        params: Optional[ProcessorParams] = None,
        predictor: Optional[BranchPredictor] = None,
        obs=None,
    ):
        self.executable = executable
        self.params = params if params is not None else ProcessorParams.r10k()
        self.obs = ensure_observer(obs)
        if predictor is None:
            predictor = BimodalPredictor(self.params.bht_entries)
        self.predictor = predictor
        self.state = ArchState.boot(executable)
        self.interpreter = Interpreter(executable, self.state)
        self.cache = MemorySystem(self.params.memory)
        self.stats = SimStats()
        self.rob: List[_RobEntry] = []
        self.fetch_pc: Optional[int] = executable.entry
        self.fetch_stalled = False
        self.fetch_halted = False
        self.cycle = 0
        self.rollbacks = 0
        self.fetched_instructions = 0

    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 50_000_000) -> SimulationResult:
        obs = self.obs
        obs_on = obs.enabled
        started = time.perf_counter()
        with obs.span("sim.run", cat="sim", simulator=self.name):
            while True:
                if self._retire():
                    break
                self._progress_execution()
                self._issue()
                self._dispatch()
                self._fetch()
                self.cycle += 1
                self.stats.cycles += 1
                if self.cycle > max_cycles:
                    raise SimulationError(f"exceeded {max_cycles} cycles")
                if obs_on:
                    obs.sample_pipeline(self.cycle, len(self.rob))
        elapsed = time.perf_counter() - started
        if obs_on:
            obs.gauge("sim.cycles", self.stats.cycles)
            obs.gauge(
                "sim.instructions", self.stats.retired_instructions
            )
            obs.gauge("frontend.rollbacks", self.rollbacks)
        return SimulationResult(
            name=self.name,
            cycles=self.stats.cycles,
            instructions=self.stats.retired_instructions,
            output=list(self.state.output),
            sim_stats=self.stats,
            cache_stats=self.cache.stats,
            host_seconds=elapsed,
            frontend_instructions=self.fetched_instructions,
            rollbacks=self.rollbacks,
        )

    # -- fetch: functional execution happens here ---------------------------

    def _fetch_decode(self, address: int) -> Instruction:
        """Decode from the raw text image (no pre-decoded cache)."""
        offset = address - self.executable.text_base
        word = int.from_bytes(self.executable.text[offset:offset + 4], "big")
        return decode(word, address)

    def _fetch(self) -> None:
        if self.fetch_halted or self.fetch_stalled or self.fetch_pc is None:
            return
        params = self.params
        fetched = 0
        unresolved = sum(
            1 for e in self.rob
            if e.is_cond_branch and e.stage is not Stage.DONE
        )
        while (fetched < params.fetch_width
               and len(self.rob) < params.iq_capacity):
            instr = self._fetch_decode(self.fetch_pc)
            if instr.is_conditional_branch:
                if unresolved >= params.max_spec_branches:
                    break
                unresolved += 1
            entry = _RobEntry(instr)
            self._execute_functionally(entry)
            self.rob.append(entry)
            fetched += 1
            self.fetched_instructions += 1
            if entry.is_halt:
                self.fetch_halted = True
                self.fetch_pc = None
                break
            next_pc = self._next_fetch_pc(entry)
            if next_pc is None:
                self.fetch_stalled = True
                self.fetch_pc = None
                break
            taken_transfer = next_pc != instr.address + 4
            self.fetch_pc = next_pc
            if taken_transfer:
                break

    def _execute_functionally(self, entry: _RobEntry) -> None:
        """Run one instruction on the speculative state, at fetch time."""
        interpreter = self.interpreter
        state = self.state
        instr = entry.instr
        state.pc = instr.address
        if entry.is_halt:
            state.halted = True
            return
        interpreter.step()
        state.instret -= 1  # retirement is counted by the timing model
        entry.next_pc = state.pc
        if instr.is_mem:
            entry.mem_addr = interpreter.last_mem_addr
            entry.mem_width = interpreter.last_mem_width
            entry.store_undo = interpreter.last_store_old
        if instr.is_conditional_branch:
            entry.actual_taken = interpreter.last_taken
            entry.pred_taken = self.predictor.predict_and_update(
                instr.address, entry.actual_taken
            )
            entry.mispredicted = entry.pred_taken != entry.actual_taken
            if entry.mispredicted:
                # Checkpoint with PC at the correct destination, then
                # follow the predicted (wrong) path.
                entry.checkpoint = state.snapshot_registers()
                state.pc = (
                    instr.target if entry.pred_taken
                    else instr.address + 4
                )
                entry.next_pc = state.pc

    def _next_fetch_pc(self, entry: _RobEntry) -> Optional[int]:
        instr = entry.instr
        if instr.is_indirect_jump:
            return None  # stall until the jump executes
        if entry.is_cond_branch:
            return instr.target if entry.pred_taken else instr.address + 4
        return entry.next_pc

    # -- retire ---------------------------------------------------------------

    def _retire(self) -> bool:
        count = 0
        while (count < self.params.retire_width and count < len(self.rob)
               and self.rob[count].stage is Stage.DONE):
            count += 1
        if not count:
            return False
        retired = self.rob[:count]
        del self.rob[:count]
        stats = self.stats
        stats.retired_instructions += count
        for entry in retired:
            if entry.is_load:
                stats.retired_loads += 1
            elif entry.is_store:
                stats.retired_stores += 1
            if entry.is_cond_branch:
                stats.retired_branches += 1
        return any(e.is_halt for e in retired)

    # -- execution progress ------------------------------------------------------

    def _progress_execution(self) -> None:
        index = 0
        while index < len(self.rob):
            entry = self.rob[index]
            stage = entry.stage
            if stage is Stage.EXEC:
                entry.timer -= 1
                if entry.timer <= 0:
                    self._complete(index, entry)
            elif stage is Stage.CACHE:
                entry.timer -= 1
                if entry.timer <= 0:
                    reply = self.cache.poll_load(entry.token, self.cycle)
                    if reply == 0:
                        entry.stage = Stage.DONE
                    else:
                        entry.timer = reply
            elif stage is Stage.STWAIT:
                entry.timer -= 1
                if entry.timer <= 0:
                    entry.stage = Stage.DONE
            index += 1

    def _complete(self, index: int, entry: _RobEntry) -> None:
        if entry.is_load:
            token, interval = self.cache.issue_load(
                entry.mem_addr, entry.mem_width, self.cycle
            )
            entry.token = token
            entry.stage = Stage.CACHE
            entry.timer = interval
            return
        if entry.is_store:
            interval = self.cache.issue_store(
                entry.mem_addr, entry.mem_width, self.cycle
            )
            entry.stage = Stage.STWAIT
            entry.timer = interval
            return
        if entry.is_cond_branch and entry.mispredicted:
            self._rollback(index, entry)
            return
        entry.stage = Stage.DONE
        if (entry.instr.is_indirect_jump and self.fetch_stalled
                and index == len(self.rob) - 1):
            self.fetch_stalled = False
            self.fetch_pc = entry.next_pc

    def _rollback(self, index: int, entry: _RobEntry) -> None:
        """Mispredicted branch resolved: squash and restore state."""
        entry.stage = Stage.DONE
        entry.mispredicted = False
        squashed = self.rob[index + 1:]
        del self.rob[index + 1:]
        # Undo wrong-path stores in reverse order, drop load tokens.
        memory = self.state.memory
        for victim in reversed(squashed):
            if victim.store_undo is not None:
                memory.load_bytes(victim.mem_addr, victim.store_undo)
            if victim.token is not None:
                self.cache.cancel_load(victim.token)
        self.state.restore_registers(entry.checkpoint)
        self.state.halted = False
        entry.checkpoint = None
        self.stats.mispredictions += 1
        self.stats.squashed_entries += len(squashed)
        self.rollbacks += 1
        self.fetch_pc = (
            entry.instr.target if entry.actual_taken
            else entry.instr.address + 4
        )
        self.fetch_stalled = False
        self.fetch_halted = False

    # -- issue --------------------------------------------------------------------

    def _issue(self) -> None:
        params = self.params
        int_slots = params.int_alus
        fp_slots = params.fp_units
        agen_slots = params.agen_units
        muldiv_busy = any(
            e.stage is Stage.EXEC and e.iclass in _MULDIV for e in self.rob
        )
        fdiv_busy = any(
            e.stage is Stage.EXEC and e.iclass in _FDIVSQRT for e in self.rob
        )
        undone_int = set()
        undone_fp = set()
        icc_undone = False
        fcc_undone = False
        stores_unissued = 0
        branch_unresolved = False

        for entry in self.rob:
            if entry.stage is Stage.QUEUE:
                issued = self._try_issue(
                    entry, undone_int, undone_fp, icc_undone, fcc_undone,
                    stores_unissued, branch_unresolved, int_slots, fp_slots,
                    agen_slots, muldiv_busy, fdiv_busy,
                )
                if issued:
                    iclass = entry.iclass
                    if iclass in ADDR_QUEUE_CLASSES:
                        agen_slots -= 1
                    elif iclass in FP_QUEUE_CLASSES:
                        fp_slots -= 1
                        if iclass in _FDIVSQRT:
                            fdiv_busy = True
                    else:
                        int_slots -= 1
                        if iclass in _MULDIV:
                            muldiv_busy = True
            if entry.stage is not Stage.DONE:
                instr = entry.instr
                dest = instr.int_dest()
                if dest is not None:
                    undone_int.add(dest)
                fp_dest = instr.fp_dest()
                if fp_dest is not None:
                    undone_fp.add(fp_dest)
                info = instr.info
                if info.sets_icc:
                    icc_undone = True
                if info.sets_fcc:
                    fcc_undone = True
                if entry.is_cond_branch:
                    branch_unresolved = True
            if entry.is_store and entry.stage in (Stage.QUEUE, Stage.EXEC):
                stores_unissued += 1

    def _try_issue(self, entry, undone_int, undone_fp, icc_undone,
                   fcc_undone, stores_unissued, branch_unresolved,
                   int_slots, fp_slots, agen_slots,
                   muldiv_busy, fdiv_busy) -> bool:
        instr = entry.instr
        info = instr.info
        for reg in instr.int_sources():
            if reg in undone_int:
                return False
        for reg in instr.fp_sources():
            if reg in undone_fp:
                return False
        if info.reads_icc and icc_undone:
            return False
        if info.reads_fcc and fcc_undone:
            return False
        iclass = entry.iclass
        if iclass in ADDR_QUEUE_CLASSES:
            if agen_slots <= 0:
                return False
            if entry.is_load and stores_unissued:
                return False
            if entry.is_store and branch_unresolved:
                return False
            entry.stage = Stage.EXEC
            entry.timer = LAT_AGEN
            return True
        if iclass in FP_QUEUE_CLASSES:
            if fp_slots <= 0:
                return False
            if iclass in _FDIVSQRT and fdiv_busy:
                return False
            entry.stage = Stage.EXEC
            entry.timer = info.latency
            return True
        if int_slots <= 0:
            return False
        if iclass in _MULDIV and muldiv_busy:
            return False
        entry.stage = Stage.EXEC
        entry.timer = info.latency
        return True

    # -- dispatch --------------------------------------------------------------------

    def _dispatch(self) -> None:
        params = self.params
        int_q = fp_q = addr_q = 0
        int_renames = fp_renames = 0
        for entry in self.rob:
            iclass = entry.iclass
            if entry.stage is Stage.QUEUE:
                if iclass in ADDR_QUEUE_CLASSES:
                    addr_q += 1
                elif iclass in FP_QUEUE_CLASSES:
                    fp_q += 1
                else:
                    int_q += 1
            elif (iclass in ADDR_QUEUE_CLASSES
                  and entry.stage in (Stage.EXEC, Stage.CACHE, Stage.STWAIT)):
                addr_q += 1
            if entry.stage is not Stage.FETCHED:
                if entry.instr.int_dest() is not None:
                    int_renames += 1
                if entry.instr.fp_dest() is not None:
                    fp_renames += 1

        dispatched = 0
        for entry in self.rob:
            if entry.stage is not Stage.FETCHED:
                continue
            if dispatched >= params.decode_width:
                break
            instr = entry.instr
            iclass = entry.iclass
            if iclass in ADDR_QUEUE_CLASSES:
                if addr_q >= params.addr_queue:
                    break
                addr_q += 1
            elif iclass in FP_QUEUE_CLASSES:
                if fp_q >= params.fp_queue:
                    break
                fp_q += 1
            else:
                if int_q >= params.int_queue:
                    break
                int_q += 1
            if instr.int_dest() is not None:
                if int_renames >= params.int_renames:
                    break
                int_renames += 1
            if instr.fp_dest() is not None:
                if fp_renames >= params.fp_renames:
                    break
                fp_renames += 1
            entry.stage = Stage.QUEUE
            dispatched += 1

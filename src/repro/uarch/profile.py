"""Pipeline profiling — utilization analysis over per-cycle snapshots.

Answers the questions an architect asks after a run: how full was the
window, where did instructions spend their time, how often did each
functional-unit class execute, how bursty was retirement? Built on
:class:`~repro.uarch.trace.PipelineTracer` (detailed simulation only —
profiles want every cycle), with no changes to the memoized core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.branch.predictor import BranchPredictor
from repro.isa.opcodes import InstrClass
from repro.isa.program import Executable
from repro.uarch.iq import Stage
from repro.uarch.params import ProcessorParams
from repro.uarch.trace import CycleSnapshot, PipelineTracer


@dataclass
class PipelineProfile:
    """Aggregated per-cycle pipeline statistics."""

    cycles: int = 0
    retired: int = 0
    #: occupancy histogram: iQ size -> cycles at that size
    occupancy: Dict[int, int] = field(default_factory=dict)
    #: stage -> total entry-cycles spent in that stage
    stage_cycles: Dict[Stage, int] = field(default_factory=dict)
    #: instruction class -> entry-cycles in EXEC
    exec_cycles_by_class: Dict[InstrClass, int] = field(default_factory=dict)
    #: retire-group-size histogram: instructions retired in a cycle -> cycles
    retire_groups: Dict[int, int] = field(default_factory=dict)
    _last_retired: int = 0

    # ------------------------------------------------------------------

    def observe(self, snapshot: CycleSnapshot) -> None:
        """Fold one cycle's snapshot into the profile."""
        self.cycles += 1
        size = snapshot.occupancy()
        self.occupancy[size] = self.occupancy.get(size, 0) + 1
        for entry in snapshot.entries:
            stage = entry.stage
            self.stage_cycles[stage] = self.stage_cycles.get(stage, 0) + 1
            if stage is Stage.EXEC:
                iclass = entry.iclass
                self.exec_cycles_by_class[iclass] = (
                    self.exec_cycles_by_class.get(iclass, 0) + 1
                )
        delta = snapshot.retired_so_far - self._last_retired
        self._last_retired = snapshot.retired_so_far
        self.retire_groups[delta] = self.retire_groups.get(delta, 0) + 1
        self.retired = snapshot.retired_so_far

    # -- derived metrics ---------------------------------------------------

    @property
    def mean_occupancy(self) -> float:
        if not self.cycles:
            return 0.0
        return sum(size * n for size, n in self.occupancy.items()) / self.cycles

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    def stage_fraction(self, stage: Stage) -> float:
        """Fraction of in-flight entry-cycles spent in *stage*."""
        total = sum(self.stage_cycles.values())
        if not total:
            return 0.0
        return self.stage_cycles.get(stage, 0) / total

    def unit_utilization(self, iclass: InstrClass, units: int) -> float:
        """EXEC-cycles for *iclass* over total cycles × *units*."""
        if not self.cycles or not units:
            return 0.0
        busy = self.exec_cycles_by_class.get(iclass, 0)
        return busy / (self.cycles * units)

    def render(self, params: Optional[ProcessorParams] = None) -> str:
        """Human-readable profile report."""
        lines = [
            "Pipeline profile",
            f"  cycles           : {self.cycles}",
            f"  retired          : {self.retired}  (IPC {self.ipc:.2f})",
            f"  mean iQ occupancy: {self.mean_occupancy:.1f}",
            "  in-flight time by stage:",
        ]
        for stage in Stage:
            fraction = self.stage_fraction(stage)
            if fraction:
                lines.append(f"    {stage.name:8s} {100 * fraction:5.1f}%")
        if params is not None:
            lines.append("  functional-unit utilization:")
            groups = [
                ("int ALUs", (InstrClass.IALU, InstrClass.IMUL,
                              InstrClass.IDIV, InstrClass.BRANCH,
                              InstrClass.JUMP, InstrClass.NOP,
                              InstrClass.HALT), params.int_alus),
                ("FP units", (InstrClass.FALU, InstrClass.FMUL,
                              InstrClass.FDIV, InstrClass.FSQRT),
                 params.fp_units),
                ("agen", (InstrClass.LOAD, InstrClass.STORE),
                 params.agen_units),
            ]
            for label, classes, units in groups:
                busy = sum(self.exec_cycles_by_class.get(c, 0)
                           for c in classes)
                utilization = busy / (self.cycles * units) if self.cycles else 0
                lines.append(f"    {label:8s} {100 * utilization:5.1f}%")
        lines.append("  retire-group histogram:")
        for size in sorted(self.retire_groups):
            lines.append(
                f"    {size} wide: {self.retire_groups[size]} cycles"
            )
        return "\n".join(lines)


def profile_pipeline(
    executable: Executable,
    params: Optional[ProcessorParams] = None,
    predictor: Optional[BranchPredictor] = None,
    max_cycles: int = 100_000,
) -> PipelineProfile:
    """Run *executable* under the detailed model, collecting a profile."""
    profile = PipelineProfile()
    tracer = PipelineTracer(executable, params, predictor)
    tracer.run(profile.observe, max_cycles=max_cycles)
    return profile

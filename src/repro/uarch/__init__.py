"""The out-of-order μ-architecture model.

* :class:`ProcessorParams` — the paper's Table 1 configuration
* :class:`DetailedSimulator` — cycle-accurate pipeline (a generator
  yielding :mod:`~repro.uarch.interactions` requests)
* :class:`InstructionQueue` / :class:`IQEntry` / :class:`Stage` — the iQ
* :func:`encode_config` / :func:`decode_config` — configuration codec
"""

from repro.uarch.config_codec import (
    config_size_bytes,
    decode_config,
    encode_config,
)
from repro.uarch.detailed import DetailedSimulator
from repro.uarch.interactions import (
    CycleBoundary,
    Finished,
    GetControl,
    IssueLoad,
    IssueStore,
    PollLoad,
    Request,
    Retire,
    Rollback,
)
from repro.uarch.iq import IQEntry, InstructionQueue, Stage
from repro.uarch.params import ProcessorParams
from repro.uarch.profile import PipelineProfile, profile_pipeline
from repro.uarch.trace import (
    CycleSnapshot,
    PipelineTracer,
    format_snapshot,
    trace_pipeline,
)

__all__ = [
    "ProcessorParams",
    "DetailedSimulator",
    "InstructionQueue",
    "IQEntry",
    "Stage",
    "encode_config",
    "decode_config",
    "config_size_bytes",
    "Request",
    "GetControl",
    "IssueLoad",
    "PollLoad",
    "IssueStore",
    "Rollback",
    "Retire",
    "CycleBoundary",
    "Finished",
    "PipelineTracer",
    "CycleSnapshot",
    "trace_pipeline",
    "format_snapshot",
    "PipelineProfile",
    "profile_pipeline",
]

"""Configuration encoding — compressed iQ snapshots (paper §4.2).

A *configuration* is a snapshot of the iQ between cycles, the key into
the p-action cache. The paper compresses it by exploiting program
order: *"To encode the sequence of instructions in the iQ, we only save
the starting addresses (PC and nPC) of the oldest instructions in the
iQ, plus one bit per conditional branch (taken/not-taken), plus the
target address of any indirect jumps. The iQ's per instruction state
information can be compressed into 1.5 bytes per instruction."*

This codec follows the same scheme:

========  ==========================================================
bytes     contents
========  ==========================================================
0         flags (bit0: fetch stalled on a jump, bit1: fetch halted)
1         number of iQ entries
2–5       fetch PC (0 when fetch is stalled/stopped)
6–9       address of the oldest iQ entry (0 when the iQ is empty)
then      2 bytes per entry: stage(3) | branch-bit(1) | mispred(1)
          | timer(11)
then      4 bytes per indirect jump: recorded target
========  ==========================================================

(Our per-entry state is 2 bytes rather than 1.5 — Python buys no
nibble-packing discount — and the header is 10 bytes rather than 16;
the cost model used for Table 5 / Figure 7 accounting is the encoded
length of exactly these bytes.)

Decoding reverses the walk: starting at the oldest address, each next
instruction address follows statically, except that conditional
branches follow the stored branch bit and indirect jumps use the stored
target — so a configuration fully reconstructs the iQ, which is how
fast-forwarding falls back to detailed simulation at a previously
unseen outcome.
"""

from __future__ import annotations

import struct
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ConfigCodecError
from repro.isa.program import Executable
from repro.uarch.iq import IQEntry, MAX_TIMER, Stage

_HEADER = struct.Struct(">BBII")

#: Extra bytes the paper's encoding would add on top of ours, used by
#: the size-accounting model (paper header is 16 bytes).
PAPER_HEADER_BYTES = 16

#: Machine-readable manifest of exactly the state this codec captures.
#:
#: The configuration blob is the p-action cache **key**: two pipeline
#: states that encode to the same blob share one recorded action chain.
#: Any attribute of the iQ or the detailed simulator that carries state
#: between cycles but is *not* listed here would let two distinct
#: states collide on one key — the classic stale-memoization bug. The
#: ``repro.lint`` memo-safety checker cross-checks the simulator
#: sources against this manifest, and the codec test suite asserts the
#: manifest matches what :func:`encode_config` actually serializes.
#:
#: ``entry``
#:     Per-:class:`IQEntry` state, serialized per entry (``instr`` is
#:     captured by identity — the walk re-derives it from the address).
#: ``queue``
#:     :class:`~repro.uarch.iq.InstructionQueue` attributes:
#:     ``entries`` is the encoded walk itself; ``capacity`` is a bound
#:     derived from the processor parameters.
#: ``pipeline``
#:     :class:`~repro.uarch.detailed.DetailedSimulator` state in the
#:     header (``iq`` expands to the per-entry records).
#: ``signature``
#:     Attributes bound by the run signature instead of the blob
#:     (:func:`repro.memo.engine.run_signature` keys the whole cache
#:     on program text and processor parameters).
CONFIG_FIELD_MANIFEST: Dict[str, FrozenSet[str]] = {
    "entry": frozenset({
        "instr", "stage", "timer", "pred_taken", "mispredicted",
        "jump_target",
    }),
    "queue": frozenset({"entries", "capacity"}),
    "pipeline": frozenset({"iq", "fetch_pc", "fetch_stalled",
                           "fetch_halted"}),
    "signature": frozenset({"executable", "params"}),
}


def encode_config(entries: List[IQEntry], fetch_pc: Optional[int],
                  fetch_stalled: bool, fetch_halted: bool) -> bytes:
    """Encode an iQ snapshot into its compressed byte form."""
    if len(entries) > 255:
        raise ConfigCodecError(f"too many iQ entries: {len(entries)}")
    flags = (1 if fetch_stalled else 0) | (2 if fetch_halted else 0)
    start = entries[0].instr.address if entries else 0
    out = bytearray(
        _HEADER.pack(flags, len(entries), fetch_pc or 0, start)
    )
    indirect_targets: List[int] = []
    for entry in entries:
        timer = entry.timer
        if not 0 <= timer <= MAX_TIMER:
            raise ConfigCodecError(
                f"timer {timer} out of encodable range at "
                f"0x{entry.instr.address:x}"
            )
        packed = (
            (int(entry.stage) << 13)
            | ((1 if entry.pred_taken else 0) << 12)
            | ((1 if entry.mispredicted else 0) << 11)
            | timer
        )
        out += packed.to_bytes(2, "big")
        if entry.is_indirect:
            if entry.jump_target is None:
                raise ConfigCodecError(
                    f"indirect jump at 0x{entry.instr.address:x} has no "
                    "recorded target"
                )
            indirect_targets.append(entry.jump_target)
    for target in indirect_targets:
        out += target.to_bytes(4, "big")
    return bytes(out)


def decode_config(
    blob: bytes, executable: Executable
) -> Tuple[List[IQEntry], Optional[int], bool, bool]:
    """Decode a configuration back into ``(entries, fetch_pc,
    fetch_stalled, fetch_halted)``."""
    if len(blob) < _HEADER.size:
        raise ConfigCodecError("configuration too short")
    flags, count, fetch_pc_raw, start = _HEADER.unpack_from(blob)
    fetch_stalled = bool(flags & 1)
    fetch_halted = bool(flags & 2)
    offset = _HEADER.size
    if offset + 2 * count > len(blob):
        raise ConfigCodecError("truncated per-entry state")
    packed_states = struct.unpack_from(f">{count}H", blob, offset)
    offset += 2 * count

    # First pass over the packed states to know how many indirect
    # targets to read is impossible without the instructions, so decode
    # the walk and pull targets lazily.
    targets_offset = offset

    def next_target() -> int:
        nonlocal targets_offset
        if targets_offset + 4 > len(blob):
            raise ConfigCodecError("truncated indirect-jump target")
        value = int.from_bytes(blob[targets_offset:targets_offset + 4], "big")
        targets_offset += 4
        return value

    entries: List[IQEntry] = []
    address = start
    for position, packed in enumerate(packed_states):
        instr = executable.instruction_at(address)
        stage = Stage((packed >> 13) & 0x7)
        pred_taken = bool(packed & (1 << 12))
        mispredicted = bool(packed & (1 << 11))
        timer = packed & MAX_TIMER
        jump_target = next_target() if instr.is_indirect_jump else None
        entry = IQEntry(
            instr,
            stage=stage,
            timer=timer,
            pred_taken=pred_taken,
            mispredicted=mispredicted,
            jump_target=jump_target,
        )
        entries.append(entry)
        if position == len(packed_states) - 1:
            break
        next_address = entry.next_fetch_address()
        if next_address is None:
            raise ConfigCodecError(
                f"cannot walk past entry at 0x{address:x} "
                f"({entry.stage.name})"
            )
        address = next_address
    if targets_offset != len(blob):
        raise ConfigCodecError("trailing bytes in configuration")
    fetch_pc = fetch_pc_raw if fetch_pc_raw else None
    if fetch_halted or fetch_stalled:
        fetch_pc = None
    return entries, fetch_pc, fetch_stalled, fetch_halted


def config_size_bytes(blob: bytes) -> int:
    """Modelled storage cost of a configuration, for Table 5 / Figure 7.

    Uses the encoded length plus the difference between the paper's
    16-byte header and ours, so the numbers are directly comparable to
    the paper's "16 bytes plus 4 bytes per indirect jump plus 1.5 bytes
    per instruction".
    """
    return len(blob) + (PAPER_HEADER_BYTES - _HEADER.size)

"""Pipeline tracing — human-readable per-cycle iQ dumps for debugging.

A simulator library needs a way to *see* the pipeline. The tracer runs
the detailed simulator (no memoization — traces want every cycle) and
renders each cycle's iQ as one line per in-flight instruction::

    cycle 14
      [ 0] 0x00010010  add %l1, %l0, %l1      EXEC   t=1
      [ 1] 0x00010014  subcc %l0, 1, %l0      QUEUE
      [ 2] 0x00010018  bne 0x10010            FETCHED  pred=T

Use :func:`trace_pipeline` for a list of rendered cycles, or
:class:`PipelineTracer` to observe cycles programmatically (e.g. to
assert on occupancy in tests).

The tracer is built on the :mod:`repro.obs` span-sink protocol: pass
``sink=`` any :class:`~repro.obs.spans.TraceSink` (a ring buffer, a
JSON-lines stream, or an :class:`~repro.obs.Observer`'s ring) and every
cycle is also emitted as a simulated-clock counter event, so a pipeline
trace lands on the same timeline as the memo-engine spans in a Chrome
trace export. :func:`trace_pipeline` remains the thin
render-to-strings wrapper it always was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.branch.predictor import BranchPredictor
from repro.isa.disasm import format_instruction
from repro.isa.program import Executable
from repro.obs.spans import CLOCK_SIM, TraceEvent, TraceSink
from repro.uarch.detailed import DetailedSimulator
from repro.uarch.interactions import (
    CycleBoundary,
    Finished,
    GetControl,
    IssueLoad,
    IssueStore,
    PollLoad,
    Retire,
    Rollback,
)
from repro.uarch.iq import IQEntry, Stage
from repro.uarch.params import ProcessorParams


@dataclass
class CycleSnapshot:
    """The pipeline contents at the end of one cycle."""

    cycle: int
    entries: List[IQEntry]
    retired_so_far: int

    def occupancy(self) -> int:
        return len(self.entries)

    def count_stage(self, stage: Stage) -> int:
        return sum(1 for e in self.entries if e.stage is stage)


def snapshot_event(snapshot: CycleSnapshot) -> TraceEvent:
    """One simulated-clock counter event for a cycle snapshot.

    The counter tracks (occupancy plus per-stage breakdown) render as
    stacked series on the sim-clock timeline in Perfetto, next to the
    memo-engine sample track.
    """
    values = {"occupancy": snapshot.occupancy(),
              "retired": snapshot.retired_so_far}
    for stage in Stage:
        count = snapshot.count_stage(stage)
        if count:
            values[stage.name.lower()] = count
    return TraceEvent("pipeline.cycle", "C", snapshot.cycle,
                      cat="pipeline", clock=CLOCK_SIM, args=values)


def _copy_entry(entry: IQEntry) -> IQEntry:
    return IQEntry(entry.instr, entry.stage, entry.timer, entry.pred_taken,
                   entry.mispredicted, entry.jump_target)


class PipelineTracer:
    """Drives a detailed simulation, invoking a callback every cycle."""

    def __init__(
        self,
        executable: Executable,
        params: Optional[ProcessorParams] = None,
        predictor: Optional[BranchPredictor] = None,
        sink: Optional[TraceSink] = None,
    ):
        # Imported here: repro.sim.world imports repro.uarch submodules,
        # so a module-level import would be circular via the package
        # __init__.
        from repro.sim.world import World

        self.params = params if params is not None else ProcessorParams.r10k()
        self.simulator = DetailedSimulator(executable, self.params)
        self.world = World(executable, self.params, predictor)
        self.sink = sink

    def run(self, on_cycle: Optional[Callable[[CycleSnapshot], None]] = None,
            max_cycles: int = 10_000) -> int:
        """Simulate, calling *on_cycle* at every boundary.

        Returns the final cycle count. Stops at *max_cycles* without
        error (traces are usually of prefixes). When the tracer was
        built with a ``sink``, every cycle is also emitted to it as a
        :func:`snapshot_event`; *on_cycle* may then be omitted.
        """
        world = self.world
        simulator = self.simulator
        sink = self.sink
        generator = simulator.run()
        outcome = None
        while True:
            try:
                request = generator.send(outcome)
            except StopIteration:
                break
            outcome = None
            kind = type(request)
            if kind is CycleBoundary:
                snapshot = CycleSnapshot(
                    cycle=world.cycle,
                    entries=[_copy_entry(e) for e in simulator.iq.entries],
                    retired_so_far=world.stats.retired_instructions,
                )
                if on_cycle is not None:
                    on_cycle(snapshot)
                if sink is not None:
                    sink.emit(snapshot_event(snapshot))
                world.advance_cycles(1)
                if world.cycle >= max_cycles:
                    break
            elif kind is GetControl:
                outcome = world.get_control()
            elif kind is IssueLoad:
                outcome = world.issue_load(request.ordinal)
            elif kind is PollLoad:
                outcome = world.poll_load(request.ordinal)
            elif kind is IssueStore:
                outcome = world.issue_store(request.ordinal)
            elif kind is Retire:
                world.retire(request)
            elif kind is Rollback:
                world.rollback(request)
            elif kind is Finished:
                break
        return world.stats.cycles


def format_snapshot(snapshot: CycleSnapshot) -> str:
    """Render one cycle's pipeline contents."""
    lines = [f"cycle {snapshot.cycle}  "
             f"(retired {snapshot.retired_so_far})"]
    if not snapshot.entries:
        lines.append("  <pipeline empty>")
    for position, entry in enumerate(snapshot.entries):
        text = format_instruction(entry.instr)
        detail = entry.stage.name
        if entry.stage in (Stage.EXEC, Stage.CACHE, Stage.STWAIT):
            detail += f" t={entry.timer}"
        flags = ""
        if entry.is_cond_branch:
            flags = f"  pred={'T' if entry.pred_taken else 'N'}"
            if entry.mispredicted:
                flags += " MISPREDICTED"
        elif entry.is_indirect and entry.jump_target is not None:
            flags = f"  ->0x{entry.jump_target:x}"
        lines.append(
            f"  [{position:2d}] 0x{entry.instr.address:08x}  "
            f"{text:32s} {detail:10s}{flags}"
        )
    return "\n".join(lines)


def trace_pipeline(
    executable: Executable,
    max_cycles: int = 100,
    params: Optional[ProcessorParams] = None,
    predictor: Optional[BranchPredictor] = None,
) -> List[str]:
    """Trace the first *max_cycles* cycles; returns rendered cycles."""
    rendered: List[str] = []
    tracer = PipelineTracer(executable, params, predictor)
    tracer.run(lambda snap: rendered.append(format_snapshot(snap)),
               max_cycles=max_cycles)
    return rendered

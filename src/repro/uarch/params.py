"""Processor model parameters (the paper's Table 1).

:meth:`ProcessorParams.r10k` reproduces the configuration used
throughout the paper's evaluation:

* decode 4 instructions per cycle;
* 2 integer ALUs, 2 FPUs, 1 load/store address adder;
* 64 physical integer registers, 64 physical FP registers
  (32 architectural each, so 32 renames in flight per file);
* 2-bit / 512-entry branch history table;
* speculation through up to 4 conditional branches;
* non-blocking L1/L2 with 8 MSHRs each (see
  :class:`repro.cache.params.MemorySystemParams`).

The active-list (``iQ``) capacity is not in Table 1; we use the
R10000's 32 entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.params import MemorySystemParams


@dataclass(frozen=True)
class ProcessorParams:
    """Parameters of the out-of-order pipeline model."""

    fetch_width: int = 4
    decode_width: int = 4
    retire_width: int = 4
    #: Maximum instructions in flight (iQ / active-list entries).
    iq_capacity: int = 32
    int_queue: int = 16
    fp_queue: int = 16
    addr_queue: int = 16
    int_alus: int = 2
    fp_units: int = 2
    agen_units: int = 1
    phys_int_regs: int = 64
    phys_fp_regs: int = 64
    #: Architectural registers per file (fixed by the ISA).
    arch_regs: int = 32
    bht_entries: int = 512
    max_spec_branches: int = 4
    memory: MemorySystemParams = field(default_factory=MemorySystemParams)

    def __post_init__(self) -> None:
        if self.phys_int_regs < self.arch_regs:
            raise ValueError("fewer physical than architectural int registers")
        if self.phys_fp_regs < self.arch_regs:
            raise ValueError("fewer physical than architectural fp registers")
        if self.iq_capacity < self.fetch_width:
            raise ValueError("iQ must hold at least one fetch group")

    @property
    def int_renames(self) -> int:
        """Integer destinations allowed in flight before rename stalls."""
        return self.phys_int_regs - self.arch_regs

    @property
    def fp_renames(self) -> int:
        """FP destinations allowed in flight before rename stalls."""
        return self.phys_fp_regs - self.arch_regs

    @classmethod
    def r10k(cls) -> "ProcessorParams":
        """The paper's MIPS R10000-like configuration (Table 1)."""
        return cls()

    @classmethod
    def narrow(cls) -> "ProcessorParams":
        """A 2-wide variant used by ablation benchmarks."""
        return cls(fetch_width=2, decode_width=2, retire_width=2,
                   iq_capacity=16, int_alus=1, fp_units=1)

    def describe(self) -> str:
        """Human-readable parameter listing (compare with Table 1)."""
        memory = self.memory
        lines = [
            f"Decode {self.decode_width} instructions per cycle.",
            f"{self.int_alus} integer ALUs, {self.fp_units} FPUs, and "
            f"{self.agen_units} load/store address adder.",
            f"{self.phys_int_regs} physical 32-bit integer registers, and "
            f"{self.phys_fp_regs} floating point registers.",
            f"2-bit/{self.bht_entries}-entry branch history table for "
            "branch prediction.",
            "Speculatively execute instructions through up to "
            f"{self.max_spec_branches} conditional branches.",
            f"Non-blocking L1 and L2 data caches, {memory.l1.mshrs} MSHRs "
            "each.",
            f"{memory.l1.size_bytes // 1024} KByte "
            f"{memory.l1.associativity}-way set associative write through "
            "L1 data cache.",
            f"{memory.l2.size_bytes // (1024 * 1024)} MByte "
            f"{memory.l2.associativity}-way set associative write back "
            "L2 data cache.",
            f"{memory.bus_width} byte wide, split transaction bus.",
        ]
        return "\n".join(lines)
